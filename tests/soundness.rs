//! Workspace-level soundness: static bounds vs. simulated execution on
//! suite benchmarks and randomly generated programs.

use fault_aware_pwcet::benchsuite;
use fault_aware_pwcet::cache::FaultMap;
use fault_aware_pwcet::core::{AnalysisConfig, Protection, PwcetAnalyzer};
use fault_aware_pwcet::progen::{GeneratorConfig, ProgramGenerator};
use fault_aware_pwcet::sim::{simulate, validation};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn suite_benchmarks_respect_bounds_under_random_faults() {
    let analyzer = PwcetAnalyzer::new(AnalysisConfig::paper_default());
    let mut rng = StdRng::seed_from_u64(20160321);
    for name in ["bs", "fibcall", "prime", "crc"] {
        let bench = benchsuite::by_name(name).expect("benchmark exists");
        let analysis = analyzer.analyze(&bench.program).expect("analyzes");
        let compiled = bench.program.compile(0x0040_0000).expect("compiles");
        let trace = simulate(&compiled, 50_000_000).expect("halts");
        let geometry = analysis.config().geometry;
        for pbf in [0.1, 0.5, 1.0] {
            for _ in 0..10 {
                let faults = FaultMap::sample(&geometry, pbf, &mut rng);
                for protection in Protection::all() {
                    let outcome = validation(&analysis, protection, &trace, &faults);
                    assert!(
                        outcome.holds(),
                        "{name}/{protection} pbf={pbf}: {} > {}",
                        outcome.simulated,
                        outcome.bound
                    );
                }
            }
        }
    }
}

#[test]
fn random_programs_respect_bounds_under_random_faults() {
    let analyzer = PwcetAnalyzer::new(AnalysisConfig::paper_default());
    let generator_config = GeneratorConfig {
        helper_functions: 2,
        max_stmt_depth: 4,
        max_loop_bound: 10,
        max_compute: 40,
        max_seq_len: 3,
    };
    let mut rng = StdRng::seed_from_u64(7);
    for seed in 0..8 {
        let mut generator = ProgramGenerator::new(generator_config, seed);
        let program = generator.generate(format!("fuzz_{seed}"));
        let analysis = analyzer.analyze(&program).expect("analyzes");
        let compiled = program.compile(0x0040_0000).expect("compiles");
        let trace = simulate(&compiled, 50_000_000).expect("halts");
        let geometry = analysis.config().geometry;
        // Fault-free first: the deterministic WCET must hold.
        let fault_free = FaultMap::fault_free(&geometry);
        let outcome = validation(&analysis, Protection::None, &trace, &fault_free);
        assert!(
            outcome.holds(),
            "seed {seed}: fault-free {} > WCET {}",
            outcome.simulated,
            outcome.bound
        );
        // Then adversarially dense fault maps.
        for _ in 0..6 {
            let faults = FaultMap::sample(&geometry, 0.6, &mut rng);
            for protection in Protection::all() {
                let outcome = validation(&analysis, protection, &trace, &faults);
                assert!(
                    outcome.holds(),
                    "seed {seed}/{protection}: {} > {}",
                    outcome.simulated,
                    outcome.bound
                );
            }
        }
    }
}
