//! Reproduction-shape assertions: the qualitative claims of §IV hold on
//! the modelled suite.

use fault_aware_pwcet::core::AnalysisConfig;
use pwcet_bench::{run_benchmark, run_suite, summary, Category, TARGET_PROBABILITY};

#[test]
fn gains_are_positive_for_representative_benchmarks() {
    // §IV-B: "for all benchmarks, using the SRB or the RW results in
    // significantly lower pWCETs compared to an architecture with no
    // protection" — spot-checked on a category-spanning subset (the full
    // 25-benchmark sweep lives in the fig4 binary).
    let config = AnalysisConfig::paper_default();
    for name in ["adpcm", "bs", "fdct", "nsichneu", "ud"] {
        let bench = pwcet_benchsuite::by_name(name).expect("exists");
        let (_, r) = run_benchmark(&bench, &config, TARGET_PROBABILITY).expect("analyzes");
        assert!(r.gain_srb() > 0.0, "{name}: SRB gain {}", r.gain_srb());
        assert!(r.gain_rw() >= r.gain_srb(), "{name}: RW >= SRB");
    }
}

#[test]
fn streaming_code_is_fully_masked() {
    // §IV-B category 1 via its archetype: nsichneu's cache captures only
    // spatial locality, which both mechanisms preserve entirely.
    let config = AnalysisConfig::paper_default();
    let bench = pwcet_benchsuite::by_name("nsichneu").expect("exists");
    let (_, r) = run_benchmark(&bench, &config, TARGET_PROBABILITY).expect("analyzes");
    assert_eq!(r.category(), Category::FullyMasked, "{r:?}");
}

#[test]
fn tiny_resident_code_is_rw_masked() {
    // §IV-B category 2 via its archetype: fibcall fits in the MRU way.
    let config = AnalysisConfig::paper_default();
    let bench = pwcet_benchsuite::by_name("fibcall").expect("exists");
    let (_, r) = run_benchmark(&bench, &config, TARGET_PROBABILITY).expect("analyzes");
    assert_eq!(r.category(), Category::RwMasked, "{r:?}");
}

#[test]
#[ignore = "runs the full 25-benchmark suite (~minutes); exercised by the fig4 binary"]
fn full_suite_reproduces_figure4_shape() {
    let config = AnalysisConfig::paper_default();
    let results = run_suite(&config, TARGET_PROBABILITY).expect("suite analyzes");
    assert_eq!(results.len(), 25);
    for r in &results {
        assert!(r.gain_srb() > 0.0, "{}: SRB gain positive", r.name);
        assert!(
            r.gain_rw() >= r.gain_srb() - 1e-9,
            "{}: RW gain >= SRB gain",
            r.name
        );
    }
    let stats = summary(&results);
    // The paper's headline: both mechanisms cut the pWCET substantially
    // on average, with RW ahead of SRB (48% vs 40% in the paper).
    assert!(stats.avg_gain_rw > stats.avg_gain_srb);
    assert!(stats.avg_gain_srb > 0.25);
    // All four behavior categories are populated.
    for (i, count) in stats.category_counts.iter().enumerate() {
        assert!(*count > 0, "category {} is empty", i + 1);
    }
}
