//! Simulation oracle: sampled executions never beat the static bounds.
//!
//! The differential suite proves warm == cold; this layer proves the
//! (warm-path) static analysis is *sound against execution*: for every
//! sampled fault map the simulated run time stays within the analytic
//! per-map bound, and the Monte-Carlo empirical exceedance curve never
//! rises above the analytic one at the sampled levels.
//!
//! The analyses under test run through the incremental classification
//! *and* the context cache — the oracle pins exactly the paths this PR
//! makes fast.

use std::sync::Arc;

use fault_aware_pwcet::benchsuite;
use fault_aware_pwcet::cache::{FaultMap, GeometryLattice};
use fault_aware_pwcet::core::{
    AnalysisConfig, ContextCache, ProgramAnalysis, Protection, PwcetAnalyzer, ReusePlane,
};
use fault_aware_pwcet::sim::{monte_carlo, simulate, validation, FetchTrace, MonteCarloConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fast-to-simulate benchmarks spanning footprints below and above the
/// 1 KB analyzed cache.
const ORACLE_SUBSET: [&str; 4] = ["bs", "fibcall", "fir", "insertsort"];

const FETCH_LIMIT: u64 = 10_000_000;

/// Analysis via the warm path (incremental classification + shared
/// context cache) plus the concrete fetch trace of the same image.
fn analyze_warm(name: &str, config: &AnalysisConfig) -> (ProgramAnalysis, FetchTrace) {
    let bench = benchsuite::by_name(name).expect("benchmark exists");
    let cache = Arc::new(ContextCache::default());
    let compiled = bench.program.compile(config.code_base).expect("compiles");
    let analysis = PwcetAnalyzer::new(*config)
        .with_cache(Arc::clone(&cache))
        .analyze_compiled(&compiled)
        .expect("analyzes");
    let trace = simulate(&compiled, FETCH_LIMIT).expect("simulates");
    (analysis, trace)
}

#[test]
fn sampled_fault_maps_never_exceed_per_map_bounds() {
    let config = AnalysisConfig::paper_default();
    for name in ORACLE_SUBSET {
        let (analysis, trace) = analyze_warm(name, &config);
        let geometry = analysis.config().geometry;
        let mut rng = StdRng::seed_from_u64(0x0DAC_1E00 + name.len() as u64);
        // Exaggerated block-failure probabilities exercise the multi-fault
        // sets a realistic pfail almost never samples.
        for pbf in [0.05, 0.4, 1.0] {
            for _ in 0..25 {
                let faults = FaultMap::sample(&geometry, pbf, &mut rng);
                for protection in Protection::all() {
                    let outcome = validation(&analysis, protection, &trace, &faults);
                    assert!(
                        outcome.holds(),
                        "{name}/{protection} pbf={pbf}: simulated {} > bound {} ({:?})",
                        outcome.simulated,
                        outcome.bound,
                        faults.per_set_counts()
                    );
                }
            }
        }
    }
}

#[test]
fn derived_geometry_bounds_hold_against_simulation() {
    // The cross-geometry derivation path of the reuse plane: analyses of
    // every lattice way count — all but the widest derived by age
    // truncation, never classified cold — must still bound every
    // simulated execution under sampled fault maps. This pins the
    // *soundness* of derivation independently of the warm==cold
    // differential suite.
    let base = AnalysisConfig::paper_default();
    let lattice = GeometryLattice::paper_default();
    let plane = Arc::new(ReusePlane::in_memory());
    for name in ["bs", "fibcall"] {
        let bench = benchsuite::by_name(name).expect("benchmark exists");
        let compiled = bench.program.compile(base.code_base).expect("compiles");
        let trace = simulate(&compiled, FETCH_LIMIT).expect("simulates");
        for geometry in lattice.members() {
            let mut config = base;
            config.geometry = geometry;
            let analysis = PwcetAnalyzer::new(config)
                .with_reuse_plane(Arc::clone(&plane))
                .analyze_compiled(&compiled)
                .expect("analyzes");
            let mut rng = StdRng::seed_from_u64(0x0DAC_2E00 + u64::from(geometry.ways()));
            for pbf in [0.1, 0.6] {
                for _ in 0..15 {
                    let faults = FaultMap::sample(&geometry, pbf, &mut rng);
                    for protection in Protection::all() {
                        let outcome = validation(&analysis, protection, &trace, &faults);
                        assert!(
                            outcome.holds(),
                            "{name}@{}ways/{protection} pbf={pbf}: simulated {} > bound {}",
                            geometry.ways(),
                            outcome.simulated,
                            outcome.bound,
                        );
                    }
                }
            }
        }
    }
    let stats = plane.stats();
    assert!(
        stats.derived > 0,
        "the oracle must actually exercise derived contexts"
    );
}

#[test]
fn monte_carlo_exceedance_stays_below_the_analytic_curve() {
    // A high pfail puts real mass in the distribution body, so the
    // sampled exceedance levels are meaningful with moderate sample
    // counts.
    let config = AnalysisConfig::paper_default().with_pfail(1e-3).unwrap();
    for name in ORACLE_SUBSET {
        let (analysis, trace) = analyze_warm(name, &config);
        for protection in Protection::all() {
            let report = monte_carlo(
                &analysis,
                protection,
                &trace,
                &MonteCarloConfig {
                    samples: 300,
                    seed: 0x5EED_0001,
                },
            );
            let wcet = analysis.fault_free_wcet();
            for value in [wcet, wcet + 500, wcet + 5_000, report.max_sample()] {
                assert!(
                    report.analytic_dominates_at(value, 0.05),
                    "{name}/{protection}: empirical {} > analytic {} at {value}",
                    report.empirical_exceedance(value),
                    report.estimate().exceedance_of(value),
                );
            }
        }
    }
}

#[test]
fn worst_case_fault_map_is_bounded_by_the_distribution_maximum() {
    // The absolute analytic worst case (every set fully faulty) bounds
    // every sample — the distribution maximum cannot be out-sampled.
    let config = AnalysisConfig::paper_default().with_pfail(1e-3).unwrap();
    for name in ORACLE_SUBSET {
        let (analysis, trace) = analyze_warm(name, &config);
        let geometry = analysis.config().geometry;
        let worst: u64 = (0..geometry.sets())
            .map(|s| analysis.fmm().get(s, geometry.ways()))
            .sum::<u64>()
            * analysis.config().timing.miss_penalty_cycles()
            + analysis.fault_free_wcet();
        let report = monte_carlo(
            &analysis,
            Protection::None,
            &trace,
            &MonteCarloConfig {
                samples: 200,
                seed: 0x5EED_0002,
            },
        );
        assert!(
            report.max_sample() <= worst,
            "{name}: sample {} beats the analytic maximum {worst}",
            report.max_sample()
        );
    }
}
