//! Differential suite: the sparse warm-started solver stack is
//! bound-identical to the frozen dense reference.
//!
//! The production ILP path (sparse bounded-variable revised simplex +
//! clone-free warm-started branch and bound + per-context
//! `IpetTemplate` objective fan-out) must reproduce, bit for bit, every
//! bound the original dense tableau + clone-per-node solver computed:
//! fault-free WCETs, every fault-miss-map cell, every SRB column, and
//! therefore every pWCET quantile. `AnalysisConfig.ipet.solver =
//! SolverBackend::DenseReference` re-runs the pipeline on the frozen
//! reference (`crates/ilp/src/reference.rs`); this suite compares the
//! two end to end — a category-spanning subset always on, the complete
//! 25-benchmark suite `#[ignore]`d for the nightly CI
//! `--include-ignored` step. The solver-level random-instance
//! equivalence lives in `crates/ilp/tests/properties.rs`.

use std::sync::Arc;

use fault_aware_pwcet::benchsuite;
use fault_aware_pwcet::core::{
    AnalysisConfig, Parallelism, ProgramAnalysis, Protection, PwcetAnalyzer, ReusePlane,
    SolverBackend,
};

const TARGET_PROBABILITIES: [f64; 3] = [1e-6, 1e-15, 1.0];

/// The category-spanning subset the always-on tests use (same population
/// as `incremental_equivalence.rs`).
const SPAN: [&str; 6] = ["bs", "crc", "fibcall", "fir", "matmult", "ud"];

fn sparse_config() -> AnalysisConfig {
    AnalysisConfig::paper_default().with_parallelism(Parallelism::Sequential)
}

fn reference_config() -> AnalysisConfig {
    let mut config = sparse_config();
    config.ipet.solver = SolverBackend::DenseReference;
    config
}

fn assert_bounds_identical(name: &str, sparse: &ProgramAnalysis, dense: &ProgramAnalysis) {
    assert_eq!(
        sparse.fault_free_wcet(),
        dense.fault_free_wcet(),
        "{name}: fault-free WCET"
    );
    assert_eq!(sparse.fmm(), dense.fmm(), "{name}: fault miss map");
    assert_eq!(
        sparse.srb_last_column(),
        dense.srb_last_column(),
        "{name}: SRB columns"
    );
    for protection in Protection::all() {
        for p in TARGET_PROBABILITIES {
            assert_eq!(
                sparse.estimate(protection).pwcet_at(p),
                dense.estimate(protection).pwcet_at(p),
                "{name}/{protection}: quantile at {p}"
            );
        }
    }
}

fn assert_benchmark_equivalent(name: &str) {
    let bench = benchsuite::by_name(name).expect("benchmark exists");
    let sparse = PwcetAnalyzer::new(sparse_config())
        .analyze(&bench.program)
        .expect("sparse analysis");
    let dense = PwcetAnalyzer::new(reference_config())
        .analyze(&bench.program)
        .expect("reference analysis");
    assert_bounds_identical(name, &sparse, &dense);
}

#[test]
fn sparse_bounds_match_dense_reference_on_spanning_subset() {
    for name in SPAN {
        assert_benchmark_equivalent(name);
    }
}

#[test]
fn parallel_sparse_pipeline_matches_dense_reference() {
    // The fan-out workers share the factored template (pooled warm
    // bases) and the WCET instance may split branch-and-bound subtrees:
    // neither may change a single bound.
    let bench = benchsuite::by_name("crc").expect("benchmark exists");
    let parallel = PwcetAnalyzer::new(sparse_config().with_parallelism(Parallelism::threads(4)))
        .analyze(&bench.program)
        .expect("parallel sparse analysis");
    let dense = PwcetAnalyzer::new(reference_config())
        .analyze(&bench.program)
        .expect("reference analysis");
    assert_bounds_identical("crc(parallel)", &parallel, &dense);
}

#[test]
fn solve_stage_records_template_warm_starts() {
    // The per-(set, fault) fan-out must actually hit the factored
    // basis: one cold start (the first solve binds the template), warm
    // starts for the rest, all observable through the plane the service
    // reports from.
    let plane = Arc::new(ReusePlane::in_memory());
    let analyzer = PwcetAnalyzer::new(sparse_config()).with_reuse_plane(Arc::clone(&plane));
    let bench = benchsuite::by_name("crc").expect("benchmark exists");
    analyzer.analyze(&bench.program).expect("analysis");
    let stats = plane.ilp_stats();
    assert!(stats.bb_nodes > 0, "solve stage ran ILPs");
    // One cold start builds the factored basis; branching nodes may add
    // cold vertex probes, so the claim is "warm dominates", not an
    // exact cold count.
    assert!(stats.cold_starts >= 1, "the first solve builds the basis");
    assert!(
        stats.warm_starts > stats.cold_starts,
        "the delta fan-out warm-starts from the template basis \
         (warm {} vs cold {})",
        stats.warm_starts,
        stats.cold_starts
    );

    // A second analysis of the same program reuses the memoized solve
    // artifacts entirely: no new solver work may be recorded.
    analyzer.analyze(&bench.program).expect("memoized analysis");
    assert_eq!(
        plane.ilp_stats(),
        stats,
        "memoized re-request solves nothing"
    );
}

#[test]
fn derived_geometry_sweep_matches_dense_reference_per_point() {
    // A widest-first associativity sweep over one shared plane: every
    // narrower sibling derives its classification from the widest point
    // and re-solves its ILP objectives against the *shared*
    // cross-geometry template (same registry key, warm basis pool,
    // objective memo). Each point's bounds must still be bit-identical
    // to an isolated dense-reference analysis of that geometry — the
    // sibling path may share solver state, never solver answers that
    // differ.
    use fault_aware_pwcet::cache::GeometryLattice;

    let bench = benchsuite::by_name("crc").expect("benchmark exists");
    let lattice = GeometryLattice::paper_default();
    let plane = Arc::new(ReusePlane::in_memory());
    for geometry in lattice.members() {
        let mut point = sparse_config();
        point.geometry = geometry;
        let derived = PwcetAnalyzer::new(point)
            .with_reuse_plane(Arc::clone(&plane))
            .analyze(&bench.program)
            .expect("derived-sweep analysis");
        let mut reference = reference_config();
        reference.geometry = geometry;
        let dense = PwcetAnalyzer::new(reference)
            .analyze(&bench.program)
            .expect("reference analysis");
        assert_bounds_identical(&format!("crc@{}ways", geometry.ways()), &derived, &dense);
    }
    // The comparison must have exercised the shared-template path, not
    // a per-point cold rebuild.
    let stats = plane.stats();
    assert_eq!(
        stats.derived as usize,
        lattice.len() - 1,
        "every narrower point derives from the widest"
    );
    assert!(
        stats.template_hits >= (lattice.len() - 1) as u64,
        "every sibling re-solves against the shared template \
         (got {} hits)",
        stats.template_hits
    );
    assert!(
        stats.objective_hits > 0,
        "coinciding per-set classifications must answer from the \
         objective memo"
    );
}

#[test]
#[ignore = "runs the complete 25-benchmark suite under both solver backends (~minutes); nightly CI runs it via --include-ignored"]
fn sparse_bounds_match_dense_reference_across_the_entire_suite() {
    for bench in benchsuite::all() {
        assert_benchmark_equivalent(bench.name);
    }
}
