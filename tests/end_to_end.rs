//! Cross-crate integration: the full pipeline on real suite benchmarks.

use fault_aware_pwcet::benchsuite;
use fault_aware_pwcet::core::{AnalysisConfig, Protection, PwcetAnalyzer};

const TARGET: f64 = 1e-15;

/// A fast subset spanning the four behavior categories.
const SPAN: [&str; 6] = ["bs", "crc", "fibcall", "matmult", "ud", "nsichneu"];

#[test]
fn protection_ordering_holds_across_the_suite_subset() {
    let analyzer = PwcetAnalyzer::new(AnalysisConfig::paper_default());
    for name in SPAN {
        let bench = benchsuite::by_name(name).expect("benchmark exists");
        let analysis = analyzer.analyze(&bench.program).expect("analyzes");
        let none = analysis.estimate(Protection::None).pwcet_at(TARGET);
        let srb = analysis
            .estimate(Protection::SharedReliableBuffer)
            .pwcet_at(TARGET);
        let rw = analysis.estimate(Protection::ReliableWay).pwcet_at(TARGET);
        let ff = analysis.fault_free_wcet();
        assert!(ff <= rw, "{name}: fault-free <= RW");
        assert!(rw <= srb, "{name}: RW <= SRB");
        assert!(srb <= none, "{name}: SRB <= none");
        assert!(none > ff, "{name}: faults must hurt the unprotected cache");
    }
}

#[test]
fn exceedance_curves_are_valid_ccdfs() {
    let analyzer = PwcetAnalyzer::new(AnalysisConfig::paper_default());
    let bench = benchsuite::by_name("crc").expect("crc exists");
    let analysis = analyzer.analyze(&bench.program).expect("analyzes");
    for protection in Protection::all() {
        let curve = analysis.estimate(protection).exceedance_curve();
        assert!(!curve.is_empty(), "{protection}");
        for pair in curve.windows(2) {
            assert!(pair[0].value < pair[1].value, "{protection}: values sorted");
            assert!(
                pair[0].exceedance >= pair[1].exceedance,
                "{protection}: exceedance non-increasing"
            );
        }
        let last = curve.last().expect("non-empty");
        // The final exceedance is the conservative pruning tail: far
        // below the target probability, but not exactly zero.
        assert!(
            last.exceedance <= 1e-15,
            "{protection}: tail {} stays below the target probability",
            last.exceedance
        );
    }
}

#[test]
fn fault_free_configuration_collapses_to_deterministic_wcet() {
    let config = AnalysisConfig::paper_default()
        .with_pfail(0.0)
        .expect("valid");
    let analyzer = PwcetAnalyzer::new(config);
    let bench = benchsuite::by_name("fibcall").expect("fibcall exists");
    let analysis = analyzer.analyze(&bench.program).expect("analyzes");
    for protection in Protection::all() {
        let estimate = analysis.estimate(protection);
        assert_eq!(estimate.pwcet_at(1.0), analysis.fault_free_wcet());
        assert_eq!(estimate.pwcet_at(TARGET), analysis.fault_free_wcet());
        assert_eq!(estimate.penalty_distribution().max_value(), Some(0));
    }
}

#[test]
fn facade_reexports_compose() {
    // The doc-comment pipeline of the crate root, exercised as a test.
    use fault_aware_pwcet::core::PwcetAnalyzer;
    let bench = benchsuite::by_name("matmult").expect("matmult exists");
    let analyzer = PwcetAnalyzer::new(AnalysisConfig::paper_default());
    let estimate = analyzer
        .estimate(&bench.program, Protection::ReliableWay)
        .expect("analyzes");
    assert!(estimate.pwcet_at(TARGET) >= estimate.fault_free_wcet());
}

#[test]
fn fmm_is_consistent_with_estimates() {
    // The all-faulty analytic bound (sum of last FMM columns) upper-bounds
    // the pWCET at any probability.
    let analyzer = PwcetAnalyzer::new(AnalysisConfig::paper_default());
    let bench = benchsuite::by_name("bs").expect("bs exists");
    let analysis = analyzer.analyze(&bench.program).expect("analyzes");
    let geometry = analysis.config().geometry;
    let worst_penalty: u64 = (0..geometry.sets())
        .map(|s| analysis.fmm().get(s, geometry.ways()))
        .sum::<u64>()
        * analysis.config().timing.miss_penalty_cycles();
    let estimate = analysis.estimate(Protection::None);
    // 1e-20 sits below every binomial combination yet above the pruning
    // tail, so the quantile is the distribution maximum.
    assert!(estimate.pwcet_at(1e-20) <= analysis.fault_free_wcet() + worst_penalty);
}
