//! Differential suite: the warm paths are bit-identical to the cold ones.
//!
//! Warm-started fixpoints are a classic soundness trap — a seed above the
//! fixpoint silently converges to an imprecise (or, with a buggy domain,
//! unsound) solution. This suite pins the incremental classification and
//! the content-addressed context cache against the cold reference across
//! the modelled benchmark suite:
//!
//! * every CHMC level of every benchmark, warm chain vs. cold fixpoint
//!   (`classification_*` tests — whole suite, classification only);
//! * the full pipeline — FMM, SRB columns, exceedance curves, quantiles —
//!   on a category-spanning subset (always on) and on the complete suite
//!   (`#[ignore]`d, exercised by the nightly CI `--include-ignored` step);
//! * the bit-packed word-parallel classification kernel against the frozen
//!   set-based reference backend (`packed_backend_*` tests — spanning
//!   subset always on, complete suite nightly).

use std::sync::Arc;

use fault_aware_pwcet::analysis::{
    classify, classify_level_from_with, classify_level_with, classify_srb_with, ClassifierBackend,
};
use fault_aware_pwcet::benchsuite;
use fault_aware_pwcet::cache::GeometryLattice;
use fault_aware_pwcet::core::{
    expand_compiled, AnalysisConfig, AnalysisContext, ClassificationMode, ContextCache,
    Parallelism, ProgramAnalysis, Protection, PwcetAnalyzer, ReusePlane,
};

const TARGET_PROBABILITIES: [f64; 4] = [1e-3, 1e-9, 1e-15, 1.0];

/// The category-spanning subset the always-on full-pipeline tests use.
const SPAN: [&str; 6] = ["bs", "crc", "fibcall", "fir", "matmult", "ud"];

fn cold_config() -> AnalysisConfig {
    AnalysisConfig::paper_default()
        .with_classification(ClassificationMode::Cold)
        .with_parallelism(Parallelism::Sequential)
}

fn warm_config() -> AnalysisConfig {
    AnalysisConfig::paper_default()
        .with_classification(ClassificationMode::Incremental)
        .with_parallelism(Parallelism::Sequential)
}

/// Asserts every protection-independent and protection-dependent artifact
/// of two analyses is bit-identical.
fn assert_analyses_identical(name: &str, cold: &ProgramAnalysis, warm: &ProgramAnalysis) {
    assert_eq!(
        cold.fault_free_wcet(),
        warm.fault_free_wcet(),
        "{name}: fault-free WCET"
    );
    assert_eq!(cold.fmm(), warm.fmm(), "{name}: fault miss map");
    assert_eq!(
        cold.srb_last_column(),
        warm.srb_last_column(),
        "{name}: SRB columns"
    );
    for protection in Protection::all() {
        let cold_estimate = cold.estimate(protection);
        let warm_estimate = warm.estimate(protection);
        assert_eq!(
            cold_estimate.exceedance_curve(),
            warm_estimate.exceedance_curve(),
            "{name}/{protection}: exceedance curve"
        );
        for p in TARGET_PROBABILITIES {
            assert_eq!(
                cold_estimate.pwcet_at(p),
                warm_estimate.pwcet_at(p),
                "{name}/{protection}: quantile at {p}"
            );
        }
    }
}

#[test]
fn classification_warm_chain_matches_cold_across_the_suite() {
    // Whole benchmark suite, every associativity level: the warm-started
    // chain must reproduce the cold fixpoint bit for bit. Classification
    // only (no ILP), so the full population stays fast enough for tier 1.
    let config = warm_config();
    for bench in benchsuite::all() {
        let compiled = bench.program.compile(config.code_base).unwrap();
        let context = AnalysisContext::build_with_mode(
            &compiled,
            config.geometry,
            ClassificationMode::Incremental,
        )
        .unwrap();
        context.prewarm(Parallelism::Sequential);
        let cfg = expand_compiled(&compiled).unwrap();
        for assoc in 0..=config.geometry.ways() {
            let cold = classify(&cfg, &config.geometry, assoc);
            assert_eq!(
                context.chmc(assoc),
                &cold,
                "{}: CHMC level {assoc} must be bit-identical",
                bench.name
            );
        }
    }
}

#[test]
fn classification_is_parallelism_invariant_under_warm_start() {
    // The warm chain + SRB pair runs through `par_join`; fan-out must not
    // change a single classification.
    let config = warm_config();
    for name in SPAN {
        let bench = benchsuite::by_name(name).unwrap();
        let compiled = bench.program.compile(config.code_base).unwrap();
        let sequential = AnalysisContext::build(&compiled, config.geometry).unwrap();
        sequential.prewarm(Parallelism::Sequential);
        let parallel = AnalysisContext::build(&compiled, config.geometry).unwrap();
        parallel.prewarm(Parallelism::threads(4));
        for assoc in 0..=config.geometry.ways() {
            assert_eq!(
                sequential.chmc(assoc),
                parallel.chmc(assoc),
                "{name}: level {assoc}"
            );
        }
        assert_eq!(sequential.srb(), parallel.srb(), "{name}: SRB map");
    }
}

#[test]
fn full_pipeline_warm_matches_cold_on_spanning_subset() {
    let cache = Arc::new(ContextCache::default());
    let cold_analyzer = PwcetAnalyzer::new(cold_config());
    let warm_analyzer = PwcetAnalyzer::new(warm_config()).with_cache(Arc::clone(&cache));
    for name in SPAN {
        let bench = benchsuite::by_name(name).unwrap();
        let cold = cold_analyzer.analyze(&bench.program).unwrap();
        let warm = warm_analyzer.analyze(&bench.program).unwrap();
        assert_analyses_identical(name, &cold, &warm);
        // Second warm run: answered from the cache, still identical.
        let cached = warm_analyzer.analyze(&bench.program).unwrap();
        assert_analyses_identical(name, &cold, &cached);
    }
    let stats = cache.stats();
    assert_eq!(stats.misses as usize, SPAN.len());
    assert_eq!(stats.hits as usize, SPAN.len(), "re-analyses must hit");
}

#[test]
fn batch_with_cache_matches_cold_individual_analyses() {
    let programs: Vec<_> = SPAN
        .iter()
        .map(|name| benchsuite::by_name(name).unwrap().program)
        .collect();
    let cache = Arc::new(ContextCache::default());
    let batch = PwcetAnalyzer::new(warm_config())
        .with_cache(Arc::clone(&cache))
        .analyze_batch(&programs)
        .unwrap();
    let cold_analyzer = PwcetAnalyzer::new(cold_config());
    for (program, warm) in programs.iter().zip(&batch) {
        let cold = cold_analyzer.analyze(program).unwrap();
        assert_analyses_identical(warm.name(), &cold, warm);
    }
}

/// Derived-geometry equivalence over one benchmark: every way count of
/// the lattice, resolved through a shared [`ReusePlane`] (so every
/// narrower point is *derived* from the widest, never built cold), must
/// match an independent cold-mode analysis of that geometry — CHMC
/// levels, FMM, SRB columns, exceedance curves, and quantiles.
fn assert_geometry_derivation_matches_cold(name: &str, plane: &Arc<ReusePlane>) {
    let lattice = GeometryLattice::paper_default();
    let bench = benchsuite::by_name(name).unwrap();
    let compiled = bench.program.compile(warm_config().code_base).unwrap();
    for geometry in lattice.members() {
        let mut warm_point = warm_config();
        warm_point.geometry = geometry;
        let derived = PwcetAnalyzer::new(warm_point)
            .with_reuse_plane(Arc::clone(plane))
            .analyze_compiled(&compiled)
            .unwrap();

        let mut cold_point = cold_config();
        cold_point.geometry = geometry;
        let cold = PwcetAnalyzer::new(cold_point)
            .analyze_compiled(&compiled)
            .unwrap();
        assert_analyses_identical(&format!("{name}@{}ways", geometry.ways()), &cold, &derived);

        // Classification levels of the derived context, against direct
        // cold fixpoints under the narrow geometry.
        let context = plane
            .get_or_build(&compiled, geometry, ClassificationMode::Incremental)
            .unwrap();
        let cfg = expand_compiled(&compiled).unwrap();
        for assoc in 0..=geometry.ways() {
            let reference = classify(&cfg, &geometry, assoc);
            assert_eq!(
                context.chmc(assoc),
                &reference,
                "{name}@{}ways: CHMC level {assoc}",
                geometry.ways()
            );
        }
    }
}

#[test]
fn geometry_derivation_matches_cold_on_spanning_subset() {
    let plane = Arc::new(ReusePlane::in_memory());
    for name in SPAN {
        assert_geometry_derivation_matches_cold(name, &plane);
    }
    let stats = plane.stats();
    assert_eq!(
        stats.cold_builds as usize,
        SPAN.len(),
        "one cold build per benchmark — the widest geometry"
    );
    assert_eq!(
        stats.derived as usize,
        SPAN.len() * (GeometryLattice::paper_default().len() - 1),
        "every narrower way count is derived"
    );
}

#[test]
#[ignore = "runs the complete 25-benchmark suite across every lattice way count (~minutes); nightly CI runs it via --include-ignored"]
fn geometry_derivation_matches_cold_across_the_entire_suite() {
    let plane = Arc::new(ReusePlane::in_memory());
    for bench in benchsuite::all() {
        assert_geometry_derivation_matches_cold(bench.name, &plane);
    }
    assert_eq!(plane.stats().cold_builds as usize, benchsuite::all().len());
}

/// Packed-vs-reference identity of one benchmark: every CHMC level both
/// cold and truncation-warm-started, the SRB map, and the full pipeline
/// (FMM, SRB columns, exceedance curves, quantiles) driven through a
/// reference-backed context. The `SetReference` backend replays the
/// pre-packing set-based fixpoints, so any packed-kernel bug — a
/// mis-shifted age lane, a stray bit past the interned universe, a wrong
/// prefix-OR in the join — shows up as a diff here.
fn assert_packed_matches_reference(name: &str) {
    let config = warm_config();
    let bench = benchsuite::by_name(name).unwrap();
    let compiled = bench.program.compile(config.code_base).unwrap();
    let cfg = expand_compiled(&compiled).unwrap();
    let geometry = config.geometry;
    let ways = geometry.ways();

    // Classification levels: cold at every associativity, plus the
    // truncation warm starts the incremental chain actually takes.
    let packed_full = classify_level_with(&cfg, &geometry, ways, ClassifierBackend::Packed, None);
    let reference_full =
        classify_level_with(&cfg, &geometry, ways, ClassifierBackend::SetReference, None);
    assert_eq!(packed_full, reference_full, "{name}: full level");
    for assoc in 0..ways {
        let packed = classify_level_with(&cfg, &geometry, assoc, ClassifierBackend::Packed, None);
        let reference = classify_level_with(
            &cfg,
            &geometry,
            assoc,
            ClassifierBackend::SetReference,
            None,
        );
        assert_eq!(packed, reference, "{name}: cold level {assoc}");
        let warm_packed = classify_level_from_with(
            &cfg,
            &geometry,
            &packed_full,
            assoc,
            ClassifierBackend::Packed,
            None,
        );
        let warm_reference = classify_level_from_with(
            &cfg,
            &geometry,
            &reference_full,
            assoc,
            ClassifierBackend::SetReference,
            None,
        );
        assert_eq!(warm_packed, warm_reference, "{name}: warm level {assoc}");
        assert_eq!(warm_packed, packed, "{name}: warm level {assoc} vs cold");
    }
    assert_eq!(
        classify_srb_with(&cfg, &geometry, ClassifierBackend::Packed, None),
        classify_srb_with(&cfg, &geometry, ClassifierBackend::SetReference, None),
        "{name}: SRB map"
    );

    // Full pipeline behind each backend's context.
    let analyzer = PwcetAnalyzer::new(config);
    let packed_context = AnalysisContext::build_with_backend(
        &compiled,
        geometry,
        ClassificationMode::Incremental,
        ClassifierBackend::Packed,
    )
    .unwrap();
    let reference_context = AnalysisContext::build_with_backend(
        &compiled,
        geometry,
        ClassificationMode::Incremental,
        ClassifierBackend::SetReference,
    )
    .unwrap();
    let packed = analyzer.analyze_with_context(&packed_context).unwrap();
    let reference = analyzer.analyze_with_context(&reference_context).unwrap();
    assert_analyses_identical(name, &reference, &packed);
}

#[test]
fn packed_backend_matches_reference_on_spanning_subset() {
    for name in SPAN {
        assert_packed_matches_reference(name);
    }
}

#[test]
#[ignore = "replays the set-based reference kernel across the complete 25-benchmark suite (~minutes); nightly CI runs it via --include-ignored"]
fn packed_backend_matches_reference_across_the_entire_suite() {
    for bench in benchsuite::all() {
        assert_packed_matches_reference(bench.name);
    }
}

#[test]
#[ignore = "runs the complete 25-benchmark suite twice (~minutes); nightly CI runs it via --include-ignored"]
fn full_pipeline_warm_matches_cold_across_the_entire_suite() {
    let cache = Arc::new(ContextCache::default());
    let cold_analyzer = PwcetAnalyzer::new(cold_config());
    let warm_analyzer = PwcetAnalyzer::new(warm_config()).with_cache(Arc::clone(&cache));
    for bench in benchsuite::all() {
        let cold = cold_analyzer.analyze(&bench.program).unwrap();
        let warm = warm_analyzer.analyze(&bench.program).unwrap();
        assert_analyses_identical(bench.name, &cold, &warm);
    }
    assert_eq!(cache.stats().misses as usize, benchsuite::all().len());
}
