//! # fault-aware-pwcet
//!
//! Reproduction of *"Probabilistic WCET estimation in presence of hardware
//! for mitigating the impact of permanent faults"* (Hardy, Puaut, Sazeides —
//! DATE 2016).
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`prob`] — discrete penalty distributions, fault model (Eqs. 1–3).
//! * [`mips`] — MIPS-I subset ISA (encode/decode/assemble).
//! * [`progen`] — structured program DSL compiled to MIPS machine code.
//! * [`cfg`] — binary → control-flow graph reconstruction, loops, contexts.
//! * [`cache`] — concrete LRU cache machines (unprotected / RW / SRB).
//! * [`analysis`] — abstract-interpretation cache analysis (Must / May /
//!   Persistence) and CHMC classification.
//! * [`ilp`] — simplex + branch-and-bound ILP solver.
//! * [`ipet`] — IPET and tree-based worst-case path engines.
//! * [`core`] — the paper's contribution: fault miss maps, per-set penalty
//!   distributions, pWCET estimation under the three protection levels.
//! * [`benchsuite`] — the 25 modelled Mälardalen benchmarks.
//! * [`sim`] — functional MIPS simulator and Monte-Carlo validation.
//! * [`serve`] — the sharded analysis service: `PWCQ` wire protocol,
//!   bounded work-queue shards over a shared reuse plane, TCP server
//!   (`pwcet-serve`) and client (`pwcet-client`).
//! * [`obs`] — the hand-rolled telemetry plane: RAII stage spans under
//!   wire-propagated trace IDs, and a lock-free metrics registry with
//!   log-bucketed latency histograms (exact p50/p95/p99 exposition).
//!
//! ## Quickstart
//!
//! ```
//! use fault_aware_pwcet::benchsuite;
//! use fault_aware_pwcet::core::{AnalysisConfig, Protection, PwcetAnalyzer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = benchsuite::by_name("matmult").expect("benchmark exists");
//! let config = AnalysisConfig::paper_default();
//! let analyzer = PwcetAnalyzer::new(config);
//! let estimate = analyzer.estimate(&bench.program, Protection::ReliableWay)?;
//! let pwcet = estimate.pwcet_at(1e-15);
//! assert!(pwcet >= estimate.fault_free_wcet());
//! # Ok(())
//! # }
//! ```

pub use pwcet_analysis as analysis;
pub use pwcet_benchsuite as benchsuite;
pub use pwcet_cache as cache;
pub use pwcet_cfg as cfg;
pub use pwcet_core as core;
pub use pwcet_ilp as ilp;
pub use pwcet_ipet as ipet;
pub use pwcet_mips as mips;
pub use pwcet_obs as obs;
pub use pwcet_prob as prob;
pub use pwcet_progen as progen;
pub use pwcet_serve as serve;
pub use pwcet_sim as sim;
