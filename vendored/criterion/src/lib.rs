//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! The build image has no access to crates.io, so the workspace vendors the
//! narrow slice of `criterion` its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Compared to upstream this harness does no statistical outlier analysis:
//! it warms up, times a wall-clock window of iterations, and reports the
//! mean. Results are kept on the [`Criterion`] value
//! ([`Criterion::results`]) so a bench target can post-process them (the
//! workspace uses this to emit `BENCH_pipeline.json`).
//!
//! When invoked with `--test` (as `cargo test` does for `harness = false`
//! targets) every benchmark body runs exactly once, so test runs stay fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Fully qualified benchmark name (`group/function/parameter`).
    pub name: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Number of iterations the mean was computed over.
    pub iterations: u64,
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id for a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    test_mode: bool,
}

impl Criterion {
    /// Applies command-line arguments (`--test` switches to one-shot mode).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name.to_string(), f);
        self
    }

    /// All measurements finished so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// `true` when running one-shot under `cargo test` (`--test`):
    /// timings are smoke-test noise, not measurements.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }
}

/// A group of benchmarks sharing timing parameters.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Lower bound on measured iterations (upstream semantics approximated).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Wall-clock time spent warming up before measuring.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up_time = time;
        self
    }

    /// Wall-clock time spent measuring.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Benchmarks `f` under `id` (a string or [`BenchmarkId`]).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_name = self.full_name(&id.into_benchmark_id());
        let result = run_bench(
            &full_name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            self.criterion.test_mode,
            &mut f,
        );
        self.criterion.results.push(result);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; measurements are already
    /// recorded).
    pub fn finish(self) {}

    fn full_name(&self, id: &BenchmarkId) -> String {
        if self.name.is_empty() {
            id.name.clone()
        } else {
            format!("{}/{}", self.name, id.name)
        }
    }
}

/// Conversion of the accepted `bench_function` id forms.
pub trait IntoBenchmarkId {
    /// The normalized id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Drives the iterations of one benchmark body.
pub struct Bencher {
    mode: BencherMode,
    total: Duration,
    iterations: u64,
}

enum BencherMode {
    /// Run once (under `cargo test`).
    Once,
    /// Keep iterating until the deadline passes.
    Measure { deadline: Instant },
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BencherMode::Once => {
                let start = Instant::now();
                black_box(routine());
                self.total += start.elapsed();
                self.iterations = 1;
            }
            BencherMode::Measure { deadline } => loop {
                let start = Instant::now();
                black_box(routine());
                self.total += start.elapsed();
                self.iterations += 1;
                if Instant::now() >= deadline {
                    break;
                }
            },
        }
    }
}

fn run_bench<F>(
    name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    f: &mut F,
) -> BenchResult
where
    F: FnMut(&mut Bencher),
{
    if !test_mode {
        // Warm-up window: run the body without recording.
        let mut warmup = Bencher {
            mode: BencherMode::Measure {
                deadline: Instant::now() + warm_up_time,
            },
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut warmup);
    }

    let mut bencher = Bencher {
        mode: if test_mode {
            BencherMode::Once
        } else {
            BencherMode::Measure {
                deadline: Instant::now() + measurement_time,
            }
        },
        total: Duration::ZERO,
        iterations: 0,
    };
    // Upstream runs `sample_size` samples; approximate by growing the
    // window until at least that many iterations were seen.
    f(&mut bencher);
    while !test_mode && (bencher.iterations as usize) < sample_size {
        f(&mut bencher);
    }

    let iterations = bencher.iterations.max(1);
    let mean_ns = bencher.total.as_nanos() as f64 / iterations as f64;
    println!(
        "{name:<60} time: {:>12.1} ns/iter  ({iterations} iters)",
        mean_ns
    );
    BenchResult {
        name: name.to_string(),
        mean_ns,
        iterations,
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_results() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("g");
            group
                .sample_size(3)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(5));
            group.bench_function("f", |b| b.iter(|| black_box(2 + 2)));
            group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            group.finish();
        }
        let results = c.results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].name, "g/f");
        assert_eq!(results[1].name, "g/with_input/7");
        assert!(results.iter().all(|r| r.iterations >= 3));
    }
}
