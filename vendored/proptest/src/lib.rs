//! Offline drop-in subset of the `proptest` crate API.
//!
//! The build image has no access to crates.io, so the workspace vendors the
//! slice of `proptest` its property tests rely on: the [`Strategy`] trait
//! with [`prop_map`](Strategy::prop_map) /
//! [`prop_flat_map`](Strategy::prop_flat_map), range and tuple strategies,
//! [`collection::vec`], [`any`], and the [`proptest!`] / [`prop_oneof!`] /
//! [`prop_assert!`] macros.
//!
//! Differences from upstream worth knowing:
//!
//! * no shrinking — a failing case panics with the plain assertion message;
//! * cases are generated from a per-test deterministic seed (the hashed
//!   test name), so reruns are reproducible;
//! * the default case count is 64 (upstream: 256); override it with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` as usual.
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//!
//! let strategy = (0u32..10).prop_map(|x| x * 2);
//! let mut runner = proptest::test_runner("doc");
//! for _ in 0..32 {
//!     let v = strategy.sample(&mut runner);
//!     assert!(v < 20 && v % 2 == 0);
//! }
//! ```

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG threaded through strategy sampling.
pub type TestRng = StdRng;

/// Runtime configuration of a [`proptest!`] block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Builds the deterministic RNG for one named test.
pub fn test_runner(name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (see [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].sample(rng)
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one value covering the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// The full-domain strategy for `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T` (upstream `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: std::marker::PhantomData,
    }
}

/// Collection strategies (upstream `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length ranges accepted by [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (upstream `proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Deliberate divergence from upstream (50% `Some`): 75%
            // `Some`, so small case counts still exercise the payload.
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// A strategy for `Option<T>` values drawing the `Some` payload from
    /// `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = super::test_runner("ranges");
        for _ in 0..1000 {
            let v = (3u32..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1i32..=4).sample(&mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let strategy = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0u32..10, n..=n).prop_map(move |v| (n, v)));
        let mut rng = super::test_runner("compose");
        for _ in 0..200 {
            let (n, v) = strategy.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn oneof_draws_every_arm() {
        let strategy = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = super::test_runner("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strategy.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(x in 0u32..100, v in crate::collection::vec(0u8..5, 1..6)) {
            prop_assert!(x < 100);
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert_eq!(v.iter().filter(|&&b| b >= 5).count(), 0);
        }
    }
}
