//! Offline drop-in subset of the `rand` crate API.
//!
//! The build image has no access to crates.io, so the workspace vendors the
//! narrow slice of `rand` it actually uses: [`Rng::gen_bool`],
//! [`Rng::gen_range`] over half-open and inclusive integer/float ranges,
//! and a deterministic [`rngs::StdRng`] seedable through
//! [`SeedableRng::seed_from_u64`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — not `rand`'s ChaCha12, so streams differ from upstream
//! `rand`, but every consumer in this workspace only relies on
//! *determinism per seed* and reasonable statistical quality, both of which
//! hold.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x = rng.gen_range(0..100u32);
//! assert!(x < 100);
//! let y = rng.gen_range(1..=6usize);
//! assert!((1..=6).contains(&y));
//! let _coin = rng.gen_bool(0.5);
//! ```

use std::ops::{Range, RangeInclusive};

/// Sources of randomness: the core interface every generator implements.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        uniform01(self.next_u64()) < p.clamp(0.0, 1.0)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single 64-bit seed, expanding it with
    /// SplitMix64 as `rand` does.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform01(bits: u64) -> f64 {
    // 53 random bits into [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform draw from `[0, width)` (`width > 0`) by rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, width: u128) -> u128 {
    debug_assert!(width > 0);
    if width == 1 {
        return 0;
    }
    let zone = u128::MAX - (u128::MAX % width);
    loop {
        let raw = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        if raw < zone {
            return raw % width;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_below(rng, width) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * uniform01(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        // The closed upper end is hit with probability 0 anyway; reuse the
        // half-open draw.
        lo + (hi - lo) * uniform01(rng.next_u64())
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 seed expansion (the reference recommendation).
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20u32);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_rate_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn range_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
