//! Analyzing your own program: build a structured task with the DSL, run
//! every analysis stage explicitly, and validate the result against the
//! functional simulator.
//!
//! This walks the full pipeline that `PwcetAnalyzer` packages: compile →
//! reconstruct CFG → classify → IPET → fault miss map → estimate, plus a
//! Monte-Carlo soundness check.
//!
//! ```text
//! cargo run --release --example custom_program
//! ```

use fault_aware_pwcet::analysis::classify;
use fault_aware_pwcet::cache::{CacheGeometry, CacheTiming};
use fault_aware_pwcet::core::{expand_compiled, AnalysisConfig, Protection, PwcetAnalyzer};
use fault_aware_pwcet::ipet::{ipet_bound, tree_bound, CostModel, IpetOptions};
use fault_aware_pwcet::progen::{stmt, Program};
use fault_aware_pwcet::sim::{monte_carlo, simulate, MonteCarloConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A control task: sensor filter (hot loop) + mode logic (branchy) +
    // an actuator helper called from both modes.
    let program = Program::new("controller")
        .with_function(
            "main",
            stmt::seq([
                stmt::compute(12),
                stmt::loop_(
                    100,
                    stmt::seq([
                        stmt::loop_(8, stmt::compute(18)), // filter taps
                        stmt::if_else(
                            stmt::seq([stmt::compute(30), stmt::call("actuate")]),
                            stmt::seq([stmt::compute(55), stmt::call("actuate")]),
                        ),
                    ]),
                ),
            ]),
        )
        .with_function(
            "actuate",
            stmt::seq([stmt::compute(25), stmt::loop_(4, stmt::compute(6))]),
        );

    // Stage 1: compile to MIPS machine code.
    let compiled = program.compile(0x0040_0000)?;
    println!(
        "compiled: {} instructions ({} bytes), {} loops",
        compiled.image().len_words(),
        compiled.image().len_bytes(),
        compiled.loop_bounds().len()
    );

    // Stage 2: control-flow reconstruction with virtual inlining.
    let cfg = expand_compiled(&compiled)?;
    println!(
        "expanded CFG: {} nodes, {} contexts, {} loops",
        cfg.nodes().len(),
        cfg.contexts().len(),
        cfg.loops().len()
    );

    // Stage 3: cache classification and both WCET engines.
    let geometry = CacheGeometry::paper_default();
    let chmc = classify(&cfg, &geometry, geometry.ways());
    let stats = chmc.stats();
    println!(
        "classification: {} always-hit, {} first-miss, {} always-miss, {} unclassified",
        stats.always_hit, stats.first_miss, stats.always_miss, stats.not_classified
    );
    let costs = CostModel::from_chmc(&cfg, &chmc, &CacheTiming::paper_default());
    let wcet_ilp = ipet_bound(&cfg, &costs, &IpetOptions::default())?;
    let wcet_tree = tree_bound(&compiled, &cfg, &costs);
    println!("fault-free WCET: IPET {wcet_ilp} cycles, tree engine {wcet_tree} cycles");

    // Stage 4: the fault-aware estimate.
    let analyzer = PwcetAnalyzer::new(AnalysisConfig::paper_default());
    let analysis = analyzer.analyze_compiled(&compiled)?;
    for protection in Protection::all() {
        println!(
            "pWCET@1e-15 [{protection:>13}]: {} cycles",
            analysis.estimate(protection).pwcet_at(1e-15)
        );
    }

    // Stage 5: empirical validation — simulate under sampled fault maps
    // and compare against the analytic exceedance curve.
    let trace = simulate(&compiled, 10_000_000)?;
    println!("simulated fault-free run: {} fetches", trace.len());
    let report = monte_carlo(
        &analysis,
        Protection::SharedReliableBuffer,
        &trace,
        &MonteCarloConfig {
            samples: 500,
            seed: 42,
        },
    );
    let probe = analysis.fault_free_wcet();
    println!(
        "empirical exceedance at WCET_ff: {:.2e} (analytic bound {:.2e})",
        report.empirical_exceedance(probe),
        report.estimate().exceedance_of(probe)
    );
    assert!(report.analytic_dominates_at(probe, 0.05));
    println!("analytic curve dominates the sampled executions — bound validated");
    Ok(())
}
