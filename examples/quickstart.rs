//! Quickstart: estimate the pWCET of one benchmark under all three
//! protection levels.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fault_aware_pwcet::benchsuite;
use fault_aware_pwcet::core::{AnalysisConfig, Protection, PwcetAnalyzer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's setup: 1 KB 4-way cache, 16 B lines, 1/100-cycle
    // latencies, pfail = 1e-4 (§IV-A).
    let config = AnalysisConfig::paper_default();
    let analyzer = PwcetAnalyzer::new(config);

    let bench = benchsuite::by_name("matmult").expect("matmult is in the suite");
    println!("benchmark: {} — {}", bench.name, bench.description);

    // One `analyze` computes everything protection-independent (fault-free
    // WCET + fault miss map); estimates per protection are then cheap.
    let analysis = analyzer.analyze(&bench.program)?;
    println!("fault-free WCET: {} cycles", analysis.fault_free_wcet());

    let target = 1e-15; // aerospace-grade exceedance probability
    for protection in Protection::all() {
        let estimate = analysis.estimate(protection);
        let pwcet = estimate.pwcet_at(target);
        let overhead = 100.0 * (pwcet as f64 / analysis.fault_free_wcet() as f64 - 1.0);
        println!(
            "pWCET@1e-15 [{protection:>13}]: {pwcet:>9} cycles  (+{overhead:.1}% over fault-free)"
        );
    }

    // The fault miss map behind those numbers (Figure 1a of the paper).
    println!("\nfault miss map (extra misses per set and fault count):");
    print!("{}", analysis.fmm());
    Ok(())
}
