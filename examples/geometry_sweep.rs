//! Design-stage geometry exploration over the unified reuse plane.
//!
//! Sweeps cache associativity at fixed sets and block size for a few
//! benchmarks, three times over one persisted store:
//!
//! 1. a **cold process-start** run — the widest geometry of each program
//!    builds cold, every narrower sibling is *derived* from it (one
//!    fixpoint per lattice instead of one per point);
//! 2. the **same plane again** — everything answers from the memory tier;
//! 3. a **fresh plane over the same directory** (what a new process
//!    sees) — everything answers from the disk tier.
//!
//! ```text
//! cargo run --release --example geometry_sweep
//! ```

use std::sync::Arc;

use fault_aware_pwcet::benchsuite;
use fault_aware_pwcet::cache::GeometryLattice;
use fault_aware_pwcet::core::{AnalysisConfig, Protection, PwcetAnalyzer, ReusePlane};

const BENCHMARKS: [&str; 3] = ["bs", "crc", "fir"];
const TARGET: f64 = 1e-15;

fn store_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pwcet-geometry-sweep-{}", std::process::id()))
}

fn sweep(label: &str, plane: &Arc<ReusePlane>, lattice: &GeometryLattice) {
    println!("## {label}");
    println!(
        "{:>10} {:>5} {:>12} {:>12} {:>12}",
        "benchmark", "ways", "none", "SRB", "RW"
    );
    let base = AnalysisConfig::paper_default();
    for name in BENCHMARKS {
        let bench = benchsuite::by_name(name).expect("benchmark exists");
        for geometry in lattice.members() {
            let mut config = base;
            config.geometry = geometry;
            let analysis = PwcetAnalyzer::new(config)
                .with_reuse_plane(Arc::clone(plane))
                .analyze(&bench.program)
                .expect("analyzes");
            println!(
                "{:>10} {:>5} {:>12} {:>12} {:>12}",
                name,
                geometry.ways(),
                analysis.estimate(Protection::None).pwcet_at(TARGET),
                analysis
                    .estimate(Protection::SharedReliableBuffer)
                    .pwcet_at(TARGET),
                analysis.estimate(Protection::ReliableWay).pwcet_at(TARGET),
            );
        }
    }
    let stats = plane.stats();
    println!(
        "tiers: memory {}/{} hit/miss | disk {}/{} hit/miss ({} written, {} corrupt) | \
         {} derived | {} cold | reuse rate {:.0}%",
        stats.memory.hits,
        stats.memory.misses,
        stats.disk_hits,
        stats.disk_misses,
        stats.disk_writes,
        stats.disk_corrupt,
        stats.derived,
        stats.cold_builds,
        stats.reuse_rate() * 100.0
    );
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = store_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let lattice = GeometryLattice::paper_default();
    println!(
        "geometry lattice: 16 sets x 16 B lines, ways {:?}; store: {}\n",
        lattice.way_counts(),
        dir.display()
    );

    // Run 1: cold start. One cold fixpoint per benchmark (the widest
    // geometry); ways 3, 2, 1 are derived by age truncation.
    let plane = Arc::new(ReusePlane::in_memory().with_disk_tier(&dir)?);
    sweep("run 1: cold start, derived siblings", &plane, &lattice);

    // Run 2: same plane — the memory tier answers everything.
    sweep("run 2: same plane (memory tier)", &plane, &lattice);

    // Run 3: a fresh plane over the same directory — the disk tier
    // answers everything, as it would for a brand-new process.
    let fresh = Arc::new(ReusePlane::in_memory().with_disk_tier(&dir)?);
    sweep(
        "run 3: fresh plane, same store (disk tier)",
        &fresh,
        &lattice,
    );

    assert!(fresh.stats().disk_hits > 0, "run 3 must hit the disk tier");
    println!("rows are identical across all three runs; only the tier answering changes.");
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
