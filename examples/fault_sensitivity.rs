//! Fault-probability sensitivity: how the pWCET inflates as silicon
//! degrades, and how much of that inflation each mechanism absorbs.
//!
//! Sweeps the per-bit failure probability from today's 10⁻¹³-class rates
//! to the 10⁻³-class rates the resilience roadmap predicts for future
//! nodes (the motivation of the paper's introduction).
//!
//! ```text
//! cargo run --release --example fault_sensitivity
//! ```

use fault_aware_pwcet::benchsuite;
use fault_aware_pwcet::core::{AnalysisConfig, Protection, PwcetAnalyzer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = benchsuite::by_name("crc").expect("crc is in the suite");
    let target = 1e-15;

    println!("benchmark: {}", bench.name);
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "pfail", "fault-free", "none", "SRB", "RW"
    );
    // The fault model never touches the CFG or the cache classifications,
    // so the whole sweep shares one analysis context: the expanded CFG and
    // every CHMC level are built exactly once.
    let base = AnalysisConfig::paper_default();
    let context = PwcetAnalyzer::new(base).build_context(&bench.program)?;
    for pfail in [1e-13, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3] {
        let config = base.with_pfail(pfail)?;
        let analysis = PwcetAnalyzer::new(config).analyze_with_context(&context)?;
        println!(
            "{:>8.0e} {:>12} {:>12} {:>12} {:>12}",
            pfail,
            analysis.fault_free_wcet(),
            analysis.estimate(Protection::None).pwcet_at(target),
            analysis
                .estimate(Protection::SharedReliableBuffer)
                .pwcet_at(target),
            analysis.estimate(Protection::ReliableWay).pwcet_at(target),
        );
    }

    println!();
    println!("At today's rates faults are invisible at p = 1e-15; as pfail grows");
    println!("the unprotected pWCET inflates steeply (whole sets go faulty) while");
    println!("RW/SRB absorb most of the inflation — the paper's motivation.");
    Ok(())
}
