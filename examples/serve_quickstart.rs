//! The analysis service, end to end in one process: spawn a server on an
//! ephemeral port, drive it with a client over real TCP, and watch the
//! reuse-plane tiers answer.
//!
//! 1. a **cold pass** over a few benchmarks — every request builds cold
//!    and write-through persists its context;
//! 2. a **warm pass** of the same requests — answered from the memory
//!    tier, bit-identically;
//! 3. a **pfail sweep** and a **geometry sweep** riding the same warm
//!    contexts;
//! 4. the service stats: per-tier served counts and plane counters;
//! 5. graceful shutdown (in-flight work drains first).
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```

use std::time::Instant;

use fault_aware_pwcet::benchsuite;
use fault_aware_pwcet::obs::TraceId;
use fault_aware_pwcet::serve::{Client, Request, Response, Server, ServerConfig, StageTiming};

const BENCHMARKS: [&str; 3] = ["bs", "crc", "fir"];
const PFAIL: f64 = 1e-4;
const TARGET_P: f64 = 1e-15;

fn store_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pwcet-serve-quickstart-{}", std::process::id()))
}

fn run_pass(label: &str, client: &mut Client) {
    println!("## {label}");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>8} {:>11}",
        "benchmark", "wcet_ff", "none", "SRB", "RW", "tier", "latency_us"
    );
    for name in BENCHMARKS {
        let bench = benchsuite::by_name(name).expect("benchmark exists");
        let started = Instant::now();
        let response = client
            .analyze(bench.program, PFAIL, TARGET_P)
            .expect("request succeeds");
        let latency = started.elapsed().as_micros();
        match response {
            Response::Analysis { row, .. } => println!(
                "{:>10} {:>12} {:>12} {:>12} {:>12} {:>8} {:>11}",
                row.name,
                row.fault_free_wcet,
                row.pwcet_none,
                row.pwcet_srb,
                row.pwcet_rw,
                row.served_from.label(),
                latency,
            ),
            other => panic!("unexpected response: {other:?}"),
        }
    }
}

/// The server-side stage breakdown echoed under the client's minted
/// trace ID — where the sweep's time actually went.
fn print_stages(trace: u64, stages: &[StageTiming]) {
    let parts: Vec<String> = stages
        .iter()
        .map(|t| format!("{}={}us", t.stage.label(), t.micros))
        .collect();
    println!("{:>10} trace={} {}", "", TraceId(trace), parts.join(" "));
}

fn main() {
    let dir = store_dir();
    let _ = std::fs::remove_dir_all(&dir);

    // An in-process server on an ephemeral port, its reuse plane backed
    // by an on-disk store (a restarted server would answer from it).
    let server = Server::bind("127.0.0.1:0", ServerConfig::default().with_disk_dir(&dir))
        .expect("bind ephemeral port");
    println!(
        "serving on {} ({} shards, queue {})\n",
        server.local_addr(),
        server.stats().shards,
        server.stats().queue_capacity,
    );

    let mut client = Client::connect(server.local_addr()).expect("connect");
    run_pass("cold pass (every context built from scratch)", &mut client);
    println!();
    run_pass("warm pass (same requests, memory tier)", &mut client);

    // Sweeps reuse the same warm contexts: the pfail sweep never
    // re-classifies, the geometry sweep derives narrower way counts from
    // the widest cached sibling.
    println!("\n## sweeps over the warm plane");
    let crc = benchsuite::by_name("crc").expect("crc exists");
    match client
        .request(&Request::SweepPfail {
            program: crc.program.clone(),
            pfails: vec![1e-6, 1e-5, 1e-4, 1e-3],
            target_p: TARGET_P,
            trace: TraceId::mint().0,
        })
        .expect("sweep succeeds")
    {
        Response::PfailSweep {
            name,
            served_from,
            rows,
            micros,
            trace,
            stages,
        } => {
            for row in rows {
                println!(
                    "{:>10} pfail={:<8e} none={:<9} tier={} ({} µs total)",
                    name,
                    row.pfail,
                    row.pwcet_none,
                    served_from.label(),
                    micros
                );
            }
            print_stages(trace, &stages);
        }
        other => panic!("unexpected response: {other:?}"),
    }
    match client
        .request(&Request::SweepGeometry {
            program: crc.program,
            sets: 16,
            block_bytes: 16,
            way_counts: vec![4, 3, 2, 1],
            target_p: TARGET_P,
            trace: TraceId::mint().0,
        })
        .expect("sweep succeeds")
    {
        Response::GeometrySweep {
            name,
            served_from,
            rows,
            micros,
            trace,
            stages,
        } => {
            for row in rows {
                println!(
                    "{:>10} ways={:<2} none={:<9} tier={} ({} µs total)",
                    name,
                    row.ways,
                    row.pwcet_none,
                    served_from.label(),
                    micros
                );
            }
            print_stages(trace, &stages);
        }
        other => panic!("unexpected response: {other:?}"),
    }

    let stats = client.stats().expect("stats");
    println!(
        "\nserved={} | served_from memory/disk/derived/cold = {}/{}/{}/{} | \
         plane: {} memory hits, {} disk writes, {} derived",
        stats.served,
        stats.served_memory,
        stats.served_disk,
        stats.served_derived,
        stats.served_cold,
        stats.memory_hits,
        stats.disk_writes,
        stats.derived,
    );

    let final_stats = server.shutdown();
    println!(
        "server drained and shut down cleanly ({} requests served)",
        final_stats.served
    );
    let _ = std::fs::remove_dir_all(&dir);
}
