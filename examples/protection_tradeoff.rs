//! Protection trade-off study: which mechanism pays off for which kind of
//! program?
//!
//! Reproduces the §IV-B reasoning on three contrast programs:
//! streaming code (spatial locality only), a tiny resident loop
//! (MRU-temporal), and a cache-straining loop (deep temporal), then shows
//! where each mechanism lands between the unprotected and fault-free
//! bounds.
//!
//! ```text
//! cargo run --release --example protection_tradeoff
//! ```

use fault_aware_pwcet::core::{AnalysisConfig, Protection, PwcetAnalyzer};
use fault_aware_pwcet::progen::{stmt, Program};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analyzer = PwcetAnalyzer::new(AnalysisConfig::paper_default());
    let target = 1e-15;

    let workloads = [
        (
            "streaming (spatial only)",
            // 6 KB of straight-line code: each block visited once.
            Program::new("streaming").with_function("main", stmt::compute(1500)),
        ),
        (
            "resident loop (MRU temporal)",
            // ~200 B loop: one live block per set, hits in MRU position.
            Program::new("resident").with_function("main", stmt::loop_(200, stmt::compute(40))),
        ),
        (
            "straining loop (deep temporal)",
            // ~900 B loop body: 2–3 live blocks per set, reuse beyond MRU.
            Program::new("straining").with_function("main", stmt::loop_(50, stmt::compute(220))),
        ),
    ];

    println!("pWCET at p = 1e-15, normalized to the unprotected estimate:");
    println!(
        "{:<30} {:>10} {:>8} {:>8} {:>8}",
        "workload", "fault-free", "RW", "SRB", "none"
    );
    // One batched call analyzes the contrast programs, fanning out across
    // worker threads (nothing but the configuration is shared).
    let programs: Vec<_> = workloads.iter().map(|(_, p)| p.clone()).collect();
    let analyses = analyzer.analyze_batch(&programs)?;
    for ((label, _), analysis) in workloads.iter().zip(&analyses) {
        let none = analysis.estimate(Protection::None).pwcet_at(target) as f64;
        let rw = analysis.estimate(Protection::ReliableWay).pwcet_at(target) as f64;
        let srb = analysis
            .estimate(Protection::SharedReliableBuffer)
            .pwcet_at(target) as f64;
        let ff = analysis.fault_free_wcet() as f64;
        println!(
            "{:<30} {:>10.3} {:>8.3} {:>8.3} {:>8.3}",
            label,
            ff / none,
            rw / none,
            srb / none,
            1.0
        );
    }

    println!();
    println!("Reading guide (matches the paper's categories):");
    println!(" * streaming: both mechanisms reach the fault-free bound (category 1);");
    println!(" * resident loop: RW reaches it, the SRB cannot preserve MRU reuse (category 2);");
    println!(
        " * straining loop: deep reuse is lost either way — partial, similar gains (category 3)."
    );
    Ok(())
}
