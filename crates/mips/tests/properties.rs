//! Property tests: instruction encoding is a bijection on the subset.

use proptest::prelude::*;
use pwcet_mips::{Instruction, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).expect("index < 32"))
}

fn r3() -> impl Strategy<Value = (Reg, Reg, Reg)> {
    (arb_reg(), arb_reg(), arb_reg())
}

fn shift() -> impl Strategy<Value = (Reg, Reg, u8)> {
    (arb_reg(), arb_reg(), 0u8..32)
}

fn imm_i() -> impl Strategy<Value = (Reg, Reg, i16)> {
    (arb_reg(), arb_reg(), any::<i16>())
}

fn imm_u() -> impl Strategy<Value = (Reg, Reg, u16)> {
    (arb_reg(), arb_reg(), any::<u16>())
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        r3().prop_map(|(rd, rs, rt)| Instruction::Addu { rd, rs, rt }),
        r3().prop_map(|(rd, rs, rt)| Instruction::Subu { rd, rs, rt }),
        r3().prop_map(|(rd, rs, rt)| Instruction::And { rd, rs, rt }),
        r3().prop_map(|(rd, rs, rt)| Instruction::Or { rd, rs, rt }),
        r3().prop_map(|(rd, rs, rt)| Instruction::Xor { rd, rs, rt }),
        r3().prop_map(|(rd, rs, rt)| Instruction::Nor { rd, rs, rt }),
        r3().prop_map(|(rd, rs, rt)| Instruction::Slt { rd, rs, rt }),
        r3().prop_map(|(rd, rs, rt)| Instruction::Sltu { rd, rs, rt }),
        shift().prop_map(|(rd, rt, shamt)| Instruction::Sll { rd, rt, shamt }),
        shift().prop_map(|(rd, rt, shamt)| Instruction::Srl { rd, rt, shamt }),
        shift().prop_map(|(rd, rt, shamt)| Instruction::Sra { rd, rt, shamt }),
        arb_reg().prop_map(|rs| Instruction::Jr { rs }),
        (0u32..0x10_0000).prop_map(|code| Instruction::Break { code }),
        imm_i().prop_map(|(rt, rs, imm)| Instruction::Addiu { rt, rs, imm }),
        imm_i().prop_map(|(rt, rs, imm)| Instruction::Slti { rt, rs, imm }),
        imm_i().prop_map(|(rt, rs, imm)| Instruction::Sltiu { rt, rs, imm }),
        imm_u().prop_map(|(rt, rs, imm)| Instruction::Andi { rt, rs, imm }),
        imm_u().prop_map(|(rt, rs, imm)| Instruction::Ori { rt, rs, imm }),
        imm_u().prop_map(|(rt, rs, imm)| Instruction::Xori { rt, rs, imm }),
        (arb_reg(), any::<u16>()).prop_map(|(rt, imm)| Instruction::Lui { rt, imm }),
        imm_i().prop_map(|(rt, base, offset)| Instruction::Lw { rt, base, offset }),
        imm_i().prop_map(|(rt, base, offset)| Instruction::Sw { rt, base, offset }),
        imm_i().prop_map(|(rs, rt, offset)| Instruction::Beq { rs, rt, offset }),
        imm_i().prop_map(|(rs, rt, offset)| Instruction::Bne { rs, rt, offset }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, offset)| Instruction::Blez { rs, offset }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, offset)| Instruction::Bgtz { rs, offset }),
        (0u32..=0x03ff_ffff).prop_map(|target| Instruction::J { target }),
        (0u32..=0x03ff_ffff).prop_map(|target| Instruction::Jal { target }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(inst in arb_instruction()) {
        let word = inst.encode();
        let back = Instruction::decode(word);
        prop_assert_eq!(back, Ok(inst));
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = Instruction::decode(word);
    }

    #[test]
    fn decoded_reencodes_identically(word in any::<u32>()) {
        if let Ok(inst) = Instruction::decode(word) {
            // Every successfully decoded word re-encodes to a word that
            // decodes to the same instruction (encode may normalize unused
            // fields, e.g. rs of shifts).
            prop_assert_eq!(Instruction::decode(inst.encode()), Ok(inst));
        }
    }

    #[test]
    fn display_never_empty(inst in arb_instruction()) {
        prop_assert!(!inst.to_string().is_empty());
    }
}
