//! A MIPS-I subset instruction set architecture.
//!
//! The paper analyzes MIPS R2000/R3000 binaries (§IV-A). This crate provides
//! the ISA substrate for the reproduction: a register file model, a binary
//! instruction encoding faithful to the MIPS-I opcode map, a two-pass
//! assembler with symbolic labels, and an immutable [`BinaryImage`] holding
//! assembled machine code at a base address.
//!
//! # Deviation from MIPS-I
//!
//! Branch *delay slots* are not modelled: a taken branch transfers control
//! immediately. Delay slots affect neither the shape of the fetch address
//! stream (Heptane-era compilers fill them with `nop`s in the worst case)
//! nor any part of the cache analysis; removing them keeps the control-flow
//! reconstruction in `pwcet-cfg` and the simulator in `pwcet-sim` simple and
//! bug-resistant. Branch target arithmetic is otherwise unchanged
//! (`target = pc + 4 + (offset << 2)`).
//!
//! # Example
//!
//! ```
//! use pwcet_mips::{Assembler, Instruction, Reg};
//!
//! # fn main() -> Result<(), pwcet_mips::MipsError> {
//! let mut asm = Assembler::new(0x0040_0000);
//! asm.label("start");
//! asm.push(Instruction::Addiu { rt: Reg::T0, rs: Reg::ZERO, imm: 3 });
//! asm.label("loop");
//! asm.push(Instruction::Addiu { rt: Reg::T0, rs: Reg::T0, imm: -1 });
//! asm.bne(Reg::T0, Reg::ZERO, "loop");
//! asm.push(Instruction::Break { code: 0 });
//! let image = asm.assemble()?;
//! assert_eq!(image.len_words(), 4);
//! let decoded = image.decode_at(0x0040_0004)?;
//! assert_eq!(decoded, Instruction::Addiu { rt: Reg::T0, rs: Reg::T0, imm: -1 });
//! # Ok(())
//! # }
//! ```

mod asm;
mod error;
mod image;
mod inst;
mod reg;

pub use asm::Assembler;
pub use error::MipsError;
pub use image::BinaryImage;
pub use inst::{Instruction, INSTRUCTION_BYTES};
pub use reg::Reg;
