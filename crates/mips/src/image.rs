//! Assembled machine code at a fixed base address.

use crate::error::MipsError;
use crate::inst::{Instruction, INSTRUCTION_BYTES};

/// An immutable block of machine code placed at a base address.
///
/// The image is the hand-off artifact between the assembler, the
/// control-flow reconstruction (`pwcet-cfg`) and the functional simulator
/// (`pwcet-sim`) — exactly the role of the linked binary in the paper's
/// toolchain.
///
/// # Example
///
/// ```
/// use pwcet_mips::{BinaryImage, Instruction};
///
/// let image = BinaryImage::new(0x0040_0000, vec![Instruction::NOP.encode()]);
/// assert!(image.contains(0x0040_0000));
/// assert!(!image.contains(0x0040_0004));
/// assert_eq!(image.decode_at(0x0040_0000), Ok(Instruction::NOP));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryImage {
    base: u32,
    words: Vec<u32>,
}

impl BinaryImage {
    /// Creates an image from machine words starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-byte aligned (code must be fetchable).
    pub fn new(base: u32, words: Vec<u32>) -> Self {
        assert_eq!(base % INSTRUCTION_BYTES, 0, "image base must be aligned");
        Self { base, words }
    }

    /// The lowest code address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// One past the highest code address.
    pub fn end(&self) -> u32 {
        self.base + self.len_bytes()
    }

    /// Image size in bytes.
    pub fn len_bytes(&self) -> u32 {
        (self.words.len() as u32) * INSTRUCTION_BYTES
    }

    /// Image size in instructions.
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// `true` when the image holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The raw machine words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// `true` if `addr` points at an instruction of this image.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// The machine word at `addr`.
    ///
    /// # Errors
    ///
    /// [`MipsError::MisalignedAddress`] or [`MipsError::AddressOutOfRange`].
    pub fn word_at(&self, addr: u32) -> Result<u32, MipsError> {
        if !addr.is_multiple_of(INSTRUCTION_BYTES) {
            return Err(MipsError::MisalignedAddress(addr));
        }
        if !self.contains(addr) {
            return Err(MipsError::AddressOutOfRange(addr));
        }
        Ok(self.words[((addr - self.base) / INSTRUCTION_BYTES) as usize])
    }

    /// Decodes the instruction at `addr`.
    ///
    /// # Errors
    ///
    /// Address errors as for [`word_at`](Self::word_at), plus
    /// [`MipsError::UnknownInstruction`] for undecodable words.
    pub fn decode_at(&self, addr: u32) -> Result<Instruction, MipsError> {
        Instruction::decode(self.word_at(addr)?)
    }

    /// Iterates over `(address, instruction)` pairs, decoding each word.
    ///
    /// # Errors
    ///
    /// The iterator yields `Err` for undecodable words.
    pub fn iter_decoded(&self) -> impl Iterator<Item = (u32, Result<Instruction, MipsError>)> + '_ {
        self.words.iter().enumerate().map(move |(i, &w)| {
            (
                self.base + (i as u32) * INSTRUCTION_BYTES,
                Instruction::decode(w),
            )
        })
    }

    /// Renders a disassembly listing (one instruction per line), useful in
    /// tests and debugging.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (addr, inst) in self.iter_decoded() {
            let text = match inst {
                Ok(i) => i.to_string(),
                Err(_) => ".word".to_string(),
            };
            out.push_str(&format!("{addr:#010x}: {text}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn image() -> BinaryImage {
        BinaryImage::new(
            0x0040_0000,
            vec![
                Instruction::Addiu {
                    rt: Reg::T0,
                    rs: Reg::ZERO,
                    imm: 5,
                }
                .encode(),
                Instruction::NOP.encode(),
                Instruction::Break { code: 0 }.encode(),
            ],
        )
    }

    #[test]
    fn bounds_and_lengths() {
        let img = image();
        assert_eq!(img.base(), 0x0040_0000);
        assert_eq!(img.end(), 0x0040_000c);
        assert_eq!(img.len_bytes(), 12);
        assert_eq!(img.len_words(), 3);
        assert!(!img.is_empty());
    }

    #[test]
    fn word_at_validates_addresses() {
        let img = image();
        assert!(img.word_at(0x0040_0001).is_err());
        assert_eq!(
            img.word_at(0x0040_000c),
            Err(MipsError::AddressOutOfRange(0x0040_000c))
        );
        assert_eq!(img.word_at(0x0040_0004), Ok(0));
    }

    #[test]
    fn decode_at_round_trips() {
        let img = image();
        assert_eq!(
            img.decode_at(0x0040_0000),
            Ok(Instruction::Addiu {
                rt: Reg::T0,
                rs: Reg::ZERO,
                imm: 5
            })
        );
        assert_eq!(
            img.decode_at(0x0040_0008),
            Ok(Instruction::Break { code: 0 })
        );
    }

    #[test]
    fn iter_decoded_covers_whole_image() {
        let img = image();
        let addrs: Vec<u32> = img.iter_decoded().map(|(a, _)| a).collect();
        assert_eq!(addrs, vec![0x0040_0000, 0x0040_0004, 0x0040_0008]);
    }

    #[test]
    fn disassembly_contains_mnemonics() {
        let listing = image().disassemble();
        assert!(listing.contains("addiu"));
        assert!(listing.contains("nop"));
        assert!(listing.contains("break"));
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_base_panics() {
        let _ = BinaryImage::new(2, vec![]);
    }
}
