//! Error type shared by the ISA components.

use std::error::Error;
use std::fmt;

/// Errors from decoding, assembling, or addressing MIPS code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MipsError {
    /// A machine word does not decode to an instruction of the subset.
    UnknownInstruction(u32),
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A branch target is too far away for a 16-bit instruction offset.
    BranchOutOfRange {
        /// The label whose distance overflowed.
        label: String,
        /// The required offset in instructions.
        offset: i64,
    },
    /// An address lies outside the binary image.
    AddressOutOfRange(u32),
    /// An address is not 4-byte aligned.
    MisalignedAddress(u32),
}

impl fmt::Display for MipsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MipsError::UnknownInstruction(w) => {
                write!(f, "machine word {w:#010x} is not a known instruction")
            }
            MipsError::UndefinedLabel(l) => write!(f, "label `{l}` is not defined"),
            MipsError::DuplicateLabel(l) => write!(f, "label `{l}` is defined twice"),
            MipsError::BranchOutOfRange { label, offset } => {
                write!(
                    f,
                    "branch to `{label}` needs offset {offset}, beyond 16 bits"
                )
            }
            MipsError::AddressOutOfRange(a) => {
                write!(f, "address {a:#010x} is outside the binary image")
            }
            MipsError::MisalignedAddress(a) => {
                write!(f, "address {a:#010x} is not 4-byte aligned")
            }
        }
    }
}

impl Error for MipsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MipsError::UnknownInstruction(0xdead_beef)
            .to_string()
            .contains("0xdeadbeef"));
        assert!(MipsError::UndefinedLabel("loop".into())
            .to_string()
            .contains("`loop`"));
        assert!(MipsError::MisalignedAddress(3)
            .to_string()
            .contains("aligned"));
    }
}
