//! General-purpose register names of the MIPS calling convention.

use std::fmt;

/// One of the 32 MIPS general-purpose registers.
///
/// The wrapped index is guaranteed to be in `0..32`. Construct via the named
/// constants or [`Reg::new`].
///
/// # Example
///
/// ```
/// use pwcet_mips::Reg;
///
/// assert_eq!(Reg::T0.index(), 8);
/// assert_eq!(Reg::new(8), Some(Reg::T0));
/// assert_eq!(Reg::T0.to_string(), "$t0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hard-wired zero.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary.
    pub const AT: Reg = Reg(1);
    /// Function result 0.
    pub const V0: Reg = Reg(2);
    /// Function result 1.
    pub const V1: Reg = Reg(3);
    /// Argument 0.
    pub const A0: Reg = Reg(4);
    /// Argument 1.
    pub const A1: Reg = Reg(5);
    /// Argument 2.
    pub const A2: Reg = Reg(6);
    /// Argument 3.
    pub const A3: Reg = Reg(7);
    /// Caller-saved temporary 0.
    pub const T0: Reg = Reg(8);
    /// Caller-saved temporary 1.
    pub const T1: Reg = Reg(9);
    /// Caller-saved temporary 2.
    pub const T2: Reg = Reg(10);
    /// Caller-saved temporary 3.
    pub const T3: Reg = Reg(11);
    /// Caller-saved temporary 4.
    pub const T4: Reg = Reg(12);
    /// Caller-saved temporary 5.
    pub const T5: Reg = Reg(13);
    /// Caller-saved temporary 6.
    pub const T6: Reg = Reg(14);
    /// Caller-saved temporary 7.
    pub const T7: Reg = Reg(15);
    /// Callee-saved 0.
    pub const S0: Reg = Reg(16);
    /// Callee-saved 1.
    pub const S1: Reg = Reg(17);
    /// Callee-saved 2.
    pub const S2: Reg = Reg(18);
    /// Callee-saved 3.
    pub const S3: Reg = Reg(19);
    /// Callee-saved 4.
    pub const S4: Reg = Reg(20);
    /// Callee-saved 5.
    pub const S5: Reg = Reg(21);
    /// Callee-saved 6.
    pub const S6: Reg = Reg(22);
    /// Callee-saved 7.
    pub const S7: Reg = Reg(23);
    /// Caller-saved temporary 8.
    pub const T8: Reg = Reg(24);
    /// Caller-saved temporary 9.
    pub const T9: Reg = Reg(25);
    /// Kernel reserved 0.
    pub const K0: Reg = Reg(26);
    /// Kernel reserved 1.
    pub const K1: Reg = Reg(27);
    /// Global pointer.
    pub const GP: Reg = Reg(28);
    /// Stack pointer.
    pub const SP: Reg = Reg(29);
    /// Frame pointer.
    pub const FP: Reg = Reg(30);
    /// Return address.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its index, returning `None` above 31.
    pub fn new(index: u8) -> Option<Reg> {
        (index < 32).then_some(Reg(index))
    }

    /// The register index in `0..32`.
    pub fn index(self) -> u8 {
        self.0
    }

    /// The register index as the `u32` field value used in encodings.
    pub(crate) fn field(self) -> u32 {
        u32::from(self.0)
    }

    /// Decodes a 5-bit register field (masks to 5 bits, so always valid).
    pub(crate) fn from_field(bits: u32) -> Reg {
        Reg((bits & 0x1f) as u8)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [&str; 32] = [
            "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3", "$t0", "$t1", "$t2", "$t3",
            "$t4", "$t5", "$t6", "$t7", "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
            "$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
        ];
        f.write_str(NAMES[self.0 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_constants_have_conventional_indices() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::V0.index(), 2);
        assert_eq!(Reg::A0.index(), 4);
        assert_eq!(Reg::T0.index(), 8);
        assert_eq!(Reg::S0.index(), 16);
        assert_eq!(Reg::T8.index(), 24);
        assert_eq!(Reg::SP.index(), 29);
        assert_eq!(Reg::RA.index(), 31);
    }

    #[test]
    fn new_validates_range() {
        assert_eq!(Reg::new(31), Some(Reg::RA));
        assert_eq!(Reg::new(32), None);
        assert_eq!(Reg::new(255), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::ZERO.to_string(), "$zero");
        assert_eq!(Reg::SP.to_string(), "$sp");
        assert_eq!(Reg::T9.to_string(), "$t9");
    }

    #[test]
    fn field_round_trip() {
        for i in 0..32u8 {
            let r = Reg::new(i).unwrap();
            assert_eq!(Reg::from_field(r.field()), r);
        }
    }
}
