//! Instruction definitions and binary encoding/decoding.
//!
//! The encoding follows the MIPS-I opcode map: R-type instructions use
//! opcode `0` with a `funct` field; I-type instructions carry a 16-bit
//! immediate; J-type instructions carry a 26-bit word index.

use std::fmt;

use crate::error::MipsError;
use crate::reg::Reg;

/// Size of every instruction in bytes (MIPS is a fixed-width ISA).
pub const INSTRUCTION_BYTES: u32 = 4;

// Primary opcodes.
const OP_SPECIAL: u32 = 0x00;
const OP_J: u32 = 0x02;
const OP_JAL: u32 = 0x03;
const OP_BEQ: u32 = 0x04;
const OP_BNE: u32 = 0x05;
const OP_BLEZ: u32 = 0x06;
const OP_BGTZ: u32 = 0x07;
const OP_ADDIU: u32 = 0x09;
const OP_SLTI: u32 = 0x0a;
const OP_SLTIU: u32 = 0x0b;
const OP_ANDI: u32 = 0x0c;
const OP_ORI: u32 = 0x0d;
const OP_XORI: u32 = 0x0e;
const OP_LUI: u32 = 0x0f;
const OP_LW: u32 = 0x23;
const OP_SW: u32 = 0x2b;

// SPECIAL funct codes.
const FN_SLL: u32 = 0x00;
const FN_SRL: u32 = 0x02;
const FN_SRA: u32 = 0x03;
const FN_JR: u32 = 0x08;
const FN_BREAK: u32 = 0x0d;
const FN_ADDU: u32 = 0x21;
const FN_SUBU: u32 = 0x23;
const FN_AND: u32 = 0x24;
const FN_OR: u32 = 0x25;
const FN_XOR: u32 = 0x26;
const FN_NOR: u32 = 0x27;
const FN_SLT: u32 = 0x2a;
const FN_SLTU: u32 = 0x2b;

/// One MIPS-I subset instruction.
///
/// Branch offsets are in *instructions* relative to `pc + 4` (standard MIPS
/// branch arithmetic); jump targets are absolute word indices within the
/// current 256 MB segment.
///
/// # Example
///
/// ```
/// use pwcet_mips::{Instruction, Reg};
///
/// let inst = Instruction::Addu { rd: Reg::T0, rs: Reg::T1, rt: Reg::T2 };
/// let word = inst.encode();
/// assert_eq!(Instruction::decode(word).unwrap(), inst);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// `rd = rs + rt` (no overflow trap).
    Addu { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs - rt` (no overflow trap).
    Subu { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs & rt`.
    And { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs | rt`.
    Or { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs ^ rt`.
    Xor { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = !(rs | rt)`.
    Nor { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = (rs as i32) < (rt as i32)`.
    Slt { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = (rs as u32) < (rt as u32)`.
    Sltu { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rt << shamt`. `Sll {rd: $zero, rt: $zero, shamt: 0}` is `nop`.
    Sll { rd: Reg, rt: Reg, shamt: u8 },
    /// `rd = rt >> shamt` (logical).
    Srl { rd: Reg, rt: Reg, shamt: u8 },
    /// `rd = rt >> shamt` (arithmetic).
    Sra { rd: Reg, rt: Reg, shamt: u8 },
    /// Indirect jump to the address in `rs` (function return).
    Jr { rs: Reg },
    /// Breakpoint; used by this workspace as the *halt* instruction.
    Break { code: u32 },
    /// `rt = rs + sign_extend(imm)`.
    Addiu { rt: Reg, rs: Reg, imm: i16 },
    /// `rt = (rs as i32) < sign_extend(imm)`.
    Slti { rt: Reg, rs: Reg, imm: i16 },
    /// `rt = (rs as u32) < sign_extend(imm) as u32`.
    Sltiu { rt: Reg, rs: Reg, imm: i16 },
    /// `rt = rs & zero_extend(imm)`.
    Andi { rt: Reg, rs: Reg, imm: u16 },
    /// `rt = rs | zero_extend(imm)`.
    Ori { rt: Reg, rs: Reg, imm: u16 },
    /// `rt = rs ^ zero_extend(imm)`.
    Xori { rt: Reg, rs: Reg, imm: u16 },
    /// `rt = imm << 16`.
    Lui { rt: Reg, imm: u16 },
    /// `rt = mem[rs + sign_extend(offset)]`.
    Lw { rt: Reg, base: Reg, offset: i16 },
    /// `mem[rs + sign_extend(offset)] = rt`.
    Sw { rt: Reg, base: Reg, offset: i16 },
    /// Branch to `pc + 4 + (offset << 2)` if `rs == rt`.
    Beq { rs: Reg, rt: Reg, offset: i16 },
    /// Branch to `pc + 4 + (offset << 2)` if `rs != rt`.
    Bne { rs: Reg, rt: Reg, offset: i16 },
    /// Branch if `rs <= 0` (signed).
    Blez { rs: Reg, offset: i16 },
    /// Branch if `rs > 0` (signed).
    Bgtz { rs: Reg, offset: i16 },
    /// Absolute jump to word index `target` within the current segment.
    J { target: u32 },
    /// Jump-and-link: `$ra = pc + 4`, then jump.
    Jal { target: u32 },
}

impl Instruction {
    /// The canonical `nop` (`sll $zero, $zero, 0`).
    pub const NOP: Instruction = Instruction::Sll {
        rd: Reg::ZERO,
        rt: Reg::ZERO,
        shamt: 0,
    };

    /// Encodes the instruction to its 32-bit machine word.
    pub fn encode(self) -> u32 {
        use Instruction::*;
        let r = |rs: Reg, rt: Reg, rd: Reg, shamt: u32, funct: u32| {
            (rs.field() << 21) | (rt.field() << 16) | (rd.field() << 11) | (shamt << 6) | funct
        };
        let i = |op: u32, rs: Reg, rt: Reg, imm: u16| {
            (op << 26) | (rs.field() << 21) | (rt.field() << 16) | u32::from(imm)
        };
        match self {
            Addu { rd, rs, rt } => r(rs, rt, rd, 0, FN_ADDU),
            Subu { rd, rs, rt } => r(rs, rt, rd, 0, FN_SUBU),
            And { rd, rs, rt } => r(rs, rt, rd, 0, FN_AND),
            Or { rd, rs, rt } => r(rs, rt, rd, 0, FN_OR),
            Xor { rd, rs, rt } => r(rs, rt, rd, 0, FN_XOR),
            Nor { rd, rs, rt } => r(rs, rt, rd, 0, FN_NOR),
            Slt { rd, rs, rt } => r(rs, rt, rd, 0, FN_SLT),
            Sltu { rd, rs, rt } => r(rs, rt, rd, 0, FN_SLTU),
            Sll { rd, rt, shamt } => r(Reg::ZERO, rt, rd, u32::from(shamt & 0x1f), FN_SLL),
            Srl { rd, rt, shamt } => r(Reg::ZERO, rt, rd, u32::from(shamt & 0x1f), FN_SRL),
            Sra { rd, rt, shamt } => r(Reg::ZERO, rt, rd, u32::from(shamt & 0x1f), FN_SRA),
            Jr { rs } => r(rs, Reg::ZERO, Reg::ZERO, 0, FN_JR),
            Break { code } => ((code & 0xf_ffff) << 6) | FN_BREAK,
            Addiu { rt, rs, imm } => i(OP_ADDIU, rs, rt, imm as u16),
            Slti { rt, rs, imm } => i(OP_SLTI, rs, rt, imm as u16),
            Sltiu { rt, rs, imm } => i(OP_SLTIU, rs, rt, imm as u16),
            Andi { rt, rs, imm } => i(OP_ANDI, rs, rt, imm),
            Ori { rt, rs, imm } => i(OP_ORI, rs, rt, imm),
            Xori { rt, rs, imm } => i(OP_XORI, rs, rt, imm),
            Lui { rt, imm } => i(OP_LUI, Reg::ZERO, rt, imm),
            Lw { rt, base, offset } => i(OP_LW, base, rt, offset as u16),
            Sw { rt, base, offset } => i(OP_SW, base, rt, offset as u16),
            Beq { rs, rt, offset } => i(OP_BEQ, rs, rt, offset as u16),
            Bne { rs, rt, offset } => i(OP_BNE, rs, rt, offset as u16),
            Blez { rs, offset } => i(OP_BLEZ, rs, Reg::ZERO, offset as u16),
            Bgtz { rs, offset } => i(OP_BGTZ, rs, Reg::ZERO, offset as u16),
            J { target } => (OP_J << 26) | (target & 0x03ff_ffff),
            Jal { target } => (OP_JAL << 26) | (target & 0x03ff_ffff),
        }
    }

    /// Decodes a 32-bit machine word.
    ///
    /// # Errors
    ///
    /// Returns [`MipsError::UnknownInstruction`] for opcodes or funct codes
    /// outside the implemented subset.
    pub fn decode(word: u32) -> Result<Instruction, MipsError> {
        use Instruction::*;
        let op = word >> 26;
        let rs = Reg::from_field(word >> 21);
        let rt = Reg::from_field(word >> 16);
        let rd = Reg::from_field(word >> 11);
        let shamt = ((word >> 6) & 0x1f) as u8;
        let imm = (word & 0xffff) as u16;
        let simm = imm as i16;
        Ok(match op {
            OP_SPECIAL => match word & 0x3f {
                FN_ADDU => Addu { rd, rs, rt },
                FN_SUBU => Subu { rd, rs, rt },
                FN_AND => And { rd, rs, rt },
                FN_OR => Or { rd, rs, rt },
                FN_XOR => Xor { rd, rs, rt },
                FN_NOR => Nor { rd, rs, rt },
                FN_SLT => Slt { rd, rs, rt },
                FN_SLTU => Sltu { rd, rs, rt },
                FN_SLL => Sll { rd, rt, shamt },
                FN_SRL => Srl { rd, rt, shamt },
                FN_SRA => Sra { rd, rt, shamt },
                FN_JR => Jr { rs },
                FN_BREAK => Break {
                    code: (word >> 6) & 0xf_ffff,
                },
                _ => return Err(MipsError::UnknownInstruction(word)),
            },
            OP_ADDIU => Addiu { rt, rs, imm: simm },
            OP_SLTI => Slti { rt, rs, imm: simm },
            OP_SLTIU => Sltiu { rt, rs, imm: simm },
            OP_ANDI => Andi { rt, rs, imm },
            OP_ORI => Ori { rt, rs, imm },
            OP_XORI => Xori { rt, rs, imm },
            OP_LUI => Lui { rt, imm },
            OP_LW => Lw {
                rt,
                base: rs,
                offset: simm,
            },
            OP_SW => Sw {
                rt,
                base: rs,
                offset: simm,
            },
            OP_BEQ => Beq {
                rs,
                rt,
                offset: simm,
            },
            OP_BNE => Bne {
                rs,
                rt,
                offset: simm,
            },
            OP_BLEZ => Blez { rs, offset: simm },
            OP_BGTZ => Bgtz { rs, offset: simm },
            OP_J => J {
                target: word & 0x03ff_ffff,
            },
            OP_JAL => Jal {
                target: word & 0x03ff_ffff,
            },
            _ => return Err(MipsError::UnknownInstruction(word)),
        })
    }

    /// `true` for instructions that may divert control flow: branches,
    /// jumps, indirect jumps and [`Break`](Instruction::Break) (halt).
    pub fn is_control_flow(&self) -> bool {
        use Instruction::*;
        matches!(
            self,
            Beq { .. }
                | Bne { .. }
                | Blez { .. }
                | Bgtz { .. }
                | J { .. }
                | Jal { .. }
                | Jr { .. }
                | Break { .. }
        )
    }

    /// The branch/jump target address when executed at `pc`, if statically
    /// known (`None` for `Jr`, `Break`, and non-control-flow instructions).
    pub fn static_target(&self, pc: u32) -> Option<u32> {
        use Instruction::*;
        match *self {
            Beq { offset, .. } | Bne { offset, .. } | Blez { offset, .. } | Bgtz { offset, .. } => {
                Some(
                    pc.wrapping_add(4)
                        .wrapping_add((i32::from(offset) << 2) as u32),
                )
            }
            J { target } | Jal { target } => {
                Some((pc.wrapping_add(4) & 0xf000_0000) | (target << 2))
            }
            _ => None,
        }
    }

    /// `true` if execution may continue at `pc + 4` (everything except
    /// unconditional jumps, `jr`, and `break`).
    pub fn falls_through(&self) -> bool {
        use Instruction::*;
        !matches!(self, J { .. } | Jr { .. } | Break { .. })
    }

    /// `true` for conditional branches.
    pub fn is_conditional_branch(&self) -> bool {
        use Instruction::*;
        matches!(self, Beq { .. } | Bne { .. } | Blez { .. } | Bgtz { .. })
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match *self {
            Addu { rd, rs, rt } => write!(f, "addu {rd}, {rs}, {rt}"),
            Subu { rd, rs, rt } => write!(f, "subu {rd}, {rs}, {rt}"),
            And { rd, rs, rt } => write!(f, "and {rd}, {rs}, {rt}"),
            Or { rd, rs, rt } => write!(f, "or {rd}, {rs}, {rt}"),
            Xor { rd, rs, rt } => write!(f, "xor {rd}, {rs}, {rt}"),
            Nor { rd, rs, rt } => write!(f, "nor {rd}, {rs}, {rt}"),
            Slt { rd, rs, rt } => write!(f, "slt {rd}, {rs}, {rt}"),
            Sltu { rd, rs, rt } => write!(f, "sltu {rd}, {rs}, {rt}"),
            Sll { rd, rt, shamt } if rd == Reg::ZERO && rt == Reg::ZERO && shamt == 0 => {
                write!(f, "nop")
            }
            Sll { rd, rt, shamt } => write!(f, "sll {rd}, {rt}, {shamt}"),
            Srl { rd, rt, shamt } => write!(f, "srl {rd}, {rt}, {shamt}"),
            Sra { rd, rt, shamt } => write!(f, "sra {rd}, {rt}, {shamt}"),
            Jr { rs } => write!(f, "jr {rs}"),
            Break { code } => write!(f, "break {code}"),
            Addiu { rt, rs, imm } => write!(f, "addiu {rt}, {rs}, {imm}"),
            Slti { rt, rs, imm } => write!(f, "slti {rt}, {rs}, {imm}"),
            Sltiu { rt, rs, imm } => write!(f, "sltiu {rt}, {rs}, {imm}"),
            Andi { rt, rs, imm } => write!(f, "andi {rt}, {rs}, {imm:#x}"),
            Ori { rt, rs, imm } => write!(f, "ori {rt}, {rs}, {imm:#x}"),
            Xori { rt, rs, imm } => write!(f, "xori {rt}, {rs}, {imm:#x}"),
            Lui { rt, imm } => write!(f, "lui {rt}, {imm:#x}"),
            Lw { rt, base, offset } => write!(f, "lw {rt}, {offset}({base})"),
            Sw { rt, base, offset } => write!(f, "sw {rt}, {offset}({base})"),
            Beq { rs, rt, offset } => write!(f, "beq {rs}, {rt}, {offset}"),
            Bne { rs, rt, offset } => write!(f, "bne {rs}, {rt}, {offset}"),
            Blez { rs, offset } => write!(f, "blez {rs}, {offset}"),
            Bgtz { rs, offset } => write!(f, "bgtz {rs}, {offset}"),
            J { target } => write!(f, "j {:#010x}", target << 2),
            Jal { target } => write!(f, "jal {:#010x}", target << 2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_instructions() -> Vec<Instruction> {
        use Instruction::*;
        vec![
            Addu {
                rd: Reg::T0,
                rs: Reg::T1,
                rt: Reg::T2,
            },
            Subu {
                rd: Reg::S0,
                rs: Reg::S1,
                rt: Reg::S2,
            },
            And {
                rd: Reg::V0,
                rs: Reg::A0,
                rt: Reg::A1,
            },
            Or {
                rd: Reg::V1,
                rs: Reg::A2,
                rt: Reg::A3,
            },
            Xor {
                rd: Reg::T3,
                rs: Reg::T4,
                rt: Reg::T5,
            },
            Nor {
                rd: Reg::T6,
                rs: Reg::T7,
                rt: Reg::T8,
            },
            Slt {
                rd: Reg::T9,
                rs: Reg::S3,
                rt: Reg::S4,
            },
            Sltu {
                rd: Reg::S5,
                rs: Reg::S6,
                rt: Reg::S7,
            },
            Sll {
                rd: Reg::T0,
                rt: Reg::T1,
                shamt: 5,
            },
            Srl {
                rd: Reg::T0,
                rt: Reg::T1,
                shamt: 31,
            },
            Sra {
                rd: Reg::T0,
                rt: Reg::T1,
                shamt: 1,
            },
            Jr { rs: Reg::RA },
            Break { code: 42 },
            Addiu {
                rt: Reg::T0,
                rs: Reg::ZERO,
                imm: -100,
            },
            Slti {
                rt: Reg::T1,
                rs: Reg::T0,
                imm: 77,
            },
            Sltiu {
                rt: Reg::T1,
                rs: Reg::T0,
                imm: -1,
            },
            Andi {
                rt: Reg::T2,
                rs: Reg::T3,
                imm: 0xffff,
            },
            Ori {
                rt: Reg::T2,
                rs: Reg::T3,
                imm: 0x8000,
            },
            Xori {
                rt: Reg::T2,
                rs: Reg::T3,
                imm: 0x0001,
            },
            Lui {
                rt: Reg::GP,
                imm: 0x1000,
            },
            Lw {
                rt: Reg::T0,
                base: Reg::SP,
                offset: -4,
            },
            Sw {
                rt: Reg::RA,
                base: Reg::SP,
                offset: 0,
            },
            Beq {
                rs: Reg::T0,
                rt: Reg::ZERO,
                offset: -3,
            },
            Bne {
                rs: Reg::T0,
                rt: Reg::T1,
                offset: 12,
            },
            Blez {
                rs: Reg::T0,
                offset: 2,
            },
            Bgtz {
                rs: Reg::T0,
                offset: -2,
            },
            J {
                target: 0x0010_0000,
            },
            Jal {
                target: 0x03ff_ffff,
            },
            Instruction::NOP,
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for inst in all_sample_instructions() {
            let word = inst.encode();
            let back = Instruction::decode(word).unwrap_or_else(|e| panic!("{inst}: {e}"));
            assert_eq!(back, inst, "round-trip of {inst} (word {word:#010x})");
        }
    }

    #[test]
    fn nop_encodes_to_zero() {
        assert_eq!(Instruction::NOP.encode(), 0);
        assert_eq!(Instruction::decode(0).unwrap(), Instruction::NOP);
    }

    #[test]
    fn known_encodings_match_mips_manual() {
        // addu $t0, $t1, $t2  =>  000000 01001 01010 01000 00000 100001
        let addu = Instruction::Addu {
            rd: Reg::T0,
            rs: Reg::T1,
            rt: Reg::T2,
        };
        assert_eq!(addu.encode(), 0x012a_4021);
        // addiu $t0, $zero, 1  =>  001001 00000 01000 0000000000000001
        let addiu = Instruction::Addiu {
            rt: Reg::T0,
            rs: Reg::ZERO,
            imm: 1,
        };
        assert_eq!(addiu.encode(), 0x2408_0001);
        // lw $t0, 4($sp)  =>  100011 11101 01000 0000000000000100
        let lw = Instruction::Lw {
            rt: Reg::T0,
            base: Reg::SP,
            offset: 4,
        };
        assert_eq!(lw.encode(), 0x8fa8_0004);
        // jr $ra  =>  000000 11111 ... 001000
        let jr = Instruction::Jr { rs: Reg::RA };
        assert_eq!(jr.encode(), 0x03e0_0008);
    }

    #[test]
    fn decode_rejects_unknown() {
        // Opcode 0x3f is not in the subset.
        assert!(matches!(
            Instruction::decode(0xfc00_0000),
            Err(MipsError::UnknownInstruction(_))
        ));
        // SPECIAL funct 0x3f is not in the subset.
        assert!(matches!(
            Instruction::decode(0x0000_003f),
            Err(MipsError::UnknownInstruction(_))
        ));
    }

    #[test]
    fn branch_target_arithmetic() {
        let pc = 0x0040_0010;
        let b = Instruction::Bne {
            rs: Reg::T0,
            rt: Reg::ZERO,
            offset: -2,
        };
        assert_eq!(b.static_target(pc), Some(0x0040_000c));
        let fwd = Instruction::Beq {
            rs: Reg::T0,
            rt: Reg::ZERO,
            offset: 3,
        };
        assert_eq!(fwd.static_target(pc), Some(0x0040_0020));
    }

    #[test]
    fn jump_target_arithmetic() {
        let pc = 0x0040_0010;
        let j = Instruction::J {
            target: 0x0040_0100 >> 2,
        };
        assert_eq!(j.static_target(pc), Some(0x0040_0100));
    }

    #[test]
    fn control_flow_classification() {
        assert!(Instruction::Jr { rs: Reg::RA }.is_control_flow());
        assert!(!Instruction::Jr { rs: Reg::RA }.falls_through());
        assert!(Instruction::NOP.falls_through());
        assert!(!Instruction::NOP.is_control_flow());
        let b = Instruction::Beq {
            rs: Reg::T0,
            rt: Reg::ZERO,
            offset: 1,
        };
        assert!(b.is_conditional_branch());
        assert!(b.falls_through());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Instruction::NOP.to_string(), "nop");
        let lw = Instruction::Lw {
            rt: Reg::T0,
            base: Reg::SP,
            offset: -8,
        };
        assert_eq!(lw.to_string(), "lw $t0, -8($sp)");
    }
}
