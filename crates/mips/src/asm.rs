//! A two-pass assembler with symbolic labels.

use std::collections::HashMap;

use crate::error::MipsError;
use crate::image::BinaryImage;
use crate::inst::{Instruction, INSTRUCTION_BYTES};
use crate::reg::Reg;

/// An instruction whose control-flow target may be a yet-unresolved label.
#[derive(Debug, Clone)]
enum Item {
    /// Fully resolved instruction.
    Ready(Instruction),
    /// `beq`/`bne` with a label target.
    BranchEqNe {
        equal: bool,
        rs: Reg,
        rt: Reg,
        label: String,
    },
    /// `blez`/`bgtz` with a label target.
    BranchZero { lez: bool, rs: Reg, label: String },
    /// `j`/`jal` with a label target.
    Jump { link: bool, label: String },
}

/// Builds machine code incrementally and resolves labels in a second pass.
///
/// # Example
///
/// ```
/// use pwcet_mips::{Assembler, Instruction, Reg};
///
/// # fn main() -> Result<(), pwcet_mips::MipsError> {
/// let mut asm = Assembler::new(0x0040_0000);
/// asm.jal("callee");
/// asm.push(Instruction::Break { code: 0 });
/// asm.label("callee");
/// asm.push(Instruction::Jr { rs: Reg::RA });
/// let image = asm.assemble()?;
/// assert_eq!(asm_label_addr(&asm), 0x0040_0008);
/// # fn asm_label_addr(asm: &Assembler) -> u32 { asm.label_address("callee").unwrap() }
/// assert_eq!(image.len_words(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Assembler {
    base: u32,
    items: Vec<Item>,
    labels: HashMap<String, u32>,
    duplicate: Option<String>,
}

impl Assembler {
    /// Creates an assembler emitting code from `base` (must be aligned).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-byte aligned.
    pub fn new(base: u32) -> Self {
        assert_eq!(base % INSTRUCTION_BYTES, 0, "code base must be aligned");
        Self {
            base,
            items: Vec::new(),
            labels: HashMap::new(),
            duplicate: None,
        }
    }

    /// The address the *next* pushed instruction will occupy.
    pub fn here(&self) -> u32 {
        self.base + (self.items.len() as u32) * INSTRUCTION_BYTES
    }

    /// Defines `name` at the current position.
    ///
    /// Duplicate definitions are reported by [`assemble`](Self::assemble).
    pub fn label(&mut self, name: impl Into<String>) {
        let name = name.into();
        if self.labels.insert(name.clone(), self.here()).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name);
        }
    }

    /// The resolved address of a defined label, if any.
    pub fn label_address(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// Appends a fully resolved instruction.
    pub fn push(&mut self, inst: Instruction) {
        self.items.push(Item::Ready(inst));
    }

    /// Appends `beq rs, rt, label`.
    pub fn beq(&mut self, rs: Reg, rt: Reg, label: impl Into<String>) {
        self.items.push(Item::BranchEqNe {
            equal: true,
            rs,
            rt,
            label: label.into(),
        });
    }

    /// Appends `bne rs, rt, label`.
    pub fn bne(&mut self, rs: Reg, rt: Reg, label: impl Into<String>) {
        self.items.push(Item::BranchEqNe {
            equal: false,
            rs,
            rt,
            label: label.into(),
        });
    }

    /// Appends `blez rs, label`.
    pub fn blez(&mut self, rs: Reg, label: impl Into<String>) {
        self.items.push(Item::BranchZero {
            lez: true,
            rs,
            label: label.into(),
        });
    }

    /// Appends `bgtz rs, label`.
    pub fn bgtz(&mut self, rs: Reg, label: impl Into<String>) {
        self.items.push(Item::BranchZero {
            lez: false,
            rs,
            label: label.into(),
        });
    }

    /// Appends `j label`.
    pub fn j(&mut self, label: impl Into<String>) {
        self.items.push(Item::Jump {
            link: false,
            label: label.into(),
        });
    }

    /// Appends `jal label`.
    pub fn jal(&mut self, label: impl Into<String>) {
        self.items.push(Item::Jump {
            link: true,
            label: label.into(),
        });
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Resolves all labels and produces the binary image.
    ///
    /// # Errors
    ///
    /// * [`MipsError::DuplicateLabel`] if a label was defined twice.
    /// * [`MipsError::UndefinedLabel`] if a target label was never defined.
    /// * [`MipsError::BranchOutOfRange`] if a branch displacement overflows
    ///   its 16-bit field.
    pub fn assemble(&self) -> Result<BinaryImage, MipsError> {
        if let Some(name) = &self.duplicate {
            return Err(MipsError::DuplicateLabel(name.clone()));
        }
        let mut words = Vec::with_capacity(self.items.len());
        for (i, item) in self.items.iter().enumerate() {
            let pc = self.base + (i as u32) * INSTRUCTION_BYTES;
            let inst = match item {
                Item::Ready(inst) => *inst,
                Item::BranchEqNe {
                    equal,
                    rs,
                    rt,
                    label,
                } => {
                    let offset = self.branch_offset(pc, label)?;
                    if *equal {
                        Instruction::Beq {
                            rs: *rs,
                            rt: *rt,
                            offset,
                        }
                    } else {
                        Instruction::Bne {
                            rs: *rs,
                            rt: *rt,
                            offset,
                        }
                    }
                }
                Item::BranchZero { lez, rs, label } => {
                    let offset = self.branch_offset(pc, label)?;
                    if *lez {
                        Instruction::Blez { rs: *rs, offset }
                    } else {
                        Instruction::Bgtz { rs: *rs, offset }
                    }
                }
                Item::Jump { link, label } => {
                    let target_addr = self.resolve(label)?;
                    let target = (target_addr >> 2) & 0x03ff_ffff;
                    if *link {
                        Instruction::Jal { target }
                    } else {
                        Instruction::J { target }
                    }
                }
            };
            words.push(inst.encode());
        }
        Ok(BinaryImage::new(self.base, words))
    }

    fn resolve(&self, label: &str) -> Result<u32, MipsError> {
        self.labels
            .get(label)
            .copied()
            .ok_or_else(|| MipsError::UndefinedLabel(label.to_string()))
    }

    fn branch_offset(&self, pc: u32, label: &str) -> Result<i16, MipsError> {
        let target = self.resolve(label)?;
        let delta_words = (i64::from(target) - i64::from(pc) - i64::from(INSTRUCTION_BYTES)) / 4;
        i16::try_from(delta_words).map_err(|_| MipsError::BranchOutOfRange {
            label: label.to_string(),
            offset: delta_words,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut asm = Assembler::new(0x0040_0000);
        asm.label("top");
        asm.push(Instruction::NOP); // 0x00
        asm.bne(Reg::T0, Reg::ZERO, "top"); // 0x04 -> offset -2
        asm.beq(Reg::T0, Reg::ZERO, "end"); // 0x08 -> offset +1
        asm.push(Instruction::NOP); // 0x0c
        asm.label("end");
        asm.push(Instruction::Break { code: 0 }); // 0x10
        let image = asm.assemble().unwrap();
        assert_eq!(
            image.decode_at(0x0040_0004).unwrap(),
            Instruction::Bne {
                rs: Reg::T0,
                rt: Reg::ZERO,
                offset: -2
            }
        );
        assert_eq!(
            image.decode_at(0x0040_0008).unwrap(),
            Instruction::Beq {
                rs: Reg::T0,
                rt: Reg::ZERO,
                offset: 1
            }
        );
        // Decoded targets point back at the labels.
        let bne = image.decode_at(0x0040_0004).unwrap();
        assert_eq!(bne.static_target(0x0040_0004), Some(0x0040_0000));
        let beq = image.decode_at(0x0040_0008).unwrap();
        assert_eq!(beq.static_target(0x0040_0008), Some(0x0040_0010));
    }

    #[test]
    fn jumps_resolve_to_word_targets() {
        let mut asm = Assembler::new(0x0040_0000);
        asm.j("fin");
        asm.push(Instruction::NOP);
        asm.label("fin");
        asm.push(Instruction::Break { code: 0 });
        let image = asm.assemble().unwrap();
        let j = image.decode_at(0x0040_0000).unwrap();
        assert_eq!(j.static_target(0x0040_0000), Some(0x0040_0008));
    }

    #[test]
    fn blez_bgtz_resolve() {
        let mut asm = Assembler::new(0x0040_0000);
        asm.label("a");
        asm.blez(Reg::T0, "a");
        asm.bgtz(Reg::T1, "a");
        let image = asm.assemble().unwrap();
        assert_eq!(
            image.decode_at(0x0040_0000).unwrap(),
            Instruction::Blez {
                rs: Reg::T0,
                offset: -1
            }
        );
        assert_eq!(
            image.decode_at(0x0040_0004).unwrap(),
            Instruction::Bgtz {
                rs: Reg::T1,
                offset: -2
            }
        );
    }

    #[test]
    fn undefined_label_is_reported() {
        let mut asm = Assembler::new(0);
        asm.j("nowhere");
        assert_eq!(
            asm.assemble(),
            Err(MipsError::UndefinedLabel("nowhere".into()))
        );
    }

    #[test]
    fn duplicate_label_is_reported() {
        let mut asm = Assembler::new(0);
        asm.label("x");
        asm.push(Instruction::NOP);
        asm.label("x");
        assert_eq!(asm.assemble(), Err(MipsError::DuplicateLabel("x".into())));
    }

    #[test]
    fn branch_out_of_range_is_reported() {
        let mut asm = Assembler::new(0);
        asm.label("far");
        for _ in 0..40_000 {
            asm.push(Instruction::NOP);
        }
        asm.bne(Reg::T0, Reg::ZERO, "far");
        assert!(matches!(
            asm.assemble(),
            Err(MipsError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn here_tracks_position() {
        let mut asm = Assembler::new(0x1000);
        assert_eq!(asm.here(), 0x1000);
        asm.push(Instruction::NOP);
        assert_eq!(asm.here(), 0x1004);
        assert_eq!(asm.len(), 1);
        assert!(!asm.is_empty());
    }
}
