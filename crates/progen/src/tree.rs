//! The structure tree: syntax-directed shape of the generated code.
//!
//! Heptane's original WCET engine \[14\] computes worst-case times bottom-up
//! over a tree mirroring the program syntax. The code generator emits this
//! tree alongside the machine code; `pwcet-ipet` evaluates it as an
//! independent oracle for the IPET engine.

use std::collections::HashMap;

/// One node of the structure tree of a compiled function.
///
/// Every instruction address of the function appears in exactly one
/// [`Straight`](StructureNode::Straight) leaf or [`Call`](StructureNode::Call)
/// site, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureNode {
    /// A run of straight-line instruction addresses.
    Straight(Vec<u32>),
    /// Children executed in order.
    Seq(Vec<StructureNode>),
    /// A counted loop. `header` is the address of the first body
    /// instruction (the target of the back edge); the body — including the
    /// trailing decrement and back-branch — executes exactly `bound` times
    /// per entry.
    Loop {
        /// Back-edge target address.
        header: u32,
        /// Body executions per loop entry.
        bound: u32,
        /// Loop body.
        body: Box<StructureNode>,
    },
    /// A two-way branch (the condition instructions live in the preceding
    /// straight run; the `then` side ends with the jump over `else`).
    IfElse {
        /// Side taken when the direction toggle is odd.
        then_branch: Box<StructureNode>,
        /// Side taken when the direction toggle is even.
        else_branch: Box<StructureNode>,
    },
    /// A function call: the `jal` at address `site` transfers to `callee`.
    Call {
        /// Address of the `jal` instruction.
        site: u32,
        /// Name of the called function.
        callee: String,
    },
}

impl StructureNode {
    /// All instruction addresses of this node, *excluding* called
    /// functions' bodies (the `jal` site itself is included).
    pub fn own_addresses(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_own(&mut out);
        out
    }

    fn collect_own(&self, out: &mut Vec<u32>) {
        match self {
            StructureNode::Straight(addrs) => out.extend_from_slice(addrs),
            StructureNode::Seq(children) => {
                children.iter().for_each(|c| c.collect_own(out));
            }
            StructureNode::Loop { body, .. } => body.collect_own(out),
            StructureNode::IfElse {
                then_branch,
                else_branch,
            } => {
                then_branch.collect_own(out);
                else_branch.collect_own(out);
            }
            StructureNode::Call { site, .. } => out.push(*site),
        }
    }

    /// All loop headers in this node (not entering callees).
    pub fn own_loop_headers(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_headers(&mut out);
        out
    }

    fn collect_headers(&self, out: &mut Vec<u32>) {
        match self {
            StructureNode::Straight(_) | StructureNode::Call { .. } => {}
            StructureNode::Seq(children) => {
                children.iter().for_each(|c| c.collect_headers(out));
            }
            StructureNode::Loop { header, body, .. } => {
                out.push(*header);
                body.collect_headers(out);
            }
            StructureNode::IfElse {
                then_branch,
                else_branch,
            } => {
                then_branch.collect_headers(out);
                else_branch.collect_headers(out);
            }
        }
    }

    /// Upper bound on the number of instruction fetches one execution of
    /// this node can perform, inlining callees from `trees`.
    ///
    /// This is the tree-engine WCET with a unit cost per fetch and no
    /// cache; used in tests as a sanity oracle.
    ///
    /// # Panics
    ///
    /// Panics if a callee is missing from `trees` (validated programs
    /// cannot trigger this).
    pub fn max_fetches(&self, trees: &HashMap<String, StructureNode>) -> u64 {
        match self {
            StructureNode::Straight(addrs) => addrs.len() as u64,
            StructureNode::Seq(children) => children.iter().map(|c| c.max_fetches(trees)).sum(),
            StructureNode::Loop { bound, body, .. } => u64::from(*bound) * body.max_fetches(trees),
            StructureNode::IfElse {
                then_branch,
                else_branch,
            } => then_branch
                .max_fetches(trees)
                .max(else_branch.max_fetches(trees)),
            StructureNode::Call { callee, .. } => {
                1 + trees
                    .get(callee)
                    .unwrap_or_else(|| panic!("callee `{callee}` missing from tree map"))
                    .max_fetches(trees)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(addrs: &[u32]) -> StructureNode {
        StructureNode::Straight(addrs.to_vec())
    }

    #[test]
    fn own_addresses_in_order() {
        let tree = StructureNode::Seq(vec![
            leaf(&[0, 4]),
            StructureNode::Loop {
                header: 8,
                bound: 3,
                body: Box::new(leaf(&[8, 12])),
            },
            StructureNode::Call {
                site: 16,
                callee: "f".into(),
            },
        ]);
        assert_eq!(tree.own_addresses(), vec![0, 4, 8, 12, 16]);
        assert_eq!(tree.own_loop_headers(), vec![8]);
    }

    #[test]
    fn max_fetches_composes() {
        let mut trees = HashMap::new();
        trees.insert("f".to_string(), leaf(&[100, 104, 108]));
        let tree = StructureNode::Seq(vec![
            leaf(&[0]),
            StructureNode::Loop {
                header: 4,
                bound: 10,
                body: Box::new(StructureNode::IfElse {
                    then_branch: Box::new(leaf(&[4, 8])),
                    else_branch: Box::new(StructureNode::Call {
                        site: 12,
                        callee: "f".into(),
                    }),
                }),
            },
        ]);
        // 1 + 10 * max(2, 1 + 3) = 41.
        assert_eq!(tree.max_fetches(&trees), 41);
    }
}
