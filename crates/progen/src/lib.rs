//! Structured program generation: a small DSL compiled to MIPS machine code.
//!
//! The paper's workload is 25 Mälardalen benchmarks compiled for MIPS
//! R2000/R3000 (§IV-A). The static analysis only observes the *instruction
//! fetch address stream shape* — code layout, basic-block structure, loop
//! nests and bounds, call structure — so this crate provides the equivalent
//! substrate: a structured program description ([`Program`], [`Stmt`]) and a
//! code generator that turns it into a real [`pwcet_mips::BinaryImage`],
//! together with
//!
//! * **loop-bound annotations** ([`LoopBound`]) consumed by the IPET path
//!   analysis (the role of Heptane's annotation mechanism), and
//! * a **structure tree** ([`StructureNode`]) consumed by the tree-based
//!   WCET engine (Heptane's original engine \[14\]).
//!
//! Generated code uses a fixed register discipline (documented in
//! [`codegen_doc`]) so that every program is also *executable* by the
//! functional simulator in `pwcet-sim`, which validates the static bounds.
//!
//! # Example
//!
//! ```
//! use pwcet_progen::{stmt, Program};
//!
//! # fn main() -> Result<(), pwcet_progen::ProgenError> {
//! // for i in 0..10 { 8 instructions } — plus a helper called once.
//! let program = Program::new("demo")
//!     .with_function("main", stmt::seq([
//!         stmt::loop_(10, stmt::compute(8)),
//!         stmt::call("helper"),
//!     ]))
//!     .with_function("helper", stmt::compute(4));
//! let compiled = program.compile(0x0040_0000)?;
//! assert!(compiled.image().len_words() > 12);
//! assert_eq!(compiled.loop_bounds().len(), 1);
//! assert_eq!(compiled.loop_bounds()[0].bound, 10);
//! # Ok(())
//! # }
//! ```

mod ast;
mod codegen;
mod error;
mod generator;
mod tree;

pub use ast::{stmt, Function, Program, Stmt};
pub use codegen::{CompiledProgram, FunctionInfo, LoopBound, MAX_LOOP_DEPTH};
pub use error::ProgenError;
pub use generator::{GeneratorConfig, ProgramGenerator};
pub use tree::StructureNode;

pub mod codegen_doc {
    //! # Register discipline of generated code
    //!
    //! | Register | Role |
    //! |---|---|
    //! | `$sp` | stack pointer (initialized by `main` to `0x7fff_f000`) |
    //! | `$ra` | return address (`jal`/`jr`) |
    //! | `$s0..$s7` | loop counters, indexed by nesting depth within a function |
    //! | `$t9` | branch-direction toggle for `if_else` (alternates sides) |
    //! | `$t0..$t7` | operands of straight-line compute instructions |
    //!
    //! Functions save `$ra` and every `$sN` they use on the stack, so calls
    //! may appear anywhere, including inside loops. `main` ends with
    //! `break 0`, the workspace's halt instruction.
}
