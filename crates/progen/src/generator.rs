//! Seeded random structured-program generation.
//!
//! Random programs drive the cross-engine property tests of the workspace:
//! for any generated program, the IPET and tree WCET bounds must both
//! dominate simulated execution, and analytic fault penalties must dominate
//! simulated fault penalties. Generation is fully deterministic given the
//! seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ast::{stmt, Program, Stmt};
use crate::codegen::MAX_LOOP_DEPTH;

/// Shape parameters for [`ProgramGenerator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Number of functions besides `main` (callable helpers).
    pub helper_functions: usize,
    /// Maximum statement nesting depth (loops + branches combined).
    pub max_stmt_depth: usize,
    /// Maximum loop bound (inclusive); bounds are drawn from `1..=max`.
    pub max_loop_bound: u32,
    /// Maximum straight-line run length.
    pub max_compute: u32,
    /// Maximum children of a sequence node.
    pub max_seq_len: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            helper_functions: 2,
            max_stmt_depth: 4,
            max_loop_bound: 8,
            max_compute: 12,
            max_seq_len: 4,
        }
    }
}

/// Deterministic random program generator.
///
/// Acyclicity of the call graph holds by construction: function `i` may
/// only call functions with larger indices.
///
/// # Example
///
/// ```
/// use pwcet_progen::{GeneratorConfig, ProgramGenerator};
///
/// let mut generator = ProgramGenerator::new(GeneratorConfig::default(), 42);
/// let program = generator.generate("random_42");
/// assert!(program.validate().is_ok());
/// let same = ProgramGenerator::new(GeneratorConfig::default(), 42).generate("random_42");
/// assert_eq!(program, same); // fully deterministic
/// ```
#[derive(Debug)]
pub struct ProgramGenerator {
    config: GeneratorConfig,
    rng: StdRng,
}

impl ProgramGenerator {
    /// Creates a generator with the given shape and seed.
    pub fn new(config: GeneratorConfig, seed: u64) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates one valid program.
    pub fn generate(&mut self, name: impl Into<String>) -> Program {
        let helper_names: Vec<String> = (0..self.config.helper_functions)
            .map(|i| format!("helper_{i}"))
            .collect();
        let mut program = Program::new(name);
        let main_body = self.gen_stmt(self.config.max_stmt_depth, 0, &helper_names);
        program = program.with_function("main", main_body);
        for (i, helper) in helper_names.iter().enumerate() {
            // Helper i may call only helpers with larger indices.
            let callable = &helper_names[i + 1..];
            let body = self.gen_stmt(self.config.max_stmt_depth.saturating_sub(1), 0, callable);
            program = program.with_function(helper.clone(), body);
        }
        program
    }

    fn gen_stmt(&mut self, depth: usize, loop_depth: usize, callable: &[String]) -> Stmt {
        let can_loop = depth > 0 && loop_depth < MAX_LOOP_DEPTH;
        let can_branch = depth > 0;
        let can_call = !callable.is_empty();
        // Weighted choice over the available statement kinds.
        let choice = self.rng.gen_range(0..100u32);
        if can_loop && choice < 30 {
            let bound = self.rng.gen_range(1..=self.config.max_loop_bound);
            let body = self.gen_stmt(depth - 1, loop_depth + 1, callable);
            stmt::loop_(bound, stmt::seq([self.gen_compute(), body]))
        } else if can_branch && choice < 50 {
            let a = self.gen_stmt(depth - 1, loop_depth, callable);
            let b = self.gen_stmt(depth - 1, loop_depth, callable);
            stmt::if_else(a, b)
        } else if can_call && choice < 62 {
            let callee = &callable[self.rng.gen_range(0..callable.len())];
            stmt::call(callee.clone())
        } else if depth > 0 && choice < 85 {
            let len = self.rng.gen_range(1..=self.config.max_seq_len);
            stmt::seq((0..len).map(|_| self.gen_stmt(depth - 1, loop_depth, callable)))
        } else {
            self.gen_compute()
        }
    }

    fn gen_compute(&mut self) -> Stmt {
        stmt::compute(self.rng.gen_range(1..=self.config.max_compute))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_validate_and_compile() {
        for seed in 0..25 {
            let mut generator = ProgramGenerator::new(GeneratorConfig::default(), seed);
            let program = generator.generate(format!("random_{seed}"));
            program
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let compiled = program
                .compile(0x0040_0000)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(compiled.image().len_words() >= 4);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ProgramGenerator::new(GeneratorConfig::default(), 7).generate("p");
        let b = ProgramGenerator::new(GeneratorConfig::default(), 7).generate("p");
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ProgramGenerator::new(GeneratorConfig::default(), 1).generate("p");
        let b = ProgramGenerator::new(GeneratorConfig::default(), 2).generate("p");
        assert_ne!(a, b);
    }

    #[test]
    fn config_shapes_program_size() {
        let big = GeneratorConfig {
            helper_functions: 4,
            max_stmt_depth: 5,
            ..GeneratorConfig::default()
        };
        let program = ProgramGenerator::new(big, 3).generate("big");
        assert_eq!(program.functions().len(), 5);
    }
}
