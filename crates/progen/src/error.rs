//! Errors reported while validating or compiling structured programs.

use std::error::Error;
use std::fmt;

use pwcet_mips::MipsError;

/// Errors from [`Program::compile`](crate::Program::compile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgenError {
    /// The program has no `main` function.
    MissingMain,
    /// Two functions share a name.
    DuplicateFunction(String),
    /// A `call` targets an unknown function.
    UndefinedFunction(String),
    /// The call graph contains a cycle through the named function
    /// (recursion is not supported: loop bounds could not be derived).
    RecursiveCall(String),
    /// A loop bound of zero was given; counted loops execute at least once.
    ZeroLoopBound,
    /// A loop bound exceeds the immediate range of the counter setup.
    LoopBoundTooLarge(u32),
    /// Loops nest deeper than the register discipline supports.
    LoopTooDeep(usize),
    /// The assembler rejected the generated code (internal error).
    Assembler(MipsError),
}

impl fmt::Display for ProgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgenError::MissingMain => write!(f, "program has no `main` function"),
            ProgenError::DuplicateFunction(n) => write!(f, "function `{n}` is defined twice"),
            ProgenError::UndefinedFunction(n) => write!(f, "call to undefined function `{n}`"),
            ProgenError::RecursiveCall(n) => {
                write!(f, "recursion through `{n}` is not supported")
            }
            ProgenError::ZeroLoopBound => write!(f, "loop bound must be at least one"),
            ProgenError::LoopBoundTooLarge(b) => {
                write!(f, "loop bound {b} exceeds the supported maximum of 32767")
            }
            ProgenError::LoopTooDeep(d) => {
                write!(
                    f,
                    "loop nesting depth {d} exceeds the supported maximum of 8"
                )
            }
            ProgenError::Assembler(e) => write!(f, "generated code failed to assemble: {e}"),
        }
    }
}

impl Error for ProgenError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProgenError::Assembler(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MipsError> for ProgenError {
    fn from(e: MipsError) -> Self {
        ProgenError::Assembler(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(ProgenError::MissingMain.to_string().contains("main"));
        assert!(ProgenError::RecursiveCall("f".into())
            .to_string()
            .contains("`f`"));
        assert!(ProgenError::LoopBoundTooLarge(99999)
            .to_string()
            .contains("99999"));
    }
}
