//! The structured program description.

use std::collections::{HashMap, HashSet};

use crate::codegen::{self, CompiledProgram};
use crate::error::ProgenError;

/// A statement of the structured DSL.
///
/// Statements are deliberately minimal: they capture exactly the control
/// structure that determines the instruction fetch stream (straight-line
/// runs, bounded loops, two-way branches, calls) and nothing else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `count` straight-line ALU instructions (no memory traffic).
    Compute(u32),
    /// Statements executed in order.
    Seq(Vec<Stmt>),
    /// A counted loop whose body executes exactly `bound` times per entry.
    Loop {
        /// Number of body executions per loop entry (≥ 1).
        bound: u32,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// A two-way branch. Generated code alternates sides deterministically
    /// at run time; the static analysis considers both.
    IfElse {
        /// Taken when the direction toggle is odd.
        then_branch: Box<Stmt>,
        /// Taken when the direction toggle is even.
        else_branch: Box<Stmt>,
    },
    /// A call to another function of the same program.
    Call(String),
}

/// Convenience constructors for [`Stmt`].
///
/// # Example
///
/// ```
/// use pwcet_progen::stmt;
///
/// let body = stmt::seq([
///     stmt::compute(4),
///     stmt::if_else(stmt::compute(2), stmt::compute(6)),
/// ]);
/// let nest = stmt::loop_(100, body);
/// ```
pub mod stmt {
    use super::Stmt;

    /// `count` straight-line instructions.
    pub fn compute(count: u32) -> Stmt {
        Stmt::Compute(count)
    }

    /// Statements in order.
    pub fn seq(stmts: impl IntoIterator<Item = Stmt>) -> Stmt {
        Stmt::Seq(stmts.into_iter().collect())
    }

    /// A counted loop executing `body` exactly `bound` times.
    pub fn loop_(bound: u32, body: Stmt) -> Stmt {
        Stmt::Loop {
            bound,
            body: Box::new(body),
        }
    }

    /// A two-way branch.
    pub fn if_else(then_branch: Stmt, else_branch: Stmt) -> Stmt {
        Stmt::IfElse {
            then_branch: Box::new(then_branch),
            else_branch: Box::new(else_branch),
        }
    }

    /// A call to the named function.
    pub fn call(name: impl Into<String>) -> Stmt {
        Stmt::Call(name.into())
    }
}

impl Stmt {
    /// Maximum loop nesting depth within this statement.
    pub fn loop_depth(&self) -> usize {
        match self {
            Stmt::Compute(_) | Stmt::Call(_) => 0,
            Stmt::Seq(items) => items.iter().map(Stmt::loop_depth).max().unwrap_or(0),
            Stmt::Loop { body, .. } => 1 + body.loop_depth(),
            Stmt::IfElse {
                then_branch,
                else_branch,
            } => then_branch.loop_depth().max(else_branch.loop_depth()),
        }
    }

    /// Names of all functions called (transitively within this statement).
    pub fn callees(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_callees(&mut out);
        out
    }

    fn collect_callees<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Stmt::Compute(_) => {}
            Stmt::Call(name) => out.push(name),
            Stmt::Seq(items) => items.iter().for_each(|s| s.collect_callees(out)),
            Stmt::Loop { body, .. } => body.collect_callees(out),
            Stmt::IfElse {
                then_branch,
                else_branch,
            } => {
                then_branch.collect_callees(out);
                else_branch.collect_callees(out);
            }
        }
    }
}

/// A named function with a structured body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    name: String,
    body: Stmt,
}

impl Function {
    /// Creates a function.
    pub fn new(name: impl Into<String>, body: Stmt) -> Self {
        Self {
            name: name.into(),
            body,
        }
    }

    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The function body.
    pub fn body(&self) -> &Stmt {
        &self.body
    }
}

/// A whole structured program: a set of functions with `main` as entry.
///
/// # Example
///
/// ```
/// use pwcet_progen::{stmt, Program};
///
/// let p = Program::new("tiny").with_function("main", stmt::compute(3));
/// assert!(p.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    functions: Vec<Function>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            functions: Vec::new(),
        }
    }

    /// Adds a function (builder style). `main` is the entry point and is
    /// emitted first, at the image base.
    #[must_use]
    pub fn with_function(mut self, name: impl Into<String>, body: Stmt) -> Self {
        self.functions.push(Function::new(name, body));
        self
    }

    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The functions in declaration order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name() == name)
    }

    /// Checks the static rules the code generator relies on.
    ///
    /// # Errors
    ///
    /// * [`ProgenError::MissingMain`] — no `main` function.
    /// * [`ProgenError::DuplicateFunction`] — a name is defined twice.
    /// * [`ProgenError::UndefinedFunction`] — a `call` has no target.
    /// * [`ProgenError::RecursiveCall`] — the call graph has a cycle.
    /// * [`ProgenError::ZeroLoopBound`] / [`ProgenError::LoopBoundTooLarge`]
    ///   — a loop bound is 0 or above `i16::MAX`.
    /// * [`ProgenError::LoopTooDeep`] — more than
    ///   [`MAX_LOOP_DEPTH`](crate::MAX_LOOP_DEPTH) nested loops.
    pub fn validate(&self) -> Result<(), ProgenError> {
        let mut names = HashSet::new();
        for f in &self.functions {
            if !names.insert(f.name()) {
                return Err(ProgenError::DuplicateFunction(f.name().to_string()));
            }
        }
        if !names.contains("main") {
            return Err(ProgenError::MissingMain);
        }
        for f in &self.functions {
            check_stmt(f.body())?;
            for callee in f.body().callees() {
                if !names.contains(callee) {
                    return Err(ProgenError::UndefinedFunction(callee.to_string()));
                }
            }
        }
        self.check_acyclic()?;
        Ok(())
    }

    /// Compiles the program to machine code at `base`.
    ///
    /// # Errors
    ///
    /// All [`validate`](Self::validate) errors, plus
    /// [`ProgenError::Assembler`] if the emitted code fails to assemble
    /// (e.g. a function body too large for branch displacement).
    pub fn compile(&self, base: u32) -> Result<CompiledProgram, ProgenError> {
        self.validate()?;
        codegen::compile(self, base)
    }

    fn check_acyclic(&self) -> Result<(), ProgenError> {
        // Three-color depth-first search over the call graph.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let graph: HashMap<&str, Vec<&str>> = self
            .functions
            .iter()
            .map(|f| (f.name(), f.body().callees()))
            .collect();
        let mut color: HashMap<&str, Color> = graph.keys().map(|&k| (k, Color::White)).collect();

        fn visit<'a>(
            node: &'a str,
            graph: &HashMap<&'a str, Vec<&'a str>>,
            color: &mut HashMap<&'a str, Color>,
        ) -> Result<(), ProgenError> {
            color.insert(node, Color::Gray);
            for &next in graph.get(node).into_iter().flatten() {
                match color.get(next) {
                    Some(Color::Gray) => return Err(ProgenError::RecursiveCall(next.to_string())),
                    Some(Color::White) => visit(next, graph, color)?,
                    _ => {}
                }
            }
            color.insert(node, Color::Black);
            Ok(())
        }

        for f in &self.functions {
            if color[f.name()] == Color::White {
                visit(f.name(), &graph, &mut color)?;
            }
        }
        Ok(())
    }
}

fn check_stmt(s: &Stmt) -> Result<(), ProgenError> {
    if s.loop_depth() > codegen::MAX_LOOP_DEPTH {
        return Err(ProgenError::LoopTooDeep(s.loop_depth()));
    }
    check_bounds(s)
}

fn check_bounds(s: &Stmt) -> Result<(), ProgenError> {
    match s {
        Stmt::Compute(_) | Stmt::Call(_) => Ok(()),
        Stmt::Seq(items) => items.iter().try_for_each(check_bounds),
        Stmt::Loop { bound, body } => {
            if *bound == 0 {
                return Err(ProgenError::ZeroLoopBound);
            }
            if *bound > i16::MAX as u32 {
                return Err(ProgenError::LoopBoundTooLarge(*bound));
            }
            check_bounds(body)
        }
        Stmt::IfElse {
            then_branch,
            else_branch,
        } => {
            check_bounds(then_branch)?;
            check_bounds(else_branch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::stmt::*;
    use super::*;

    #[test]
    fn validate_accepts_well_formed_program() {
        let p = Program::new("ok")
            .with_function("main", seq([compute(2), call("f"), call("g")]))
            .with_function("f", loop_(10, compute(1)))
            .with_function("g", if_else(compute(1), call("f")));
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_missing_main() {
        let p = Program::new("nomain").with_function("f", compute(1));
        assert_eq!(p.validate(), Err(ProgenError::MissingMain));
    }

    #[test]
    fn validate_rejects_duplicates() {
        let p = Program::new("dup")
            .with_function("main", compute(1))
            .with_function("main", compute(2));
        assert_eq!(
            p.validate(),
            Err(ProgenError::DuplicateFunction("main".into()))
        );
    }

    #[test]
    fn validate_rejects_undefined_callee() {
        let p = Program::new("undef").with_function("main", call("ghost"));
        assert_eq!(
            p.validate(),
            Err(ProgenError::UndefinedFunction("ghost".into()))
        );
    }

    #[test]
    fn validate_rejects_recursion() {
        let p = Program::new("rec")
            .with_function("main", call("a"))
            .with_function("a", call("b"))
            .with_function("b", call("a"));
        assert!(matches!(p.validate(), Err(ProgenError::RecursiveCall(_))));
    }

    #[test]
    fn validate_rejects_self_recursion() {
        let p = Program::new("self")
            .with_function("main", call("a"))
            .with_function("a", call("a"));
        assert_eq!(p.validate(), Err(ProgenError::RecursiveCall("a".into())));
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        let p = Program::new("zero").with_function("main", loop_(0, compute(1)));
        assert_eq!(p.validate(), Err(ProgenError::ZeroLoopBound));
        let p = Program::new("huge").with_function("main", loop_(40_000, compute(1)));
        assert_eq!(p.validate(), Err(ProgenError::LoopBoundTooLarge(40_000)));
    }

    #[test]
    fn validate_rejects_deep_nesting() {
        let mut body = compute(1);
        for _ in 0..9 {
            body = loop_(2, body);
        }
        let p = Program::new("deep").with_function("main", body);
        assert_eq!(p.validate(), Err(ProgenError::LoopTooDeep(9)));
    }

    #[test]
    fn loop_depth_and_callees() {
        let s = seq([
            loop_(3, loop_(4, compute(1))),
            if_else(call("x"), seq([call("y"), call("x")])),
        ]);
        assert_eq!(s.loop_depth(), 2);
        assert_eq!(s.callees(), vec!["x", "y", "x"]);
    }
}
