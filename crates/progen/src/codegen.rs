//! MIPS code generation for structured programs.
//!
//! See [`crate::codegen_doc`] for the register discipline. The generator
//! produces, per program: the binary image, per-function extents, loop-bound
//! annotations keyed by loop header address, and per-function structure
//! trees.

use std::collections::HashMap;
use std::mem;

use pwcet_mips::{Assembler, BinaryImage, Instruction, Reg};

use crate::ast::{Program, Stmt};
use crate::error::ProgenError;
use crate::tree::StructureNode;

/// Maximum supported loop nesting depth per function (one `$sN` counter
/// register per level).
pub const MAX_LOOP_DEPTH: usize = 8;

/// Counter registers by nesting depth.
const LOOP_REGS: [Reg; MAX_LOOP_DEPTH] = [
    Reg::S0,
    Reg::S1,
    Reg::S2,
    Reg::S3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
    Reg::S7,
];

/// A loop-bound annotation: the analysis-facing contract that the basic
/// block starting at `header` executes at most `bound` times per loop
/// entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopBound {
    /// Address of the loop header (back-edge target).
    pub header: u32,
    /// Maximum body executions per entry of the loop.
    pub bound: u32,
}

/// Extent of one compiled function in the image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionInfo {
    name: String,
    entry: u32,
    end: u32,
}

impl FunctionInfo {
    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Address of the first instruction.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// One past the address of the last instruction.
    pub fn end(&self) -> u32 {
        self.end
    }

    /// `true` if `addr` belongs to this function.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.entry && addr < self.end
    }
}

/// The compiled artifact: machine code plus the metadata consumed by the
/// analyses.
///
/// # Example
///
/// ```
/// use pwcet_progen::{stmt, Program};
///
/// # fn main() -> Result<(), pwcet_progen::ProgenError> {
/// let compiled = Program::new("p")
///     .with_function("main", stmt::loop_(5, stmt::compute(2)))
///     .compile(0x0040_0000)?;
/// let main = compiled.function("main").expect("main exists");
/// assert_eq!(main.entry(), 0x0040_0000);
/// assert!(compiled.tree("main").is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    name: String,
    image: BinaryImage,
    functions: Vec<FunctionInfo>,
    loop_bounds: Vec<LoopBound>,
    trees: HashMap<String, StructureNode>,
}

impl CompiledProgram {
    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The machine code image.
    pub fn image(&self) -> &BinaryImage {
        &self.image
    }

    /// The program entry point (`main`'s first instruction).
    pub fn entry(&self) -> u32 {
        self.image.base()
    }

    /// Function extents, `main` first.
    pub fn functions(&self) -> &[FunctionInfo] {
        &self.functions
    }

    /// Looks up a function extent by name.
    pub fn function(&self, name: &str) -> Option<&FunctionInfo> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// The function containing `addr`, if any.
    pub fn function_at(&self, addr: u32) -> Option<&FunctionInfo> {
        self.functions.iter().find(|f| f.contains(addr))
    }

    /// All loop-bound annotations.
    pub fn loop_bounds(&self) -> &[LoopBound] {
        &self.loop_bounds
    }

    /// The bound of the loop with the given header address.
    pub fn loop_bound_at(&self, header: u32) -> Option<u32> {
        self.loop_bounds
            .iter()
            .find(|lb| lb.header == header)
            .map(|lb| lb.bound)
    }

    /// The structure tree of a function.
    pub fn tree(&self, name: &str) -> Option<&StructureNode> {
        self.trees.get(name)
    }

    /// All structure trees, keyed by function name.
    pub fn trees(&self) -> &HashMap<String, StructureNode> {
        &self.trees
    }

    /// Upper bound on instruction fetches of a whole program run (tree
    /// evaluation with unit fetch cost; used as a cheap sanity oracle).
    pub fn max_fetches(&self) -> u64 {
        self.trees
            .get("main")
            .map_or(0, |t| t.max_fetches(&self.trees))
    }
}

/// Compiles a validated program. Called by [`Program::compile`].
pub(crate) fn compile(program: &Program, base: u32) -> Result<CompiledProgram, ProgenError> {
    let mut asm = Assembler::new(base);
    let mut bounds = Vec::new();
    let mut trees = HashMap::new();
    let mut functions = Vec::new();
    let mut label_counter = 0u32;

    // `main` first (entry at image base), then remaining functions in
    // declaration order.
    let mut order: Vec<&str> = vec!["main"];
    order.extend(
        program
            .functions()
            .iter()
            .map(|f| f.name())
            .filter(|&n| n != "main"),
    );

    for name in order {
        let function = program.function(name).expect("validated: function exists");
        let entry = asm.here();
        asm.label(fn_label(name));
        let is_main = name == "main";

        let mut emitter = FnEmitter {
            asm: &mut asm,
            bounds: &mut bounds,
            label_counter: &mut label_counter,
            nodes: Vec::new(),
            run: Vec::new(),
        };

        let saved_regs = function.body().loop_depth();
        if is_main {
            // Stack + direction-toggle initialization.
            emitter.instr(Instruction::Lui {
                rt: Reg::SP,
                imm: 0x7fff,
            });
            emitter.instr(Instruction::Ori {
                rt: Reg::SP,
                rs: Reg::SP,
                imm: 0xf000,
            });
            emitter.instr(Instruction::Addiu {
                rt: Reg::T9,
                rs: Reg::ZERO,
                imm: 0,
            });
        } else {
            let frame = 4 * (1 + saved_regs as i16);
            emitter.instr(Instruction::Addiu {
                rt: Reg::SP,
                rs: Reg::SP,
                imm: -frame,
            });
            emitter.instr(Instruction::Sw {
                rt: Reg::RA,
                base: Reg::SP,
                offset: 0,
            });
            for (i, &reg) in LOOP_REGS[..saved_regs].iter().enumerate() {
                emitter.instr(Instruction::Sw {
                    rt: reg,
                    base: Reg::SP,
                    offset: 4 * (i as i16 + 1),
                });
            }
        }

        emitter.emit(function.body(), 0);

        if is_main {
            emitter.instr(Instruction::Break { code: 0 });
        } else {
            emitter.instr(Instruction::Lw {
                rt: Reg::RA,
                base: Reg::SP,
                offset: 0,
            });
            for (i, &reg) in LOOP_REGS[..saved_regs].iter().enumerate() {
                emitter.instr(Instruction::Lw {
                    rt: reg,
                    base: Reg::SP,
                    offset: 4 * (i as i16 + 1),
                });
            }
            let frame = 4 * (1 + saved_regs as i16);
            emitter.instr(Instruction::Addiu {
                rt: Reg::SP,
                rs: Reg::SP,
                imm: frame,
            });
            emitter.instr(Instruction::Jr { rs: Reg::RA });
        }
        emitter.flush();
        let nodes = mem::take(&mut emitter.nodes);
        trees.insert(name.to_string(), StructureNode::Seq(nodes));

        functions.push(FunctionInfo {
            name: name.to_string(),
            entry,
            end: asm.here(),
        });
    }

    let image = asm.assemble()?;
    Ok(CompiledProgram {
        name: program.name().to_string(),
        image,
        functions,
        loop_bounds: bounds,
        trees,
    })
}

fn fn_label(name: &str) -> String {
    format!("fn_{name}")
}

struct FnEmitter<'a> {
    asm: &'a mut Assembler,
    bounds: &'a mut Vec<LoopBound>,
    label_counter: &'a mut u32,
    nodes: Vec<StructureNode>,
    run: Vec<u32>,
}

impl FnEmitter<'_> {
    fn fresh(&mut self, kind: &str) -> String {
        *self.label_counter += 1;
        format!(".{kind}_{}", self.label_counter)
    }

    /// Emits a resolved instruction, recording its address in the current
    /// straight-line run.
    fn instr(&mut self, inst: Instruction) {
        self.run.push(self.asm.here());
        self.asm.push(inst);
    }

    /// Ends the current straight-line run, if any.
    fn flush(&mut self) {
        if !self.run.is_empty() {
            self.nodes
                .push(StructureNode::Straight(mem::take(&mut self.run)));
        }
    }

    fn emit(&mut self, stmt: &Stmt, depth: usize) {
        match stmt {
            Stmt::Compute(count) => {
                for k in 0..*count {
                    self.instr(compute_instruction(k));
                }
            }
            Stmt::Seq(items) => {
                for item in items {
                    self.emit(item, depth);
                }
            }
            Stmt::Loop { bound, body } => {
                let reg = LOOP_REGS[depth];
                // Counter init belongs to the code *before* the loop.
                self.instr(Instruction::Addiu {
                    rt: reg,
                    rs: Reg::ZERO,
                    imm: *bound as i16,
                });
                self.flush();

                let label = self.fresh("loop");
                let header = self.asm.here();
                self.asm.label(label.clone());
                self.bounds.push(LoopBound {
                    header,
                    bound: *bound,
                });

                let saved = mem::take(&mut self.nodes);
                self.emit(body, depth + 1);
                self.instr(Instruction::Addiu {
                    rt: reg,
                    rs: reg,
                    imm: -1,
                });
                self.run.push(self.asm.here());
                self.asm.bne(reg, Reg::ZERO, label);
                self.flush();
                let body_nodes = mem::replace(&mut self.nodes, saved);
                self.nodes.push(StructureNode::Loop {
                    header,
                    bound: *bound,
                    body: Box::new(StructureNode::Seq(body_nodes)),
                });
            }
            Stmt::IfElse {
                then_branch,
                else_branch,
            } => {
                // Toggle the direction register and branch on it; both the
                // toggle and the branch belong to the preceding straight
                // run (they execute unconditionally).
                self.instr(Instruction::Xori {
                    rt: Reg::T9,
                    rs: Reg::T9,
                    imm: 1,
                });
                let else_label = self.fresh("else");
                let end_label = self.fresh("endif");
                self.run.push(self.asm.here());
                self.asm.beq(Reg::T9, Reg::ZERO, else_label.clone());
                self.flush();

                let saved = mem::take(&mut self.nodes);
                self.emit(then_branch, depth);
                self.run.push(self.asm.here());
                self.asm.j(end_label.clone());
                self.flush();
                let then_nodes = mem::take(&mut self.nodes);

                self.asm.label(else_label);
                self.emit(else_branch, depth);
                self.flush();
                let else_nodes = mem::replace(&mut self.nodes, saved);
                self.asm.label(end_label);

                self.nodes.push(StructureNode::IfElse {
                    then_branch: Box::new(StructureNode::Seq(then_nodes)),
                    else_branch: Box::new(StructureNode::Seq(else_nodes)),
                });
            }
            Stmt::Call(name) => {
                self.flush();
                let site = self.asm.here();
                self.asm.jal(fn_label(name));
                self.nodes.push(StructureNode::Call {
                    site,
                    callee: name.clone(),
                });
            }
        }
    }
}

/// The `k`-th straight-line filler instruction: a deterministic mix of ALU
/// operations over `$t0..$t3` with no memory traffic and no control flow.
fn compute_instruction(k: u32) -> Instruction {
    match k % 4 {
        0 => Instruction::Addu {
            rd: Reg::T0,
            rs: Reg::T0,
            rt: Reg::T1,
        },
        1 => Instruction::Xor {
            rd: Reg::T1,
            rs: Reg::T1,
            rt: Reg::T2,
        },
        2 => Instruction::Addiu {
            rt: Reg::T2,
            rs: Reg::T2,
            imm: 1,
        },
        _ => Instruction::Sll {
            rd: Reg::T3,
            rt: Reg::T2,
            shamt: 1,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::stmt::*;

    const BASE: u32 = 0x0040_0000;

    fn compile(p: &Program) -> CompiledProgram {
        p.compile(BASE).expect("program compiles")
    }

    #[test]
    fn straight_line_program_layout() {
        let c = compile(&Program::new("s").with_function("main", compute(5)));
        // 3 prologue + 5 compute + 1 break.
        assert_eq!(c.image().len_words(), 9);
        assert_eq!(c.entry(), BASE);
        let main = c.function("main").unwrap();
        assert_eq!(main.entry(), BASE);
        assert_eq!(main.end(), BASE + 9 * 4);
        assert!(c.loop_bounds().is_empty());
    }

    #[test]
    fn loop_emits_bound_annotation_at_header() {
        let c = compile(&Program::new("l").with_function("main", loop_(7, compute(2))));
        assert_eq!(c.loop_bounds().len(), 1);
        let lb = c.loop_bounds()[0];
        assert_eq!(lb.bound, 7);
        // Header = prologue (3) + init (1) instructions after base.
        assert_eq!(lb.header, BASE + 4 * 4);
        assert_eq!(c.loop_bound_at(lb.header), Some(7));
        // The back branch targets the header.
        let image = c.image();
        let bne_addr = lb.header + 3 * 4; // 2 compute + 1 decrement
        let bne = image.decode_at(bne_addr).unwrap();
        assert_eq!(bne.static_target(bne_addr), Some(lb.header));
    }

    #[test]
    fn nested_loops_use_distinct_counters() {
        let c = compile(&Program::new("n").with_function("main", loop_(3, loop_(4, compute(1)))));
        assert_eq!(c.loop_bounds().len(), 2);
        let listing = c.image().disassemble();
        assert!(listing.contains("addiu $s0, $zero, 3"));
        assert!(listing.contains("addiu $s1, $zero, 4"));
    }

    #[test]
    fn call_saves_and_restores() {
        let p = Program::new("c")
            .with_function("main", call("leaf"))
            .with_function("leaf", loop_(2, compute(1)));
        let c = compile(&p);
        let listing = c.image().disassemble();
        assert!(listing.contains("jal"));
        assert!(listing.contains("sw $ra, 0($sp)"));
        assert!(listing.contains("sw $s0, 4($sp)"));
        assert!(listing.contains("jr $ra"));
        let leaf = c.function("leaf").unwrap();
        // jal targets the leaf entry.
        let main_tree = c.tree("main").unwrap();
        let sites: Vec<u32> = main_tree
            .own_addresses()
            .into_iter()
            .filter(|&a| {
                matches!(
                    c.image().decode_at(a),
                    Ok(pwcet_mips::Instruction::Jal { .. })
                )
            })
            .collect();
        assert_eq!(sites.len(), 1);
        let jal = c.image().decode_at(sites[0]).unwrap();
        assert_eq!(jal.static_target(sites[0]), Some(leaf.entry()));
    }

    #[test]
    fn if_else_branch_targets() {
        let c = compile(&Program::new("b").with_function("main", if_else(compute(2), compute(3))));
        let listing = c.image().disassemble();
        assert!(listing.contains("xori $t9, $t9, 0x1"));
        assert!(listing.contains("beq $t9, $zero"));
        // then: 2 compute + 1 j; else: 3 compute.
        // prologue(3) + xori + beq + 2 + j + 3 + break = 12.
        assert_eq!(c.image().len_words(), 12);
    }

    #[test]
    fn tree_covers_every_instruction_exactly_once() {
        let p = Program::new("cover")
            .with_function(
                "main",
                seq([
                    compute(2),
                    loop_(3, if_else(compute(1), seq([compute(2), call("f")]))),
                    compute(1),
                ]),
            )
            .with_function("f", compute(4));
        let c = compile(&p);
        let mut covered: Vec<u32> = Vec::new();
        for f in c.functions() {
            let tree = c.tree(f.name()).unwrap();
            covered.extend(tree.own_addresses());
        }
        covered.sort_unstable();
        let expected: Vec<u32> = (0..c.image().len_words() as u32)
            .map(|i| BASE + i * 4)
            .collect();
        assert_eq!(
            covered, expected,
            "each instruction in exactly one tree leaf"
        );
    }

    #[test]
    fn max_fetches_counts_loop_iterations() {
        let c = compile(&Program::new("m").with_function("main", loop_(10, compute(2))));
        // prologue 3 + init 1 + 10*(2 compute + decrement + bne) + break 1.
        assert_eq!(c.max_fetches(), 3 + 1 + 10 * 4 + 1);
    }

    #[test]
    fn function_extents_partition_image() {
        let p = Program::new("parts")
            .with_function("main", seq([call("a"), call("b")]))
            .with_function("a", compute(3))
            .with_function("b", compute(5));
        let c = compile(&p);
        let mut cursor = BASE;
        for f in c.functions() {
            assert_eq!(f.entry(), cursor, "functions are contiguous");
            cursor = f.end();
        }
        assert_eq!(cursor, c.image().end());
        assert_eq!(c.function_at(BASE).unwrap().name(), "main");
    }
}
