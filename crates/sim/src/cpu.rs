//! A functional simulator for the MIPS subset.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use pwcet_mips::{BinaryImage, Instruction, MipsError, Reg};
use pwcet_progen::CompiledProgram;

use crate::trace::FetchTrace;

/// Errors raised during simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Instruction fetch or decode failed.
    Fetch(MipsError),
    /// A load or store used a non-word-aligned address.
    MisalignedAccess(u32),
    /// The step limit was exceeded (runaway program).
    StepLimit(u64),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Fetch(e) => write!(f, "fetch failed: {e}"),
            SimError::MisalignedAccess(a) => {
                write!(f, "misaligned data access at {a:#010x}")
            }
            SimError::StepLimit(n) => write!(f, "program exceeded {n} steps"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Fetch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MipsError> for SimError {
    fn from(e: MipsError) -> Self {
        SimError::Fetch(e)
    }
}

/// Architectural state of one simulated core.
///
/// Registers are initialized to zero (register 0 is hard-wired); data
/// memory is a sparse word-addressed store defaulting to zero.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    image: &'a BinaryImage,
    regs: [u32; 32],
    pc: u32,
    memory: HashMap<u32, u32>,
    halted: bool,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator starting at `entry`.
    pub fn new(image: &'a BinaryImage, entry: u32) -> Self {
        Self {
            image,
            regs: [0; 32],
            pc: entry,
            memory: HashMap::new(),
            halted: false,
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// `true` once a `break` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    /// Writes a register (writes to `$zero` are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r.index() != 0 {
            self.regs[r.index() as usize] = value;
        }
    }

    /// Reads a data-memory word (unwritten memory reads as zero).
    pub fn load_word(&self, addr: u32) -> Result<u32, SimError> {
        if !addr.is_multiple_of(4) {
            return Err(SimError::MisalignedAccess(addr));
        }
        Ok(self.memory.get(&addr).copied().unwrap_or(0))
    }

    /// Writes a data-memory word.
    pub fn store_word(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        if !addr.is_multiple_of(4) {
            return Err(SimError::MisalignedAccess(addr));
        }
        self.memory.insert(addr, value);
        Ok(())
    }

    /// Executes one instruction; returns the address fetched.
    ///
    /// # Errors
    ///
    /// Fetch/decode and alignment errors; calling after halt is an error
    /// of the caller (`debug_assert`ed).
    pub fn step(&mut self) -> Result<u32, SimError> {
        debug_assert!(!self.halted, "step after halt");
        let fetch_pc = self.pc;
        let inst = self.image.decode_at(fetch_pc)?;
        let mut next_pc = fetch_pc.wrapping_add(4);
        use Instruction::*;
        match inst {
            Addu { rd, rs, rt } => self.set_reg(rd, self.reg(rs).wrapping_add(self.reg(rt))),
            Subu { rd, rs, rt } => self.set_reg(rd, self.reg(rs).wrapping_sub(self.reg(rt))),
            And { rd, rs, rt } => self.set_reg(rd, self.reg(rs) & self.reg(rt)),
            Or { rd, rs, rt } => self.set_reg(rd, self.reg(rs) | self.reg(rt)),
            Xor { rd, rs, rt } => self.set_reg(rd, self.reg(rs) ^ self.reg(rt)),
            Nor { rd, rs, rt } => self.set_reg(rd, !(self.reg(rs) | self.reg(rt))),
            Slt { rd, rs, rt } => {
                self.set_reg(rd, u32::from((self.reg(rs) as i32) < (self.reg(rt) as i32)))
            }
            Sltu { rd, rs, rt } => self.set_reg(rd, u32::from(self.reg(rs) < self.reg(rt))),
            Sll { rd, rt, shamt } => self.set_reg(rd, self.reg(rt) << shamt),
            Srl { rd, rt, shamt } => self.set_reg(rd, self.reg(rt) >> shamt),
            Sra { rd, rt, shamt } => self.set_reg(rd, ((self.reg(rt) as i32) >> shamt) as u32),
            Jr { rs } => next_pc = self.reg(rs),
            Break { .. } => self.halted = true,
            Addiu { rt, rs, imm } => self.set_reg(rt, self.reg(rs).wrapping_add(imm as i32 as u32)),
            Slti { rt, rs, imm } => {
                self.set_reg(rt, u32::from((self.reg(rs) as i32) < i32::from(imm)))
            }
            Sltiu { rt, rs, imm } => {
                self.set_reg(rt, u32::from(self.reg(rs) < (imm as i32 as u32)))
            }
            Andi { rt, rs, imm } => self.set_reg(rt, self.reg(rs) & u32::from(imm)),
            Ori { rt, rs, imm } => self.set_reg(rt, self.reg(rs) | u32::from(imm)),
            Xori { rt, rs, imm } => self.set_reg(rt, self.reg(rs) ^ u32::from(imm)),
            Lui { rt, imm } => self.set_reg(rt, u32::from(imm) << 16),
            Lw { rt, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                let value = self.load_word(addr)?;
                self.set_reg(rt, value);
            }
            Sw { rt, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                self.store_word(addr, self.reg(rt))?;
            }
            Beq { rs, rt, .. } => {
                if self.reg(rs) == self.reg(rt) {
                    next_pc = inst.static_target(fetch_pc).expect("branch target");
                }
            }
            Bne { rs, rt, .. } => {
                if self.reg(rs) != self.reg(rt) {
                    next_pc = inst.static_target(fetch_pc).expect("branch target");
                }
            }
            Blez { rs, .. } => {
                if (self.reg(rs) as i32) <= 0 {
                    next_pc = inst.static_target(fetch_pc).expect("branch target");
                }
            }
            Bgtz { rs, .. } => {
                if (self.reg(rs) as i32) > 0 {
                    next_pc = inst.static_target(fetch_pc).expect("branch target");
                }
            }
            J { .. } => next_pc = inst.static_target(fetch_pc).expect("jump target"),
            Jal { .. } => {
                self.set_reg(Reg::RA, fetch_pc.wrapping_add(4));
                next_pc = inst.static_target(fetch_pc).expect("jump target");
            }
        }
        self.pc = next_pc;
        Ok(fetch_pc)
    }

    /// Runs until `break` or `max_steps`, recording every fetch.
    ///
    /// # Errors
    ///
    /// [`SimError::StepLimit`] if the program does not halt in time, plus
    /// any per-step error.
    pub fn run(&mut self, max_steps: u64) -> Result<FetchTrace, SimError> {
        let mut fetches = Vec::new();
        for _ in 0..max_steps {
            fetches.push(self.step()?);
            if self.halted {
                return Ok(FetchTrace::new(fetches));
            }
        }
        Err(SimError::StepLimit(max_steps))
    }
}

/// Executes a compiled program from its entry point to `break`.
///
/// # Errors
///
/// See [`Simulator::run`].
pub fn simulate(compiled: &CompiledProgram, max_steps: u64) -> Result<FetchTrace, SimError> {
    Simulator::new(compiled.image(), compiled.entry()).run(max_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwcet_progen::{stmt, Program};

    fn run(program: Program) -> FetchTrace {
        let compiled = program.compile(0x0040_0000).expect("compiles");
        simulate(&compiled, 10_000_000).expect("halts")
    }

    #[test]
    fn straight_line_fetch_count() {
        let trace = run(Program::new("s").with_function("main", stmt::compute(5)));
        assert_eq!(trace.len(), 9); // 3 prologue + 5 + break
    }

    #[test]
    fn loop_iterates_exactly_bound_times() {
        let trace = run(Program::new("l").with_function("main", stmt::loop_(7, stmt::compute(2))));
        // 3 prologue + 1 init + 7 × (2 + decrement + bne) + 1 break.
        assert_eq!(trace.len(), 3 + 1 + 7 * 4 + 1);
    }

    #[test]
    fn nested_loops_multiply_iterations() {
        let trace = run(Program::new("n")
            .with_function("main", stmt::loop_(3, stmt::loop_(4, stmt::compute(1)))));
        // Inner body per outer iteration: init(1) + 4 × 3 + — see codegen.
        // Just assert against the structural bound, which is exact here.
        let compiled = Program::new("n")
            .with_function("main", stmt::loop_(3, stmt::loop_(4, stmt::compute(1))))
            .compile(0x0040_0000)
            .unwrap();
        assert_eq!(trace.len() as u64, compiled.max_fetches());
    }

    #[test]
    fn if_else_alternates_sides() {
        // Two successive branches: the toggle makes them take different
        // sides, so the fetch count is then-side + else-side + glue.
        let program = Program::new("alt").with_function(
            "main",
            stmt::loop_(2, stmt::if_else(stmt::compute(10), stmt::compute(2))),
        );
        let compiled = program.compile(0x0040_0000).unwrap();
        let trace = simulate(&compiled, 100_000).unwrap();
        // One iteration takes then (10 + j = 11), the other else (2):
        // strictly between always-then and always-else.
        let always_else = compiled.max_fetches() - 2 * (10 + 1) + 2 * 2;
        let always_then = compiled.max_fetches();
        assert!(trace.len() as u64 > always_else);
        assert!((trace.len() as u64) < always_then);
    }

    #[test]
    fn calls_return_correctly() {
        let trace = run(Program::new("c")
            .with_function("main", stmt::seq([stmt::call("f"), stmt::call("f")]))
            .with_function("f", stmt::compute(3)));
        let compiled = Program::new("c")
            .with_function("main", stmt::seq([stmt::call("f"), stmt::call("f")]))
            .with_function("f", stmt::compute(3))
            .compile(0x0040_0000)
            .unwrap();
        assert_eq!(trace.len() as u64, compiled.max_fetches());
    }

    #[test]
    fn calls_inside_loops_restore_counters() {
        // The callee itself loops: its $s0 usage must not corrupt the
        // caller's loop counter (saved/restored via the stack).
        let program = Program::new("save")
            .with_function("main", stmt::loop_(5, stmt::call("g")))
            .with_function("g", stmt::loop_(3, stmt::compute(2)));
        let compiled = program.compile(0x0040_0000).unwrap();
        let trace = simulate(&compiled, 1_000_000).unwrap();
        assert_eq!(trace.len() as u64, compiled.max_fetches());
    }

    #[test]
    fn trace_is_within_image() {
        let program = Program::new("w").with_function("main", stmt::loop_(3, stmt::compute(4)));
        let compiled = program.compile(0x0040_0000).unwrap();
        let trace = simulate(&compiled, 100_000).unwrap();
        for &addr in trace.addrs() {
            assert!(compiled.image().contains(addr));
        }
    }

    #[test]
    fn step_limit_reported() {
        let compiled = Program::new("x")
            .with_function("main", stmt::compute(50))
            .compile(0x0040_0000)
            .unwrap();
        let result = simulate(&compiled, 10);
        assert_eq!(result, Err(SimError::StepLimit(10)));
    }

    #[test]
    fn register_zero_is_hardwired() {
        let image = pwcet_mips::BinaryImage::new(
            0,
            vec![
                pwcet_mips::Instruction::Addiu {
                    rt: Reg::ZERO,
                    rs: Reg::ZERO,
                    imm: 42,
                }
                .encode(),
                pwcet_mips::Instruction::Break { code: 0 }.encode(),
            ],
        );
        let mut sim = Simulator::new(&image, 0);
        sim.run(10).unwrap();
        assert_eq!(sim.reg(Reg::ZERO), 0);
    }

    #[test]
    fn memory_round_trips() {
        let image = pwcet_mips::BinaryImage::new(
            0,
            vec![
                pwcet_mips::Instruction::Addiu {
                    rt: Reg::T0,
                    rs: Reg::ZERO,
                    imm: 1234,
                }
                .encode(),
                pwcet_mips::Instruction::Lui {
                    rt: Reg::SP,
                    imm: 0x7fff,
                }
                .encode(),
                pwcet_mips::Instruction::Sw {
                    rt: Reg::T0,
                    base: Reg::SP,
                    offset: -8,
                }
                .encode(),
                pwcet_mips::Instruction::Lw {
                    rt: Reg::T1,
                    base: Reg::SP,
                    offset: -8,
                }
                .encode(),
                pwcet_mips::Instruction::Break { code: 0 }.encode(),
            ],
        );
        let mut sim = Simulator::new(&image, 0);
        sim.run(10).unwrap();
        assert_eq!(sim.reg(Reg::T1), 1234);
    }
}
