//! Soundness validators: simulated executions against static bounds.

use pwcet_cache::FaultMap;
use pwcet_core::{ProgramAnalysis, Protection};

use crate::trace::{simulated_cycles, FetchTrace};

/// Result of validating one fault map against the analytic bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationOutcome {
    /// Simulated execution cycles for the map.
    pub simulated: u64,
    /// The analytic per-map bound `WCET_ff + Σ_s FMM[s][f_s] × penalty`.
    pub bound: u64,
}

impl ValidationOutcome {
    /// `true` when the static bound holds (the soundness contract).
    pub fn holds(&self) -> bool {
        self.simulated <= self.bound
    }
}

/// The analytic execution-time bound for one *concrete* fault map: the
/// fault-free WCET plus the fault-miss-map entries selected by the map's
/// per-set fault counts (the value whose distribution over random maps is
/// the paper's penalty distribution).
pub fn analytic_bound_for_map(
    analysis: &ProgramAnalysis,
    protection: Protection,
    faults: &FaultMap,
) -> u64 {
    let config = analysis.config();
    let ways = config.geometry.ways();
    let extra_misses: u64 = (0..config.geometry.sets())
        .map(|s| {
            let f = match protection {
                // The hardened way masks its own faults.
                Protection::ReliableWay => faults.faulty_unprotected_ways_in_set(s),
                _ => faults.faulty_ways_in_set(s),
            };
            match protection {
                Protection::SharedReliableBuffer if f == ways => {
                    analysis.srb_last_column()[s as usize]
                }
                _ => analysis.fmm().get(s, f),
            }
        })
        .sum();
    analysis.fault_free_wcet() + extra_misses * config.timing.miss_penalty_cycles()
}

/// Validates one trace against one fault map for one protection level.
pub fn validation(
    analysis: &ProgramAnalysis,
    protection: Protection,
    trace: &FetchTrace,
    faults: &FaultMap,
) -> ValidationOutcome {
    let config = analysis.config();
    let simulated = simulated_cycles(trace, protection, config.geometry, faults, &config.timing);
    ValidationOutcome {
        simulated,
        bound: analytic_bound_for_map(analysis, protection, faults),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::simulate;
    use pwcet_core::{AnalysisConfig, PwcetAnalyzer};
    use pwcet_progen::{stmt, Program};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn program() -> Program {
        Program::new("v").with_function(
            "main",
            stmt::seq([
                stmt::loop_(12, stmt::if_else(stmt::compute(30), stmt::compute(8))),
                stmt::loop_(5, stmt::compute(60)),
            ]),
        )
    }

    #[test]
    fn fault_free_simulation_within_wcet() {
        let analyzer = PwcetAnalyzer::new(AnalysisConfig::paper_default());
        let analysis = analyzer.analyze(&program()).unwrap();
        let compiled = program().compile(0x0040_0000).unwrap();
        let trace = simulate(&compiled, 10_000_000).unwrap();
        let faults = FaultMap::fault_free(&analysis.config().geometry);
        for protection in Protection::all() {
            let outcome = validation(&analysis, protection, &trace, &faults);
            assert!(
                outcome.holds(),
                "{protection}: simulated {} > bound {}",
                outcome.simulated,
                outcome.bound
            );
            // With no faults the bound is exactly the fault-free WCET.
            assert_eq!(outcome.bound, analysis.fault_free_wcet());
        }
    }

    #[test]
    fn random_fault_maps_within_bounds() {
        let analyzer = PwcetAnalyzer::new(AnalysisConfig::paper_default());
        let analysis = analyzer.analyze(&program()).unwrap();
        let compiled = program().compile(0x0040_0000).unwrap();
        let trace = simulate(&compiled, 10_000_000).unwrap();
        let geometry = analysis.config().geometry;
        let mut rng = StdRng::seed_from_u64(2024);
        // Exaggerated block-failure probabilities exercise multi-fault
        // sets that realistic pfail almost never samples.
        for pbf in [0.05, 0.3, 0.7, 1.0] {
            for _ in 0..40 {
                let faults = FaultMap::sample(&geometry, pbf, &mut rng);
                for protection in Protection::all() {
                    let outcome = validation(&analysis, protection, &trace, &faults);
                    assert!(
                        outcome.holds(),
                        "{protection} pbf={pbf}: simulated {} > bound {} (faults {:?})",
                        outcome.simulated,
                        outcome.bound,
                        faults.per_set_counts()
                    );
                }
            }
        }
    }

    #[test]
    fn all_faulty_map_bound_matches_last_columns() {
        let analyzer = PwcetAnalyzer::new(AnalysisConfig::paper_default());
        let analysis = analyzer.analyze(&program()).unwrap();
        let geometry = analysis.config().geometry;
        let all_faulty = FaultMap::sample(&geometry, 1.0, &mut StdRng::seed_from_u64(0));
        let ways = geometry.ways();
        // Unprotected: sum of column W.
        let unp = analytic_bound_for_map(&analysis, Protection::None, &all_faulty);
        let expect: u64 = (0..geometry.sets())
            .map(|s| analysis.fmm().get(s, ways))
            .sum::<u64>()
            * 100
            + analysis.fault_free_wcet();
        assert_eq!(unp, expect);
        // RW: every set keeps the hardened way → column W−1.
        let rw = analytic_bound_for_map(&analysis, Protection::ReliableWay, &all_faulty);
        let expect_rw: u64 = (0..geometry.sets())
            .map(|s| analysis.fmm().get(s, ways - 1))
            .sum::<u64>()
            * 100
            + analysis.fault_free_wcet();
        assert_eq!(rw, expect_rw);
        // SRB: the recomputed column.
        let srb = analytic_bound_for_map(&analysis, Protection::SharedReliableBuffer, &all_faulty);
        let expect_srb: u64 =
            analysis.srb_last_column().iter().sum::<u64>() * 100 + analysis.fault_free_wcet();
        assert_eq!(srb, expect_srb);
    }
}
