//! Execution-based validation of the static pWCET bounds.
//!
//! The paper's claims are *analytic*; this crate provides the empirical
//! check the reproduction needs:
//!
//! 1. a functional [`Simulator`] for the MIPS subset, producing the
//!    instruction [`FetchTrace`] of a real program run;
//! 2. [`replay`] of traces through the concrete cache machines of
//!    `pwcet-cache` (unprotected / RW / SRB) under arbitrary
//!    [`FaultMap`](pwcet_cache::FaultMap)s;
//! 3. [`validation`] helpers asserting the soundness contract: for every
//!    sampled fault map, simulated execution time never exceeds
//!    `WCET_ff + penalty_bound(map)`, and the empirical exceedance curve
//!    stays below the analytic one ([`monte_carlo`]).
//!
//! # Example
//!
//! ```
//! use pwcet_progen::{stmt, Program};
//! use pwcet_sim::{simulate, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let compiled = Program::new("p")
//!     .with_function("main", stmt::loop_(5, stmt::compute(3)))
//!     .compile(0x0040_0000)?;
//! let trace = simulate(&compiled, 100_000)?;
//! // 3 prologue + init + 5 × (3 compute + decrement + bne) + break.
//! assert_eq!(trace.len(), 30);
//! # Ok(())
//! # }
//! ```

mod cpu;
mod monte_carlo;
mod trace;
mod validation;

pub use cpu::{simulate, SimError, Simulator};
pub use monte_carlo::{monte_carlo, MonteCarloConfig, MonteCarloReport};
pub use trace::{machine_for, replay, simulated_cycles, FetchTrace};
pub use validation::{analytic_bound_for_map, validation, ValidationOutcome};
