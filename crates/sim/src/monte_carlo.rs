//! Monte-Carlo comparison of empirical and analytic exceedance.
//!
//! The analytic penalty distribution is exact over the binomial fault
//! model, but its per-map values are ILP *bounds*. Sampling fault maps,
//! simulating, and comparing the resulting empirical exceedance curve with
//! the analytic curve provides the EVT-style empirical cross-check for the
//! reproduction: the analytic curve must dominate the empirical one
//! (within sampling noise).

use rand::rngs::StdRng;
use rand::SeedableRng;

use pwcet_cache::FaultMap;
use pwcet_core::{ProgramAnalysis, Protection, PwcetEstimate};

use crate::trace::{simulated_cycles, FetchTrace};

/// Parameters of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarloConfig {
    /// Number of fault maps to sample.
    pub samples: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        Self {
            samples: 1000,
            seed: 0xDA7E_2016,
        }
    }
}

/// The sampled execution times and the analytic estimate they validate.
#[derive(Debug, Clone)]
pub struct MonteCarloReport {
    protection: Protection,
    samples: Vec<u64>,
    estimate: PwcetEstimate,
}

impl MonteCarloReport {
    /// The protection level sampled.
    pub fn protection(&self) -> Protection {
        self.protection
    }

    /// The simulated execution times, one per sampled fault map.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// The analytic estimate for the same configuration.
    pub fn estimate(&self) -> &PwcetEstimate {
        &self.estimate
    }

    /// Empirical `P(time > value)` over the samples.
    pub fn empirical_exceedance(&self, value: u64) -> f64 {
        let above = self.samples.iter().filter(|&&t| t > value).count();
        above as f64 / self.samples.len() as f64
    }

    /// `true` when the analytic exceedance dominates the empirical one at
    /// `value`, allowing `tolerance` of sampling noise.
    pub fn analytic_dominates_at(&self, value: u64, tolerance: f64) -> bool {
        self.estimate.exceedance_of(value) + tolerance >= self.empirical_exceedance(value)
    }

    /// The largest simulated time (never exceeds the analytic pWCET at
    /// probability 0 … i.e. the distribution maximum).
    pub fn max_sample(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }
}

/// Samples fault maps, simulates the trace on the corresponding machine,
/// and pairs the outcomes with the analytic estimate.
pub fn monte_carlo(
    analysis: &ProgramAnalysis,
    protection: Protection,
    trace: &FetchTrace,
    config: &MonteCarloConfig,
) -> MonteCarloReport {
    let analysis_config = analysis.config();
    let geometry = analysis_config.geometry;
    let pbf = analysis_config
        .fault_model
        .block_failure_probability(geometry.block_bits());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let samples = (0..config.samples)
        .map(|_| {
            let faults = FaultMap::sample(&geometry, pbf, &mut rng);
            simulated_cycles(
                trace,
                protection,
                geometry,
                &faults,
                &analysis_config.timing,
            )
        })
        .collect();
    MonteCarloReport {
        protection,
        samples,
        estimate: analysis.estimate(protection),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::simulate;
    use pwcet_core::{AnalysisConfig, PwcetAnalyzer};
    use pwcet_progen::{stmt, Program};

    fn setup() -> (ProgramAnalysis, FetchTrace) {
        let program = Program::new("mc").with_function(
            "main",
            stmt::loop_(
                20,
                stmt::seq([stmt::compute(40), stmt::loop_(4, stmt::compute(10))]),
            ),
        );
        // A high pfail makes faults common enough for a small sample
        // count to probe the distribution body.
        let config = AnalysisConfig::paper_default().with_pfail(1e-3).unwrap();
        let analysis = PwcetAnalyzer::new(config).analyze(&program).unwrap();
        let compiled = program.compile(0x0040_0000).unwrap();
        let trace = simulate(&compiled, 10_000_000).unwrap();
        (analysis, trace)
    }

    #[test]
    fn analytic_curve_dominates_empirical() {
        let (analysis, trace) = setup();
        for protection in Protection::all() {
            let report = monte_carlo(
                &analysis,
                protection,
                &trace,
                &MonteCarloConfig {
                    samples: 400,
                    seed: 7,
                },
            );
            // Check at a spread of values including the curve body.
            let wcet = analysis.fault_free_wcet();
            for value in [
                wcet,
                wcet + 100,
                wcet + 1_000,
                wcet + 10_000,
                report.max_sample(),
            ] {
                assert!(
                    report.analytic_dominates_at(value, 0.05),
                    "{protection}: empirical {} > analytic {} at {}",
                    report.empirical_exceedance(value),
                    report.estimate().exceedance_of(value),
                    value
                );
            }
        }
    }

    #[test]
    fn samples_never_exceed_per_map_bounds_aggregate() {
        let (analysis, trace) = setup();
        let report = monte_carlo(
            &analysis,
            Protection::None,
            &trace,
            &MonteCarloConfig {
                samples: 200,
                seed: 9,
            },
        );
        // The absolute worst analytic value: every set fully faulty.
        let geometry = analysis.config().geometry;
        let worst: u64 = (0..geometry.sets())
            .map(|s| analysis.fmm().get(s, geometry.ways()))
            .sum::<u64>()
            * analysis.config().timing.miss_penalty_cycles()
            + analysis.fault_free_wcet();
        assert!(report.max_sample() <= worst);
        assert_eq!(report.samples().len(), 200);
    }

    #[test]
    fn deterministic_given_seed() {
        let (analysis, trace) = setup();
        let config = MonteCarloConfig {
            samples: 50,
            seed: 11,
        };
        let a = monte_carlo(&analysis, Protection::ReliableWay, &trace, &config);
        let b = monte_carlo(&analysis, Protection::ReliableWay, &trace, &config);
        assert_eq!(a.samples(), b.samples());
    }
}
