//! Fetch traces and trace-driven cache replay.

use pwcet_cache::{
    AccessOutcome, CacheGeometry, CacheSim, CacheTiming, FaultMap, ReliableWayCache, SrbCache,
    UnprotectedCache,
};
use pwcet_core::Protection;

/// The sequence of instruction addresses fetched by one program run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchTrace {
    addrs: Vec<u32>,
}

impl FetchTrace {
    /// Wraps a fetch sequence.
    pub fn new(addrs: Vec<u32>) -> Self {
        Self { addrs }
    }

    /// The fetched addresses in order.
    pub fn addrs(&self) -> &[u32] {
        &self.addrs
    }

    /// Number of fetches (= executed instructions).
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// `true` for the empty trace.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

/// One of the three concrete machines, chosen by protection level.
#[derive(Debug, Clone)]
pub enum Machine {
    /// Unprotected faulty cache.
    Unprotected(UnprotectedCache),
    /// Reliable Way cache.
    ReliableWay(ReliableWayCache),
    /// Shared-Reliable-Buffer cache.
    Srb(SrbCache),
}

impl CacheSim for Machine {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        match self {
            Machine::Unprotected(c) => c.access(addr),
            Machine::ReliableWay(c) => c.access(addr),
            Machine::Srb(c) => c.access(addr),
        }
    }

    fn geometry(&self) -> &CacheGeometry {
        match self {
            Machine::Unprotected(c) => c.geometry(),
            Machine::ReliableWay(c) => c.geometry(),
            Machine::Srb(c) => c.geometry(),
        }
    }

    fn accesses(&self) -> u64 {
        match self {
            Machine::Unprotected(c) => c.accesses(),
            Machine::ReliableWay(c) => c.accesses(),
            Machine::Srb(c) => c.accesses(),
        }
    }

    fn misses(&self) -> u64 {
        match self {
            Machine::Unprotected(c) => c.misses(),
            Machine::ReliableWay(c) => c.misses(),
            Machine::Srb(c) => c.misses(),
        }
    }

    fn reset(&mut self) {
        match self {
            Machine::Unprotected(c) => c.reset(),
            Machine::ReliableWay(c) => c.reset(),
            Machine::Srb(c) => c.reset(),
        }
    }
}

/// Builds the concrete cache machine for a protection level and fault map.
pub fn machine_for(protection: Protection, geometry: CacheGeometry, faults: &FaultMap) -> Machine {
    match protection {
        Protection::None => Machine::Unprotected(UnprotectedCache::new(geometry, faults)),
        Protection::ReliableWay => Machine::ReliableWay(ReliableWayCache::new(geometry, faults)),
        Protection::SharedReliableBuffer => Machine::Srb(SrbCache::new(geometry, faults)),
    }
}

/// Replays a trace through a machine; returns the miss count.
pub fn replay<M: CacheSim>(trace: &FetchTrace, machine: &mut M) -> u64 {
    for &addr in trace.addrs() {
        machine.access(addr);
    }
    machine.misses()
}

/// Total cycles of one run: every fetch pays the hit latency, every miss
/// the additional memory penalty.
pub fn simulated_cycles(
    trace: &FetchTrace,
    protection: Protection,
    geometry: CacheGeometry,
    faults: &FaultMap,
    timing: &CacheTiming,
) -> u64 {
    let mut machine = machine_for(protection, geometry, faults);
    let misses = replay(trace, &mut machine);
    timing.total_cycles(trace.len() as u64, misses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> CacheGeometry {
        CacheGeometry::paper_default()
    }

    #[test]
    fn replay_counts_misses() {
        let trace = FetchTrace::new(vec![0, 4, 8, 12, 0, 4]);
        let faults = FaultMap::fault_free(&geometry());
        let mut machine = machine_for(Protection::None, geometry(), &faults);
        // One block (0..16): 1 cold miss, then hits.
        assert_eq!(replay(&trace, &mut machine), 1);
    }

    #[test]
    fn simulated_cycles_use_timing() {
        let trace = FetchTrace::new(vec![0, 4, 8, 12]);
        let faults = FaultMap::fault_free(&geometry());
        let cycles = simulated_cycles(
            &trace,
            Protection::None,
            geometry(),
            &faults,
            &CacheTiming::paper_default(),
        );
        assert_eq!(cycles, 4 + 100); // 4 fetches, 1 miss
    }

    #[test]
    fn machines_match_protection_semantics() {
        // Fully faulty set 0: SRB still serves intra-block runs; RW keeps
        // one way; unprotected always misses.
        let faults = FaultMap::from_faulty_blocks(&geometry(), (0..4).map(|w| (0, w)));
        let trace = FetchTrace::new(vec![0, 4, 0, 4]);
        let mut unp = machine_for(Protection::None, geometry(), &faults);
        let mut rw = machine_for(Protection::ReliableWay, geometry(), &faults);
        let mut srb = machine_for(Protection::SharedReliableBuffer, geometry(), &faults);
        assert_eq!(replay(&trace, &mut unp), 4);
        assert_eq!(replay(&trace, &mut rw), 1);
        assert_eq!(replay(&trace, &mut srb), 1);
    }

    #[test]
    fn trace_accessors() {
        let trace = FetchTrace::new(vec![4, 8]);
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        assert_eq!(trace.addrs(), &[4, 8]);
    }
}
