//! Property tests pinning the histogram against a sorted-vec oracle:
//! quantiles must bracket the true order statistic within one bucket,
//! and merging shards must equal recording into one histogram.

use proptest::collection::vec;
use proptest::prelude::*;

use pwcet_obs::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, NUM_BUCKETS};

/// The true order statistic the histogram's `quantile(q)` approximates:
/// the sample of rank `ceil(q * n)` (1-based) in sorted order.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn sample_strategy() -> impl Strategy<Value = Vec<u64>> {
    // Mix magnitudes: latencies live at every scale from sub-micro to
    // minutes; also exercise 0 and huge outliers.
    vec(
        prop_oneof![
            Just(0u64),
            1u64..32,
            32u64..4096,
            4096u64..5_000_000,
            5_000_000u64..u64::MAX / 2,
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantiles_bracket_the_oracle_within_one_bucket(samples in sample_strategy()) {
        let hist = Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        // Atomic adds wrap on overflow; mirror that in the oracle.
        prop_assert_eq!(snap.sum, samples.iter().fold(0u64, |a, &b| a.wrapping_add(b)));

        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let truth = oracle_quantile(&sorted, q);
            let est = snap.quantile(q);
            // Never underestimates, and overestimates by at most the
            // width of the bucket holding the true sample.
            let (_, hi) = bucket_bounds(bucket_index(truth));
            prop_assert!(est >= truth, "q={} est={} truth={}", q, est, truth);
            prop_assert!(est <= hi.min(snap.max), "q={} est={} bucket hi={}", q, est, hi);
        }
    }

    #[test]
    fn merging_shards_equals_one_histogram(a in sample_strategy(), b in sample_strategy()) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let whole = Histogram::new();
        for &v in &a {
            ha.record(v);
            whole.record(v);
        }
        for &v in &b {
            hb.record(v);
            whole.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn every_sample_lands_in_its_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi);
    }
}

#[test]
fn empty_histogram_is_all_zero() {
    let snap = Histogram::new().snapshot();
    assert_eq!(snap, HistogramSnapshot::default());
    assert_eq!(snap.quantile(0.5), 0);
    assert_eq!(snap.mean(), 0);
}
