//! Metrics registry: named atomic counters and gauges plus log-bucketed
//! latency histograms with lock-free recording and mergeable snapshots.
//!
//! The design goal is that adding an instrument never requires wire
//! surgery: the registry renders itself into a self-describing
//! name→value table ([`RegistrySnapshot::table`]) that the service
//! ships as `Vec<(String, u64)>`, so a new counter is one
//! `registry.counter("x")` call away from showing up in every scrape.
//!
//! # Histogram bucket scheme
//!
//! Values (microseconds throughout the workspace) land in log-linear
//! buckets: the first `2 * 2^SUB_BITS` values (0..=31) get an exact
//! bucket each; above that, every power-of-two octave is split into
//! `2^SUB_BITS` (= 16) linear sub-buckets, bounding the relative
//! bucket width — and hence the quantile error — at 1/16 ≈ 6.25%.
//! The whole u64 range fits in [`NUM_BUCKETS`] (= 976) buckets, so a
//! histogram is a fixed 8 KiB array of relaxed `AtomicU64`s: recording
//! is two `fetch_add`s and a `fetch_max`, no locks, no allocation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Linear sub-buckets per power-of-two octave, as a bit count.
pub const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` range.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize) * SUB as usize + SUB as usize;

/// The log-linear bucket index of `value`. Monotone in `value`,
/// surjective onto `0..NUM_BUCKETS`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < 2 * SUB {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros();
        let mantissa = ((value >> (exp - SUB_BITS)) - SUB) as usize;
        ((exp - SUB_BITS) as usize + 1) * SUB as usize + mantissa
    }
}

/// The inclusive `[lo, hi]` value range of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    debug_assert!(index < NUM_BUCKETS);
    if index < 2 * SUB as usize {
        (index as u64, index as u64)
    } else {
        let group = (index as u64 / SUB) - 1;
        let m = index as u64 % SUB;
        let lo = (SUB + m) << group;
        let width = 1u64 << group;
        (lo, lo + (width - 1))
    }
}

/// A monotonically increasing counter. Cloneable handle semantics come
/// from wrapping in `Arc` via the [`Registry`].
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` (relaxed; counters tolerate reordering).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depth, resident bytes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free log-bucketed histogram of `u64` samples.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free: two relaxed `fetch_add`s and one
    /// `fetch_max`.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy. Concurrent recording may tear the copy by
    /// at most the in-flight samples; every completed `record` before
    /// the call is included.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (mean = sum / count).
    pub sum: u64,
    /// Exact largest sample.
    pub max: u64,
    /// Dense per-bucket counts, `NUM_BUCKETS` long.
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            max: 0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Folds `other` into `self` (snapshots from different shards or
    /// nodes merge losslessly — bucket counts add).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        // The recording side is an atomic fetch_add, which wraps;
        // match it so shard merges equal one shared histogram.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// The quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the sample of rank `ceil(q * count)` (clamped to the
    /// recorded maximum), so the true sample is never underestimated
    /// and the overestimate is bounded by the bucket width (≤ 6.25%
    /// relative). Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// One named instrument's snapshot value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's last-set value.
    Gauge(u64),
    /// A histogram's full bucket state.
    Histogram(HistogramSnapshot),
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named set of instruments. Instrument creation takes a lock;
/// recording through the returned `Arc` handles never does — callers
/// are expected to look up handles once and cache them.
#[derive(Default)]
pub struct Registry {
    instruments: Mutex<BTreeMap<String, Instrument>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` already names an instrument of another kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::default())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` already names an instrument of another kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::default())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` already names an instrument of another kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::new())))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.instruments.lock().unwrap();
        let entries = map
            .iter()
            .map(|(name, inst)| {
                let value = match inst {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        RegistrySnapshot { entries }
    }
}

/// A mergeable point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Name → value, sorted by name.
    pub entries: BTreeMap<String, MetricValue>,
}

impl RegistrySnapshot {
    /// Folds `other` into `self`: counters and histogram buckets add,
    /// gauges take `other`'s (newer) value, names only in one side are
    /// kept as-is. Mismatched kinds under one name keep `self`'s.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, theirs) in &other.entries {
            match (self.entries.get_mut(name), theirs) {
                (None, v) => {
                    self.entries.insert(name.clone(), v.clone());
                }
                (Some(MetricValue::Counter(mine)), MetricValue::Counter(t)) => *mine += t,
                (Some(MetricValue::Gauge(mine)), MetricValue::Gauge(t)) => *mine = *t,
                (Some(MetricValue::Histogram(mine)), MetricValue::Histogram(t)) => mine.merge(t),
                _ => {}
            }
        }
    }

    /// Renders the snapshot as a flat, self-describing name→value
    /// table: counters and gauges one row each, histograms expanded to
    /// `{name}_count` / `{name}_sum` / `{name}_mean` / `{name}_p50` /
    /// `{name}_p95` / `{name}_p99` / `{name}_max` rows with quantiles
    /// computed exactly from the buckets. This is the wire shape of the
    /// `Metrics` verb — adding an instrument adds rows, never fields.
    pub fn table(&self) -> Vec<(String, u64)> {
        let mut rows = Vec::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => rows.push((name.clone(), *v)),
                MetricValue::Histogram(h) => {
                    rows.push((format!("{name}_count"), h.count));
                    rows.push((format!("{name}_sum"), h.sum));
                    rows.push((format!("{name}_mean"), h.mean()));
                    rows.push((format!("{name}_p50"), h.quantile(0.50)));
                    rows.push((format!("{name}_p95"), h.quantile(0.95)));
                    rows.push((format!("{name}_p99"), h.quantile(0.99)));
                    rows.push((format!("{name}_max"), h.max));
                }
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_tile_the_u64_range_and_contain_their_values() {
        // Buckets are contiguous: each starts right after its predecessor.
        for i in 1..NUM_BUCKETS {
            assert_eq!(bucket_bounds(i).0, bucket_bounds(i - 1).1 + 1);
        }
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
        // Probe values around every power of two land in a bucket whose
        // bounds contain them.
        for shift in 0..64u32 {
            let base = 1u64 << shift;
            for v in [base.saturating_sub(1), base, base.saturating_add(7)] {
                let i = bucket_index(v);
                assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
                let (lo, hi) = bucket_bounds(i);
                assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}] (bucket {i})");
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn registry_table_expands_histograms() {
        let reg = Registry::new();
        reg.counter("served").add(3);
        reg.gauge("queue_depth").set(7);
        let h = reg.histogram("latency_us");
        for v in [10, 20, 30] {
            h.record(v);
        }
        let table = reg.snapshot().table();
        let get = |k: &str| table.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("served"), Some(3));
        assert_eq!(get("queue_depth"), Some(7));
        assert_eq!(get("latency_us_count"), Some(3));
        assert_eq!(get("latency_us_max"), Some(30));
        assert_eq!(get("latency_us_p50"), Some(20));
    }

    #[test]
    fn snapshots_merge_per_kind() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("served").add(2);
        b.counter("served").add(5);
        a.gauge("depth").set(1);
        b.gauge("depth").set(9);
        a.histogram("lat").record(4);
        b.histogram("lat").record(6);
        b.counter("only_b").inc();
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.entries["served"], MetricValue::Counter(7));
        assert_eq!(merged.entries["depth"], MetricValue::Gauge(9));
        assert_eq!(merged.entries["only_b"], MetricValue::Counter(1));
        match &merged.entries["lat"] {
            MetricValue::Histogram(h) => {
                assert_eq!((h.count, h.sum, h.max), (2, 10, 6));
                assert_eq!(h.quantile(1.0), 6);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
