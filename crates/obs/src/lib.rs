//! `pwcet-obs`: the workspace's hand-rolled telemetry plane.
//!
//! Offline by construction — `std` and atomics only, no `tracing` /
//! `prometheus` / `tokio` — matching the rest of the workspace's
//! no-external-runtime discipline. Two halves:
//!
//! - [`span`]: RAII stage spans under client-minted, wire-propagated
//!   trace IDs, collected in a bounded ring with an optional JSONL
//!   sink. A request is explainable end to end: client → server shard
//!   (queue wait / service) → pipeline stages → fleet peer hop, all
//!   under one [`TraceId`].
//! - [`metrics`]: named atomic counters/gauges and log-bucketed
//!   latency histograms with lock-free recording, mergeable snapshots,
//!   and exact-from-buckets quantiles, rendered as a self-describing
//!   name→value table so new instruments never require protocol
//!   changes.

pub mod metrics;
pub mod span;

pub use metrics::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, MetricValue,
    Registry, RegistrySnapshot, NUM_BUCKETS, SUB_BITS,
};
pub use span::{
    current_trace, stage_span, trace_scope, SpanRecord, Stage, StageSpan, TraceId, Tracer,
    DEFAULT_RING_CAPACITY,
};
