//! Stage spans with wire-propagated trace IDs.
//!
//! A trace is minted once at the client ([`TraceId::mint`]), carried
//! inside `PWCQ` frames across shard hand-offs and fleet peer hops,
//! and every pipeline stage it touches records a [`SpanRecord`] under
//! it. Recording is scoped: the shard worker wraps a job in
//! [`trace_scope`], which installs the `(tracer, trace)` pair in a
//! thread-local; [`stage_span`] guards anywhere below (core pipeline,
//! reuse plane, peer layer) then cost one TLS read when tracing is
//! off and one `Instant` pair when it is on — cheap enough to leave
//! compiled into the hot path unconditionally.
//!
//! Spans land in a bounded in-memory ring (newest win; overflow is
//! counted, never blocking) and, when configured, an append-only JSONL
//! sink (`--trace-out`), one object per span.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A per-request trace identifier, minted at the client and carried
/// verbatim across every hop the request causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// A trace ID that traces nothing (wire value 0): spans under it
    /// are still timed but tooling treats it as "untraced".
    pub const NONE: TraceId = TraceId(0);

    /// Mints a fresh, never-zero ID: wall-clock nanoseconds mixed with
    /// a process-wide counter through a splitmix64 finalizer, so
    /// concurrent clients collide only if they mint the same nanosecond
    /// *and* sequence number.
    pub fn mint() -> TraceId {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let mut z = nanos ^ seq.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        TraceId(z.max(1))
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The fixed span taxonomy. Tags are wire-stable: they appear in `PWCQ`
/// v6 stage-timing breakdowns and in JSONL sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Stage {
    /// Compiled-program → analysis CFG expansion (context build).
    CfgExpand = 1,
    /// CHMC classification fixpoints (context prewarm).
    Classify = 2,
    /// IPET ILP solves: fault-free WCET, per-(set,fault) deltas, SRB.
    IlpSolve = 3,
    /// Penalty-distribution convolution.
    Convolve = 4,
    /// PWCX entry decode (disk or network tier).
    CodecDecode = 5,
    /// Read-through fetch from a fleet peer (requesting side).
    PeerFetch = 6,
    /// Time a job sat in its shard queue before a worker picked it up.
    QueueWait = 7,
    /// Worker-side service time of a job (parent of the pipeline stages).
    Service = 8,
    /// Serving a peer's `FetchEntry` under the peer's trace (remote side).
    PeerServe = 9,
}

impl Stage {
    /// Every stage, in tag order.
    pub const ALL: [Stage; 9] = [
        Stage::CfgExpand,
        Stage::Classify,
        Stage::IlpSolve,
        Stage::Convolve,
        Stage::CodecDecode,
        Stage::PeerFetch,
        Stage::QueueWait,
        Stage::Service,
        Stage::PeerServe,
    ];

    /// The wire tag.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(tag: u8) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.tag() == tag)
    }

    /// The snake_case label used in JSONL sinks and metric names.
    pub fn label(self) -> &'static str {
        match self {
            Stage::CfgExpand => "cfg_expand",
            Stage::Classify => "classify",
            Stage::IlpSolve => "ilp_solve",
            Stage::Convolve => "convolve",
            Stage::CodecDecode => "codec_decode",
            Stage::PeerFetch => "peer_fetch",
            Stage::QueueWait => "queue_wait",
            Stage::Service => "service",
            Stage::PeerServe => "peer_serve",
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// Which stage ran.
    pub stage: Stage,
    /// Start offset in microseconds since the tracer's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

struct Ring {
    spans: VecDeque<SpanRecord>,
    capacity: usize,
}

/// The process-wide span collector: a bounded ring plus an optional
/// JSONL sink. Cheap to share (`Arc`) between the server, its shard
/// workers, and the peer layer.
pub struct Tracer {
    epoch: Instant,
    ring: Mutex<Ring>,
    dropped: AtomicU64,
    sink: Option<Mutex<BufWriter<File>>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .field("sink", &self.sink.is_some())
            .finish_non_exhaustive()
    }
}

/// Default ring capacity: at ~10 spans per request this retains the
/// last few hundred requests.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

impl Default for Tracer {
    fn default() -> Self {
        Self::new(DEFAULT_RING_CAPACITY)
    }
}

impl Tracer {
    /// A tracer with a ring of `capacity` spans and no sink.
    pub fn new(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            ring: Mutex::new(Ring {
                spans: VecDeque::with_capacity(capacity.min(DEFAULT_RING_CAPACITY)),
                capacity: capacity.max(1),
            }),
            dropped: AtomicU64::new(0),
            sink: None,
        }
    }

    /// Attaches an append-mode JSONL sink at `path` (created if
    /// absent). Every span becomes one line:
    /// `{"trace":"<16 hex>","stage":"classify","start_us":N,"dur_us":N}`.
    ///
    /// # Errors
    ///
    /// Propagates the open error.
    pub fn with_sink(capacity: usize, path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut tracer = Self::new(capacity);
        tracer.sink = Some(Mutex::new(BufWriter::new(file)));
        Ok(tracer)
    }

    /// Microseconds since this tracer was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records a completed span into the ring (oldest evicted and
    /// counted when full) and the sink when one is attached.
    pub fn record(&self, span: SpanRecord) {
        {
            let mut ring = self.ring.lock().unwrap();
            if ring.spans.len() == ring.capacity {
                ring.spans.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.spans.push_back(span);
        }
        if let Some(sink) = &self.sink {
            let line = format!(
                "{{\"trace\":\"{}\",\"stage\":\"{}\",\"start_us\":{},\"dur_us\":{}}}\n",
                span.trace,
                span.stage.label(),
                span.start_us,
                span.dur_us
            );
            let mut w = sink.lock().unwrap();
            let _ = w.write_all(line.as_bytes());
        }
    }

    /// Appends one pre-formatted JSON object line to the sink, if any —
    /// used for non-span records such as a drained server's final
    /// metrics table. The line must not contain newlines.
    pub fn sink_line(&self, json_object: &str) {
        if let Some(sink) = &self.sink {
            let mut w = sink.lock().unwrap();
            let _ = w.write_all(json_object.as_bytes());
            let _ = w.write_all(b"\n");
        }
    }

    /// Flushes the sink (no-op without one).
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            let _ = sink.lock().unwrap().flush();
        }
    }

    /// The ring's current contents, oldest first.
    pub fn ring_snapshot(&self) -> Vec<SpanRecord> {
        self.ring.lock().unwrap().spans.iter().copied().collect()
    }

    /// Spans evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

struct ActiveTrace {
    tracer: Arc<Tracer>,
    trace: TraceId,
    /// `(stage, dur_us)` of every span completed under this scope, in
    /// completion order.
    spans: Vec<(Stage, u64)>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Runs `f` with `(tracer, trace)` installed as the thread's active
/// trace: every [`stage_span`] completed inside lands in the tracer's
/// ring/sink and in the returned `(stage, dur_us)` list. Scopes nest
/// (the previous scope is restored on exit). The per-scope span list is
/// what response stage-timing breakdowns are built from.
pub fn trace_scope<R>(
    tracer: &Arc<Tracer>,
    trace: TraceId,
    f: impl FnOnce() -> R,
) -> (R, Vec<(Stage, u64)>) {
    let previous = ACTIVE.with(|a| {
        a.borrow_mut().replace(ActiveTrace {
            tracer: Arc::clone(tracer),
            trace,
            spans: Vec::new(),
        })
    });
    let result = f();
    let finished = ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let finished = slot.take();
        *slot = previous;
        finished
    });
    (result, finished.map(|t| t.spans).unwrap_or_default())
}

/// The thread's active trace ID, if a [`trace_scope`] is installed —
/// how the peer layer stamps outgoing `FetchEntry` hops without
/// threading the ID through every signature.
pub fn current_trace() -> Option<TraceId> {
    ACTIVE.with(|a| a.borrow().as_ref().map(|t| t.trace))
}

/// An RAII stage span: times from construction to drop. Inert (a single
/// TLS read) when no [`trace_scope`] is active on this thread.
#[must_use = "a span measures the scope it is alive for"]
pub struct StageSpan {
    stage: Stage,
    started: Option<Instant>,
}

/// Opens a span for `stage` on the thread's active trace.
#[inline]
pub fn stage_span(stage: Stage) -> StageSpan {
    let armed = ACTIVE.with(|a| a.borrow().is_some());
    StageSpan {
        stage,
        started: armed.then(Instant::now),
    }
}

impl Drop for StageSpan {
    fn drop(&mut self) {
        let Some(started) = self.started else { return };
        let dur_us = started.elapsed().as_micros() as u64;
        ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            if let Some(active) = slot.as_mut() {
                active.spans.push((self.stage, dur_us));
                let start_us = active
                    .tracer
                    .now_us()
                    .saturating_sub(started.elapsed().as_micros() as u64);
                active.tracer.record(SpanRecord {
                    trace: active.trace,
                    stage: self.stage,
                    start_us,
                    dur_us,
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_inside_a_scope_land_in_ring_and_scope_list() {
        let tracer = Arc::new(Tracer::new(16));
        let trace = TraceId::mint();
        let ((), spans) = trace_scope(&tracer, trace, || {
            let _s = stage_span(Stage::Classify);
        });
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].0, Stage::Classify);
        let ring = tracer.ring_snapshot();
        assert_eq!(ring.len(), 1);
        assert_eq!((ring[0].trace, ring[0].stage), (trace, Stage::Classify));
    }

    #[test]
    fn spans_without_a_scope_are_inert() {
        {
            let _s = stage_span(Stage::IlpSolve);
        }
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let tracer = Arc::new(Tracer::new(16));
        let outer = TraceId(11);
        let inner = TraceId(22);
        let ((), outer_spans) = trace_scope(&tracer, outer, || {
            assert_eq!(current_trace(), Some(outer));
            let ((), inner_spans) = trace_scope(&tracer, inner, || {
                let _s = stage_span(Stage::Convolve);
            });
            assert_eq!(inner_spans.len(), 1);
            assert_eq!(current_trace(), Some(outer));
            let _s = stage_span(Stage::IlpSolve);
        });
        assert_eq!(outer_spans.len(), 1);
        assert_eq!(outer_spans[0].0, Stage::IlpSolve);
    }

    #[test]
    fn ring_overflow_evicts_oldest_and_counts() {
        let tracer = Tracer::new(4);
        for i in 0..10u64 {
            tracer.record(SpanRecord {
                trace: TraceId(i + 1),
                stage: Stage::Service,
                start_us: i,
                dur_us: 1,
            });
        }
        let ring = tracer.ring_snapshot();
        assert_eq!(ring.len(), 4);
        assert_eq!(tracer.dropped(), 6);
        // Newest four survive, oldest first.
        let traces: Vec<u64> = ring.iter().map(|s| s.trace.0).collect();
        assert_eq!(traces, vec![7, 8, 9, 10]);
    }

    #[test]
    fn stage_tags_roundtrip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_tag(stage.tag()), Some(stage));
        }
        assert_eq!(Stage::from_tag(0), None);
        assert_eq!(Stage::from_tag(200), None);
    }

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a.0, 0);
        assert_ne!(b.0, 0);
        assert_ne!(a, b);
    }
}
