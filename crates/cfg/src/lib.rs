//! Control-flow graph reconstruction and virtual inlining.
//!
//! The static analyses of the paper (cache analysis §II-B1, IPET §II-B2)
//! operate on the control-flow graph of the *binary*. This crate rebuilds
//! that graph from a [`pwcet_mips::BinaryImage`]:
//!
//! 1. [`FunctionCfg`] — per-function basic blocks and edges, decoded from
//!    machine code given the function extents;
//! 2. [`ExpandedCfg`] — the whole-program graph after **virtual inlining**
//!    (Heptane's context expansion): every function body is duplicated per
//!    call context, so the analyses are fully context-sensitive while the
//!    duplicated blocks still reference the *same* instruction addresses
//!    (and therefore the same cache blocks);
//! 3. [`NaturalLoop`]s with dominator-based detection on the expanded
//!    graph, each matched to a loop-bound annotation by header address.
//!
//! # Example
//!
//! ```
//! use pwcet_progen::{stmt, Program};
//! use pwcet_cfg::{ExpandedCfg, FunctionExtent};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let compiled = Program::new("p")
//!     .with_function("main", stmt::loop_(4, stmt::call("f")))
//!     .with_function("f", stmt::compute(2))
//!     .compile(0x0040_0000)?;
//! let extents: Vec<FunctionExtent> = compiled
//!     .functions()
//!     .iter()
//!     .map(|f| FunctionExtent::new(f.name(), f.entry(), f.end()))
//!     .collect();
//! let bounds: Vec<(u32, u32)> = compiled
//!     .loop_bounds()
//!     .iter()
//!     .map(|lb| (lb.header, lb.bound))
//!     .collect();
//! let cfg = ExpandedCfg::build(compiled.image(), &extents, &bounds)?;
//! assert_eq!(cfg.loops().len(), 1);
//! assert_eq!(cfg.loops()[0].bound, 4);
//! # Ok(())
//! # }
//! ```

mod error;
mod expand;
mod function;
mod graph;

pub use error::CfgError;
pub use expand::{Context, ContextId, ExpandedCfg, ExpandedNode, LoopId, NaturalLoop, NodeId};
pub use function::{BasicBlock, BlockId, CallSite, FunctionCfg, FunctionExtent};
pub use graph::{dominators, natural_loops, reverse_postorder, LoopInfo};
