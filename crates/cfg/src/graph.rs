//! Generic graph algorithms over index-based adjacency lists.
//!
//! Shared by the per-function and expanded graphs: reverse postorder,
//! dominator computation (Cooper–Harvey–Kennedy), and natural-loop
//! detection with irreducibility reporting.

use std::collections::BTreeSet;

/// Reverse postorder of the nodes reachable from `entry`.
///
/// # Example
///
/// ```
/// let succs = vec![vec![1, 2], vec![3], vec![3], vec![]];
/// let rpo = pwcet_cfg::reverse_postorder(&succs, 0);
/// assert_eq!(rpo[0], 0);
/// assert_eq!(rpo[3], 3);
/// ```
pub fn reverse_postorder(succs: &[Vec<usize>], entry: usize) -> Vec<usize> {
    let mut visited = vec![false; succs.len()];
    let mut postorder = Vec::with_capacity(succs.len());
    // Iterative DFS carrying an explicit successor cursor per frame.
    let mut stack: Vec<(usize, usize)> = vec![(entry, 0)];
    visited[entry] = true;
    while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
        if *cursor < succs[node].len() {
            let next = succs[node][*cursor];
            *cursor += 1;
            if !visited[next] {
                visited[next] = true;
                stack.push((next, 0));
            }
        } else {
            postorder.push(node);
            stack.pop();
        }
    }
    postorder.reverse();
    postorder
}

/// Immediate dominators of all nodes reachable from `entry`.
///
/// Returns `idom[n]`, with `idom[entry] == Some(entry)` and `None` for
/// unreachable nodes. Uses the iterative algorithm of Cooper, Harvey and
/// Kennedy over reverse postorder.
pub fn dominators(succs: &[Vec<usize>], entry: usize) -> Vec<Option<usize>> {
    let n = succs.len();
    let rpo = reverse_postorder(succs, entry);
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &node) in rpo.iter().enumerate() {
        rpo_index[node] = i;
    }
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, outs) in succs.iter().enumerate() {
        if rpo_index[u] == usize::MAX {
            continue; // unreachable
        }
        for &v in outs {
            preds[v].push(u);
        }
    }

    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[entry] = Some(entry);
    let mut changed = true;
    while changed {
        changed = false;
        for &node in rpo.iter().skip(1) {
            let mut new_idom: Option<usize> = None;
            for &p in &preds[node] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(current) => intersect(p, current, &idom, &rpo_index),
                });
            }
            if new_idom.is_some() && idom[node] != new_idom {
                idom[node] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

fn intersect(mut a: usize, mut b: usize, idom: &[Option<usize>], rpo_index: &[usize]) -> usize {
    while a != b {
        while rpo_index[a] > rpo_index[b] {
            a = idom[a].expect("processed node has an idom");
        }
        while rpo_index[b] > rpo_index[a] {
            b = idom[b].expect("processed node has an idom");
        }
    }
    a
}

/// `true` if `dom` dominates `node` (both reachable).
pub(crate) fn dominates(dom: usize, mut node: usize, idom: &[Option<usize>]) -> bool {
    loop {
        if node == dom {
            return true;
        }
        match idom[node] {
            Some(parent) if parent != node => node = parent,
            _ => return false,
        }
    }
}

/// A natural loop found in a reducible graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// The unique header node (target of all back edges of this loop).
    pub header: usize,
    /// All nodes of the loop, header included.
    pub nodes: BTreeSet<usize>,
    /// The back edges `(latch, header)`.
    pub back_edges: Vec<(usize, usize)>,
    /// Index of the innermost enclosing loop in the returned vector.
    pub parent: Option<usize>,
    /// Nesting depth (outermost = 0).
    pub depth: usize,
}

/// Finds all natural loops of the graph reachable from `entry`.
///
/// Loops sharing a header are merged. Loops are returned outermost-first
/// (stable order: by header reverse-postorder index).
///
/// # Errors
///
/// Returns the offending retreating edge `(from, to)` if the graph is
/// irreducible (the edge's target does not dominate its source).
pub fn natural_loops(succs: &[Vec<usize>], entry: usize) -> Result<Vec<LoopInfo>, (usize, usize)> {
    let n = succs.len();
    let idom = dominators(succs, entry);
    let rpo = reverse_postorder(succs, entry);
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &node) in rpo.iter().enumerate() {
        rpo_index[node] = i;
    }
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, outs) in succs.iter().enumerate() {
        if rpo_index[u] == usize::MAX {
            continue;
        }
        for &v in outs {
            preds[v].push(u);
        }
    }

    // Classify retreating edges; every one must be a back edge.
    let mut loops: Vec<LoopInfo> = Vec::new();
    for &u in &rpo {
        for &v in &succs[u] {
            if rpo_index[v] <= rpo_index[u] {
                // Retreating edge.
                if !dominates(v, u, &idom) {
                    return Err((u, v));
                }
                // Natural loop of (u, v): v plus all nodes reaching u
                // without passing through v.
                let mut nodes = BTreeSet::new();
                nodes.insert(v);
                let mut stack = vec![u];
                while let Some(x) = stack.pop() {
                    if nodes.insert(x) {
                        for &p in &preds[x] {
                            stack.push(p);
                        }
                    }
                }
                if let Some(existing) = loops.iter_mut().find(|l| l.header == v) {
                    existing.nodes.extend(nodes);
                    existing.back_edges.push((u, v));
                } else {
                    loops.push(LoopInfo {
                        header: v,
                        nodes,
                        back_edges: vec![(u, v)],
                        parent: None,
                        depth: 0,
                    });
                }
            }
        }
    }

    // Establish nesting: parent = smallest strictly-containing loop.
    loops.sort_by_key(|l| rpo_index[l.header]);
    let snapshots: Vec<(usize, BTreeSet<usize>)> = loops
        .iter()
        .enumerate()
        .map(|(i, l)| (i, l.nodes.clone()))
        .collect();
    for i in 0..loops.len() {
        let header = loops[i].header;
        let mut best: Option<usize> = None;
        for (j, nodes) in &snapshots {
            if *j != i && nodes.contains(&header) && loops[*j].header != header {
                best = match best {
                    None => Some(*j),
                    Some(b) if nodes.len() < snapshots[b].1.len() => Some(*j),
                    keep => keep,
                };
            }
        }
        loops[i].parent = best;
    }
    // Depths by walking parent chains (parents sort before children is not
    // guaranteed, so compute transitively).
    for i in 0..loops.len() {
        let mut depth = 0;
        let mut cursor = loops[i].parent;
        while let Some(p) = cursor {
            depth += 1;
            cursor = loops[p].parent;
        }
        loops[i].depth = depth;
    }
    Ok(loops)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0 -> {1,2} -> 3.
    fn diamond() -> Vec<Vec<usize>> {
        vec![vec![1, 2], vec![3], vec![3], vec![]]
    }

    /// Simple loop: 0 -> 1 -> 2 -> 1, 2 -> 3.
    fn simple_loop() -> Vec<Vec<usize>> {
        vec![vec![1], vec![2], vec![1, 3], vec![]]
    }

    /// Nested: 0 -> 1(h1) -> 2(h2) -> 3 -> 2, 3 -> 4 -> 1, 4 -> 5.
    fn nested_loops() -> Vec<Vec<usize>> {
        vec![vec![1], vec![2], vec![3], vec![2, 4], vec![1, 5], vec![]]
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_edges() {
        let rpo = reverse_postorder(&diamond(), 0);
        assert_eq!(rpo[0], 0);
        assert_eq!(*rpo.last().unwrap(), 3);
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn rpo_skips_unreachable() {
        let succs = vec![vec![1], vec![], vec![1]];
        let rpo = reverse_postorder(&succs, 0);
        assert_eq!(rpo, vec![0, 1]);
    }

    #[test]
    fn dominators_of_diamond() {
        let idom = dominators(&diamond(), 0);
        assert_eq!(idom, vec![Some(0), Some(0), Some(0), Some(0)]);
    }

    #[test]
    fn dominators_of_chain() {
        let succs = vec![vec![1], vec![2], vec![]];
        let idom = dominators(&succs, 0);
        assert_eq!(idom, vec![Some(0), Some(0), Some(1)]);
    }

    #[test]
    fn dominators_with_loop() {
        let idom = dominators(&simple_loop(), 0);
        assert_eq!(idom[1], Some(0));
        assert_eq!(idom[2], Some(1));
        assert_eq!(idom[3], Some(2));
    }

    #[test]
    fn single_loop_detected() {
        let loops = natural_loops(&simple_loop(), 0).unwrap();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, 1);
        assert_eq!(loops[0].nodes, BTreeSet::from([1, 2]));
        assert_eq!(loops[0].back_edges, vec![(2, 1)]);
        assert_eq!(loops[0].depth, 0);
    }

    #[test]
    fn nested_loops_detected_with_depths() {
        let loops = natural_loops(&nested_loops(), 0).unwrap();
        assert_eq!(loops.len(), 2);
        let outer = loops.iter().find(|l| l.header == 1).unwrap();
        let inner = loops.iter().find(|l| l.header == 2).unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(outer.nodes.is_superset(&inner.nodes));
        let inner_pos = loops.iter().position(|l| l.header == 2).unwrap();
        assert_eq!(
            loops[inner_pos].parent,
            loops.iter().position(|l| l.header == 1)
        );
    }

    #[test]
    fn self_loop_detected() {
        let succs = vec![vec![1], vec![1, 2], vec![]];
        let loops = natural_loops(&succs, 0).unwrap();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].nodes, BTreeSet::from([1]));
    }

    #[test]
    fn irreducible_graph_rejected() {
        // Two entries into a cycle: 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 1.
        let succs = vec![vec![1, 2], vec![2], vec![1]];
        let result = natural_loops(&succs, 0);
        assert!(result.is_err());
    }

    #[test]
    fn multiple_back_edges_merge_into_one_loop() {
        // 0 -> 1 -> 2 -> 1 and 1 -> 3 -> 1; 3 -> 4.
        let succs = vec![vec![1], vec![2, 3], vec![1], vec![1, 4], vec![]];
        let loops = natural_loops(&succs, 0).unwrap();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, 1);
        assert_eq!(loops[0].back_edges.len(), 2);
        assert_eq!(loops[0].nodes, BTreeSet::from([1, 2, 3]));
    }

    #[test]
    fn acyclic_graph_has_no_loops() {
        assert_eq!(natural_loops(&diamond(), 0).unwrap(), vec![]);
    }
}
