//! Errors from control-flow reconstruction.

use std::error::Error;
use std::fmt;

use pwcet_mips::MipsError;

/// Errors from building per-function or expanded control-flow graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum CfgError {
    /// The image could not be decoded at an address.
    Decode(MipsError),
    /// A control transfer targets an address outside every function.
    TargetOutsideFunctions {
        /// The transferring instruction's address.
        from: u32,
        /// The invalid target.
        target: u32,
    },
    /// A `jal` targets an address that is not a function entry.
    CallIntoBody {
        /// The call site.
        from: u32,
        /// The target address.
        target: u32,
    },
    /// A branch or jump leaves its function without using `jal`/`jr`.
    InterFunctionBranch {
        /// The transferring instruction's address.
        from: u32,
        /// The target address.
        target: u32,
    },
    /// A natural loop has no bound annotation.
    MissingLoopBound {
        /// Address of the unannotated loop header.
        header: u32,
    },
    /// The graph is irreducible (a retreating edge whose target does not
    /// dominate its source); bounded-loop analysis requires reducibility.
    Irreducible {
        /// Source address of the offending edge.
        from: u32,
        /// Target address of the offending edge.
        to: u32,
    },
    /// A function has no reachable exit.
    NoExit(String),
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::Decode(e) => write!(f, "decode failure: {e}"),
            CfgError::TargetOutsideFunctions { from, target } => write!(
                f,
                "instruction at {from:#010x} targets {target:#010x}, outside all functions"
            ),
            CfgError::CallIntoBody { from, target } => write!(
                f,
                "call at {from:#010x} targets {target:#010x}, not a function entry"
            ),
            CfgError::InterFunctionBranch { from, target } => write!(
                f,
                "branch at {from:#010x} crosses a function boundary to {target:#010x}"
            ),
            CfgError::MissingLoopBound { header } => {
                write!(f, "loop with header {header:#010x} has no bound annotation")
            }
            CfgError::Irreducible { from, to } => write!(
                f,
                "irreducible control flow: retreating edge {from:#010x} -> {to:#010x}"
            ),
            CfgError::NoExit(name) => write!(f, "function `{name}` has no exit"),
        }
    }
}

impl Error for CfgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CfgError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MipsError> for CfgError {
    fn from(e: MipsError) -> Self {
        CfgError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_addresses() {
        let e = CfgError::MissingLoopBound { header: 0x400010 };
        assert!(e.to_string().contains("0x00400010"));
        let e = CfgError::Irreducible { from: 4, to: 8 };
        assert!(e.to_string().contains("irreducible"));
    }
}
