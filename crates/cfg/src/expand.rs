//! Virtual inlining: the whole-program expanded control-flow graph.
//!
//! Heptane-style context expansion duplicates each function body once per
//! call context. Duplicated nodes keep their original instruction
//! *addresses* — the cache analysis therefore sees the same memory blocks
//! in every context while classifying each context independently (full
//! context sensitivity).

use std::collections::{BTreeSet, HashMap};

use pwcet_mips::BinaryImage;

use crate::error::CfgError;
use crate::function::{BlockId, FunctionCfg, FunctionExtent};
use crate::graph;

/// Identifier of a node of the expanded graph.
pub type NodeId = usize;
/// Identifier of a call context.
pub type ContextId = usize;
/// Identifier of a natural loop of the expanded graph.
pub type LoopId = usize;

/// A call context: the chain of `jal` site addresses from `main` (empty for
/// the root context).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Context {
    call_string: Vec<u32>,
}

impl Context {
    /// The `jal` addresses from outermost to innermost.
    pub fn call_string(&self) -> &[u32] {
        &self.call_string
    }

    /// `true` for the root (`main`) context.
    pub fn is_root(&self) -> bool {
        self.call_string.is_empty()
    }

    /// The context obtained by entering a call at `site`.
    #[must_use]
    pub fn push(&self, site: u32) -> Context {
        let mut call_string = self.call_string.clone();
        call_string.push(site);
        Context { call_string }
    }
}

/// One basic block instance of the expanded graph: an original basic block
/// specialized to a call context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandedNode {
    id: NodeId,
    context: ContextId,
    function: String,
    orig_block: BlockId,
    addrs: Vec<u32>,
}

impl ExpandedNode {
    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The call context this instance belongs to.
    pub fn context(&self) -> ContextId {
        self.context
    }

    /// Name of the containing function.
    pub fn function(&self) -> &str {
        &self.function
    }

    /// Id of the original basic block within its [`FunctionCfg`].
    pub fn orig_block(&self) -> BlockId {
        self.orig_block
    }

    /// The instruction addresses fetched when this node executes (empty
    /// only for the synthetic exit node).
    pub fn addrs(&self) -> &[u32] {
        &self.addrs
    }
}

/// A natural loop of the expanded graph, annotated with its bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Loop id (index into [`ExpandedCfg::loops`]).
    pub id: LoopId,
    /// The header node (target of all back edges).
    pub header: NodeId,
    /// Maximum header executions per loop entry (from the annotation).
    pub bound: u32,
    /// All member nodes, header included. Inlined callee bodies called
    /// from inside the loop are members too.
    pub nodes: BTreeSet<NodeId>,
    /// Back edges `(latch, header)`.
    pub back_edges: Vec<(NodeId, NodeId)>,
    /// Edges entering the loop from outside `(from, header)`.
    pub entry_edges: Vec<(NodeId, NodeId)>,
    /// Innermost enclosing loop.
    pub parent: Option<LoopId>,
    /// Nesting depth (outermost = 0).
    pub depth: usize,
}

/// The whole-program control-flow graph after virtual inlining.
///
/// See the [crate docs](crate) for a construction example.
#[derive(Debug, Clone)]
pub struct ExpandedCfg {
    nodes: Vec<ExpandedNode>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
    entry: NodeId,
    exit: NodeId,
    contexts: Vec<Context>,
    loops: Vec<NaturalLoop>,
    innermost_loop: Vec<Option<LoopId>>,
}

impl ExpandedCfg {
    /// Builds the expanded graph for a whole program.
    ///
    /// `bounds` maps loop header *addresses* to bounds (maximum header
    /// executions per loop entry), as produced by `pwcet-progen`.
    ///
    /// # Errors
    ///
    /// Per-function reconstruction errors ([`CfgError::Decode`],
    /// [`CfgError::InterFunctionBranch`]), plus:
    ///
    /// * [`CfgError::CallIntoBody`] — a `jal` target is no function entry.
    /// * [`CfgError::MissingLoopBound`] — an unannotated loop.
    /// * [`CfgError::Irreducible`] — non-natural cycle.
    /// * [`CfgError::NoExit`] — the program cannot terminate.
    pub fn build(
        image: &BinaryImage,
        extents: &[FunctionExtent],
        bounds: &[(u32, u32)],
    ) -> Result<Self, CfgError> {
        let mut function_cfgs: HashMap<u32, FunctionCfg> = HashMap::new();
        for extent in extents {
            function_cfgs.insert(extent.entry(), FunctionCfg::build(image, extent)?);
        }
        let main = extents
            .iter()
            .find(|e| e.name() == "main")
            .unwrap_or_else(|| &extents[0]);

        let mut builder = Builder {
            function_cfgs: &function_cfgs,
            nodes: Vec::new(),
            succs: Vec::new(),
            contexts: vec![Context::default()],
            terminals: Vec::new(),
        };
        let (entry, _) = builder.expand(main.entry(), 0)?;

        // Unique program exit: the single `break` terminal, or a synthetic
        // sink if there are several.
        let exit = match builder.terminals.len() {
            0 => return Err(CfgError::NoExit(main.name().to_string())),
            1 => builder.terminals[0],
            _ => {
                let id = builder.nodes.len();
                builder.nodes.push(ExpandedNode {
                    id,
                    context: 0,
                    function: "<exit>".to_string(),
                    orig_block: usize::MAX,
                    addrs: Vec::new(),
                });
                builder.succs.push(Vec::new());
                for &t in &builder.terminals {
                    builder.succs[t].push(id);
                }
                id
            }
        };

        let Builder {
            nodes,
            succs,
            contexts,
            ..
        } = builder;

        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        for (u, outs) in succs.iter().enumerate() {
            for &v in outs {
                preds[v].push(u);
            }
        }

        // Loops on the expanded graph.
        let raw_loops =
            graph::natural_loops(&succs, entry).map_err(|(u, v)| CfgError::Irreducible {
                from: nodes[u].addrs.first().copied().unwrap_or(0),
                to: nodes[v].addrs.first().copied().unwrap_or(0),
            })?;
        let bound_map: HashMap<u32, u32> = bounds.iter().copied().collect();
        let mut loops = Vec::with_capacity(raw_loops.len());
        for (id, info) in raw_loops.into_iter().enumerate() {
            let header_addr = nodes[info.header].addrs.first().copied().unwrap_or(0);
            let bound = *bound_map
                .get(&header_addr)
                .ok_or(CfgError::MissingLoopBound {
                    header: header_addr,
                })?;
            let entry_edges: Vec<(NodeId, NodeId)> = preds[info.header]
                .iter()
                .filter(|p| !info.nodes.contains(p))
                .map(|&p| (p, info.header))
                .collect();
            loops.push(NaturalLoop {
                id,
                header: info.header,
                bound,
                nodes: info.nodes,
                back_edges: info.back_edges,
                entry_edges,
                parent: info.parent,
                depth: info.depth,
            });
        }

        // Innermost loop per node: deeper loops overwrite shallower ones.
        let mut innermost_loop: Vec<Option<LoopId>> = vec![None; nodes.len()];
        let mut by_depth: Vec<&NaturalLoop> = loops.iter().collect();
        by_depth.sort_by_key(|l| l.depth);
        for l in by_depth {
            for &n in &l.nodes {
                innermost_loop[n] = Some(l.id);
            }
        }

        Ok(Self {
            nodes,
            succs,
            preds,
            entry,
            exit,
            contexts,
            loops,
            innermost_loop,
        })
    }

    /// All nodes; `nodes()[id].id() == id`.
    pub fn nodes(&self) -> &[ExpandedNode] {
        &self.nodes
    }

    /// A single node.
    pub fn node(&self, id: NodeId) -> &ExpandedNode {
        &self.nodes[id]
    }

    /// Successor lists indexed by node id.
    pub fn succs(&self) -> &[Vec<NodeId>] {
        &self.succs
    }

    /// Predecessor lists indexed by node id.
    pub fn preds(&self) -> &[Vec<NodeId>] {
        &self.preds
    }

    /// The program entry node (`main`'s first block).
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The unique program exit node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// All call contexts; index 0 is the root.
    pub fn contexts(&self) -> &[Context] {
        &self.contexts
    }

    /// All natural loops, annotated with bounds.
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// The innermost loop containing `node`, if any.
    pub fn innermost_loop(&self, node: NodeId) -> Option<LoopId> {
        self.innermost_loop[node]
    }

    /// Iterates from the innermost loop containing `node` outward.
    pub fn loops_containing(&self, node: NodeId) -> impl Iterator<Item = &NaturalLoop> + '_ {
        let mut cursor = self.innermost_loop(node);
        std::iter::from_fn(move || {
            let id = cursor?;
            cursor = self.loops[id].parent;
            Some(&self.loops[id])
        })
    }

    /// All edges `(from, to)` in a stable order.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for (u, outs) in self.succs.iter().enumerate() {
            for &v in outs {
                out.push((u, v));
            }
        }
        out
    }

    /// Total number of instruction fetch references across all nodes.
    pub fn total_refs(&self) -> usize {
        self.nodes.iter().map(|n| n.addrs.len()).sum()
    }

    /// Reverse postorder of the node ids (for worklist iteration).
    pub fn reverse_postorder(&self) -> Vec<NodeId> {
        graph::reverse_postorder(&self.succs, self.entry)
    }
}

struct Builder<'a> {
    function_cfgs: &'a HashMap<u32, FunctionCfg>,
    nodes: Vec<ExpandedNode>,
    succs: Vec<Vec<NodeId>>,
    contexts: Vec<Context>,
    terminals: Vec<NodeId>,
}

impl Builder<'_> {
    /// Expands one function instance; returns its entry node and the node
    /// instances of its `jr` exit blocks.
    fn expand(
        &mut self,
        function_entry: u32,
        context: ContextId,
    ) -> Result<(NodeId, Vec<NodeId>), CfgError> {
        let fcfg = self.function_cfgs.get(&function_entry).ok_or({
            // Reported with the callee address; the caller fills `from`.
            CfgError::CallIntoBody {
                from: 0,
                target: function_entry,
            }
        })?;

        // Instantiate all blocks of this function for this context.
        let base = self.nodes.len();
        for block in fcfg.blocks() {
            let id = self.nodes.len();
            self.nodes.push(ExpandedNode {
                id,
                context,
                function: fcfg.name().to_string(),
                orig_block: block.id(),
                addrs: block.addrs().to_vec(),
            });
            self.succs.push(Vec::new());
        }
        let node_of = |block: BlockId| base + block;

        for block in fcfg.blocks() {
            let from = node_of(block.id());
            if let Some(call) = fcfg.call_at(block.id()) {
                // Replace the sequential return edge by the callee body.
                let child_context = self.contexts[context].push(call.site);
                let child_id = self.contexts.len();
                self.contexts.push(child_context);
                let (callee_entry_node, callee_exits) = self
                    .expand(call.callee_entry, child_id)
                    .map_err(|e| match e {
                        CfgError::CallIntoBody { from: 0, target } => CfgError::CallIntoBody {
                            from: call.site,
                            target,
                        },
                        other => other,
                    })?;
                self.succs[from].push(callee_entry_node);
                debug_assert!(
                    fcfg.succs()[block.id()].len() <= 1,
                    "call blocks have at most the return successor"
                );
                for &ret in &fcfg.succs()[block.id()] {
                    let ret_node = node_of(ret);
                    for &exit in &callee_exits {
                        self.succs[exit].push(ret_node);
                    }
                }
            } else {
                for &s in &fcfg.succs()[block.id()] {
                    self.succs[from].push(node_of(s));
                }
            }
        }

        self.terminals
            .extend(fcfg.terminals().iter().map(|&b| node_of(b)));
        let exits = fcfg.exits().iter().map(|&b| node_of(b)).collect();
        Ok((node_of(fcfg.entry()), exits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwcet_progen::{stmt, Program};

    fn build(program: Program) -> ExpandedCfg {
        let compiled = program.compile(0x0040_0000).expect("compiles");
        let extents: Vec<FunctionExtent> = compiled
            .functions()
            .iter()
            .map(|f| FunctionExtent::new(f.name(), f.entry(), f.end()))
            .collect();
        let bounds: Vec<(u32, u32)> = compiled
            .loop_bounds()
            .iter()
            .map(|lb| (lb.header, lb.bound))
            .collect();
        ExpandedCfg::build(compiled.image(), &extents, &bounds).expect("expands")
    }

    #[test]
    fn straight_line_program_is_a_chain() {
        let cfg = build(Program::new("s").with_function("main", stmt::compute(4)));
        // One block: prologue + compute + break has no internal control flow.
        assert_eq!(cfg.nodes().len(), 1);
        assert_eq!(cfg.entry(), cfg.exit());
        assert!(cfg.loops().is_empty());
        assert_eq!(cfg.total_refs(), 8); // 3 prologue + 4 compute + 1 break
    }

    #[test]
    fn loop_structure_with_bound() {
        let cfg = build(Program::new("l").with_function("main", stmt::loop_(6, stmt::compute(2))));
        assert_eq!(cfg.loops().len(), 1);
        let l = &cfg.loops()[0];
        assert_eq!(l.bound, 6);
        assert_eq!(l.back_edges.len(), 1);
        assert_eq!(l.entry_edges.len(), 1);
        assert_eq!(l.depth, 0);
        assert_eq!(cfg.innermost_loop(l.header), Some(l.id));
        assert_eq!(cfg.innermost_loop(cfg.entry()), None);
    }

    #[test]
    fn nested_loops_have_parent_links() {
        let cfg = build(
            Program::new("n")
                .with_function("main", stmt::loop_(3, stmt::loop_(5, stmt::compute(1)))),
        );
        assert_eq!(cfg.loops().len(), 2);
        let outer = cfg.loops().iter().find(|l| l.bound == 3).unwrap();
        let inner = cfg.loops().iter().find(|l| l.bound == 5).unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner.depth, 1);
        assert!(outer.nodes.is_superset(&inner.nodes));
        // Walking outward from the inner header sees both loops.
        let chain: Vec<LoopId> = cfg.loops_containing(inner.header).map(|l| l.id).collect();
        assert_eq!(chain, vec![inner.id, outer.id]);
    }

    #[test]
    fn call_is_inlined_per_context() {
        let cfg = build(
            Program::new("c")
                .with_function("main", stmt::seq([stmt::call("f"), stmt::call("f")]))
                .with_function("f", stmt::compute(2)),
        );
        // Two contexts for f plus the root.
        assert_eq!(cfg.contexts().len(), 3);
        let f_instances: Vec<&ExpandedNode> =
            cfg.nodes().iter().filter(|n| n.function() == "f").collect();
        assert_eq!(f_instances.len(), 2);
        // Same addresses (same code), different contexts.
        assert_eq!(f_instances[0].addrs(), f_instances[1].addrs());
        assert_ne!(f_instances[0].context(), f_instances[1].context());
        // Call strings name the two different jal sites.
        let c1 = &cfg.contexts()[f_instances[0].context()];
        let c2 = &cfg.contexts()[f_instances[1].context()];
        assert_ne!(c1.call_string(), c2.call_string());
        assert_eq!(c1.call_string().len(), 1);
    }

    #[test]
    fn loop_containing_call_includes_callee_nodes() {
        let cfg = build(
            Program::new("lc")
                .with_function("main", stmt::loop_(4, stmt::call("f")))
                .with_function("f", stmt::compute(3)),
        );
        assert_eq!(cfg.loops().len(), 1);
        let l = &cfg.loops()[0];
        let f_nodes: Vec<NodeId> = cfg
            .nodes()
            .iter()
            .filter(|n| n.function() == "f")
            .map(|n| n.id())
            .collect();
        assert!(!f_nodes.is_empty());
        for n in f_nodes {
            assert!(l.nodes.contains(&n), "callee body is part of the loop");
        }
    }

    #[test]
    fn if_else_creates_diamond() {
        let cfg = build(
            Program::new("d")
                .with_function("main", stmt::if_else(stmt::compute(1), stmt::compute(2))),
        );
        // entry(+prelude), then, else, join(+break).
        assert_eq!(cfg.nodes().len(), 4);
        assert_eq!(cfg.succs()[cfg.entry()].len(), 2);
        assert_eq!(cfg.preds()[cfg.exit()].len(), 2);
        assert!(cfg.loops().is_empty());
    }

    #[test]
    fn every_node_reachable_and_reaches_exit() {
        let cfg = build(
            Program::new("r")
                .with_function(
                    "main",
                    stmt::seq([
                        stmt::loop_(2, stmt::if_else(stmt::call("f"), stmt::compute(1))),
                        stmt::call("g"),
                    ]),
                )
                .with_function("f", stmt::compute(2))
                .with_function("g", stmt::loop_(3, stmt::compute(1))),
        );
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo.len(), cfg.nodes().len(), "all nodes reachable");
        // Reverse reachability from exit.
        let mut seen = vec![false; cfg.nodes().len()];
        let mut stack = vec![cfg.exit()];
        seen[cfg.exit()] = true;
        while let Some(n) = stack.pop() {
            for &p in &cfg.preds()[n] {
                if !seen[p] {
                    seen[p] = true;
                    stack.push(p);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "all nodes reach the exit");
    }

    #[test]
    fn total_refs_matches_tree_coverage() {
        let program = Program::new("cover")
            .with_function("main", stmt::seq([stmt::call("f"), stmt::call("f")]))
            .with_function("f", stmt::compute(5));
        let compiled = program.compile(0x0040_0000).unwrap();
        let cfg = build(program);
        // f appears twice in the expanded graph, so refs exceed the image.
        let f_len = compiled.function("f").unwrap();
        let f_words = ((f_len.end() - f_len.entry()) / 4) as usize;
        assert_eq!(cfg.total_refs(), compiled.image().len_words() + f_words);
    }

    #[test]
    fn missing_bound_is_reported() {
        let compiled = Program::new("mb")
            .with_function("main", stmt::loop_(2, stmt::compute(1)))
            .compile(0x0040_0000)
            .unwrap();
        let extents: Vec<FunctionExtent> = compiled
            .functions()
            .iter()
            .map(|f| FunctionExtent::new(f.name(), f.entry(), f.end()))
            .collect();
        let result = ExpandedCfg::build(compiled.image(), &extents, &[]);
        assert!(matches!(result, Err(CfgError::MissingLoopBound { .. })));
    }
}
