//! Per-function basic-block graphs decoded from machine code.

use std::collections::{BTreeSet, HashMap};

use pwcet_mips::{BinaryImage, Instruction, INSTRUCTION_BYTES};

use crate::error::CfgError;

/// Identifier of a basic block within one [`FunctionCfg`].
pub type BlockId = usize;

/// The address range of one function in the image.
///
/// # Example
///
/// ```
/// let f = pwcet_cfg::FunctionExtent::new("main", 0x0040_0000, 0x0040_0020);
/// assert!(f.contains(0x0040_001c));
/// assert!(!f.contains(0x0040_0020));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionExtent {
    name: String,
    entry: u32,
    end: u32,
}

impl FunctionExtent {
    /// Creates an extent `[entry, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or misaligned.
    pub fn new(name: impl Into<String>, entry: u32, end: u32) -> Self {
        assert!(entry < end, "function extent must be non-empty");
        assert_eq!(entry % INSTRUCTION_BYTES, 0, "entry must be aligned");
        assert_eq!(end % INSTRUCTION_BYTES, 0, "end must be aligned");
        Self {
            name: name.into(),
            entry,
            end,
        }
    }

    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Address of the first instruction.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// One past the last instruction.
    pub fn end(&self) -> u32 {
        self.end
    }

    /// `true` if `addr` is inside the function.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.entry && addr < self.end
    }
}

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    id: BlockId,
    addrs: Vec<u32>,
}

impl BasicBlock {
    /// The block id.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The instruction addresses, in execution order.
    pub fn addrs(&self) -> &[u32] {
        &self.addrs
    }

    /// Address of the first instruction.
    pub fn start(&self) -> u32 {
        self.addrs[0]
    }

    /// Address of the last instruction.
    pub fn last(&self) -> u32 {
        *self.addrs.last().expect("blocks are non-empty")
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Basic blocks are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A `jal` call site within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// The block whose last instruction is the `jal`.
    pub block: BlockId,
    /// Address of the `jal` instruction.
    pub site: u32,
    /// Entry address of the callee.
    pub callee_entry: u32,
}

/// The control-flow graph of one function.
///
/// Call sites are summarized: a block ending in `jal` has a *sequential*
/// successor edge to its return block, so function-local structure (loops,
/// dominators) is computed as if calls were atomic instructions. Virtual
/// inlining (in [`crate::ExpandedCfg`]) later replaces those edges with the
/// callee's body.
#[derive(Debug, Clone)]
pub struct FunctionCfg {
    extent: FunctionExtent,
    blocks: Vec<BasicBlock>,
    succs: Vec<Vec<BlockId>>,
    entry: BlockId,
    /// Blocks ending with `jr` (function returns).
    exits: Vec<BlockId>,
    /// Blocks ending with `break` (program termination).
    terminals: Vec<BlockId>,
    calls: Vec<CallSite>,
}

impl FunctionCfg {
    /// Decodes the function body and reconstructs its basic blocks.
    ///
    /// # Errors
    ///
    /// * [`CfgError::Decode`] — undecodable machine word.
    /// * [`CfgError::InterFunctionBranch`] — a branch or `j` leaves the
    ///   function (calls must use `jal`).
    pub fn build(image: &BinaryImage, extent: &FunctionExtent) -> Result<Self, CfgError> {
        let mut instructions: HashMap<u32, Instruction> = HashMap::new();
        let mut addr = extent.entry();
        while addr < extent.end() {
            instructions.insert(addr, image.decode_at(addr)?);
            addr += INSTRUCTION_BYTES;
        }

        // Leaders: function entry, targets of local transfers, and fall-
        // through successors of every control-flow instruction.
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        leaders.insert(extent.entry());
        for (&a, inst) in &instructions {
            if !inst.is_control_flow() {
                continue;
            }
            if let Some(target) = inst.static_target(a) {
                let is_call = matches!(inst, Instruction::Jal { .. });
                if is_call {
                    // Callee may be anywhere; the return point is a leader.
                } else if extent.contains(target) {
                    leaders.insert(target);
                } else {
                    return Err(CfgError::InterFunctionBranch { from: a, target });
                }
            }
            if a + INSTRUCTION_BYTES < extent.end() {
                leaders.insert(a + INSTRUCTION_BYTES);
            }
        }

        // Carve blocks between leaders.
        let leader_list: Vec<u32> = leaders.iter().copied().collect();
        let mut blocks = Vec::new();
        let mut block_of_addr: HashMap<u32, BlockId> = HashMap::new();
        for (i, &start) in leader_list.iter().enumerate() {
            let end = leader_list
                .get(i + 1)
                .copied()
                .unwrap_or_else(|| extent.end());
            let addrs: Vec<u32> = (start..end).step_by(INSTRUCTION_BYTES as usize).collect();
            let id = blocks.len();
            for &a in &addrs {
                block_of_addr.insert(a, id);
            }
            blocks.push(BasicBlock { id, addrs });
        }

        // Edges.
        let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); blocks.len()];
        let mut exits = Vec::new();
        let mut terminals = Vec::new();
        let mut calls = Vec::new();
        for block in &blocks {
            let last = block.last();
            let inst = instructions[&last];
            let push = |from: BlockId, to: BlockId, succs: &mut Vec<Vec<BlockId>>| {
                if !succs[from].contains(&to) {
                    succs[from].push(to);
                }
            };
            match inst {
                Instruction::Jr { .. } => exits.push(block.id),
                Instruction::Break { .. } => terminals.push(block.id),
                Instruction::Jal { .. } => {
                    let callee_entry = inst
                        .static_target(last)
                        .expect("jal always has a static target");
                    calls.push(CallSite {
                        block: block.id,
                        site: last,
                        callee_entry,
                    });
                    // Sequential return edge (replaced during inlining).
                    if let Some(&next) = block_of_addr.get(&(last + INSTRUCTION_BYTES)) {
                        push(block.id, next, &mut succs);
                    }
                }
                Instruction::J { .. } => {
                    let target = inst.static_target(last).expect("j has a static target");
                    push(block.id, block_of_addr[&target], &mut succs);
                }
                _ if inst.is_conditional_branch() => {
                    let target = inst
                        .static_target(last)
                        .expect("branches have static targets");
                    push(block.id, block_of_addr[&target], &mut succs);
                    if let Some(&next) = block_of_addr.get(&(last + INSTRUCTION_BYTES)) {
                        push(block.id, next, &mut succs);
                    }
                }
                _ => {
                    // Straight-line fall into the next leader.
                    if let Some(&next) = block_of_addr.get(&(last + INSTRUCTION_BYTES)) {
                        push(block.id, next, &mut succs);
                    }
                }
            }
        }

        Ok(Self {
            extent: extent.clone(),
            blocks,
            succs,
            entry: 0,
            exits,
            terminals,
            calls,
        })
    }

    /// The function extent.
    pub fn extent(&self) -> &FunctionExtent {
        &self.extent
    }

    /// The function name.
    pub fn name(&self) -> &str {
        self.extent.name()
    }

    /// All basic blocks; `blocks()[id].id() == id`.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Successor lists, indexed by block id.
    pub fn succs(&self) -> &[Vec<BlockId>] {
        &self.succs
    }

    /// The entry block (always id 0: the block at the function entry).
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Blocks ending with `jr` (returns).
    pub fn exits(&self) -> &[BlockId] {
        &self.exits
    }

    /// Blocks ending with `break` (program termination).
    pub fn terminals(&self) -> &[BlockId] {
        &self.terminals
    }

    /// All call sites.
    pub fn calls(&self) -> &[CallSite] {
        &self.calls
    }

    /// The call site whose `jal` ends `block`, if any.
    pub fn call_at(&self, block: BlockId) -> Option<&CallSite> {
        self.calls.iter().find(|c| c.block == block)
    }

    /// The block starting at `addr`, if any.
    pub fn block_at(&self, addr: u32) -> Option<BlockId> {
        self.blocks.iter().find(|b| b.start() == addr).map(|b| b.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwcet_mips::{Assembler, Reg};

    /// Assembles: counted loop of 3 iterations around 2 compute
    /// instructions, then break.
    fn loop_image() -> (BinaryImage, FunctionExtent) {
        let mut asm = Assembler::new(0x0040_0000);
        asm.push(Instruction::Addiu {
            rt: Reg::S0,
            rs: Reg::ZERO,
            imm: 3,
        }); // 0x00
        asm.label("head");
        asm.push(Instruction::Addu {
            rd: Reg::T0,
            rs: Reg::T0,
            rt: Reg::T1,
        }); // 0x04
        asm.push(Instruction::Addiu {
            rt: Reg::S0,
            rs: Reg::S0,
            imm: -1,
        }); // 0x08
        asm.bne(Reg::S0, Reg::ZERO, "head"); // 0x0c
        asm.push(Instruction::Break { code: 0 }); // 0x10
        let image = asm.assemble().unwrap();
        let extent = FunctionExtent::new("main", 0x0040_0000, image.end());
        (image, extent)
    }

    #[test]
    fn loop_blocks_and_edges() {
        let (image, extent) = loop_image();
        let cfg = FunctionCfg::build(&image, &extent).unwrap();
        // Blocks: [init], [head..bne], [break].
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(cfg.blocks()[0].addrs(), &[0x0040_0000]);
        assert_eq!(
            cfg.blocks()[1].addrs(),
            &[0x0040_0004, 0x0040_0008, 0x0040_000c]
        );
        assert_eq!(cfg.blocks()[2].addrs(), &[0x0040_0010]);
        assert_eq!(cfg.succs()[0], vec![1]);
        // Back edge first (branch target), then fall-through.
        assert_eq!(cfg.succs()[1], vec![1, 2]);
        assert!(cfg.succs()[2].is_empty());
        assert_eq!(cfg.terminals(), &[2]);
        assert!(cfg.exits().is_empty());
    }

    #[test]
    fn call_site_recorded_with_sequential_edge() {
        let mut asm = Assembler::new(0x0040_0000);
        asm.jal("callee"); // 0x00
        asm.push(Instruction::Break { code: 0 }); // 0x04
        asm.label("callee");
        asm.push(Instruction::Jr { rs: Reg::RA }); // 0x08
        let image = asm.assemble().unwrap();

        let main = FunctionExtent::new("main", 0x0040_0000, 0x0040_0008);
        let cfg = FunctionCfg::build(&image, &main).unwrap();
        assert_eq!(cfg.calls().len(), 1);
        let call = cfg.calls()[0];
        assert_eq!(call.site, 0x0040_0000);
        assert_eq!(call.callee_entry, 0x0040_0008);
        assert_eq!(cfg.succs()[call.block], vec![1]); // return edge

        let callee = FunctionExtent::new("callee", 0x0040_0008, 0x0040_000c);
        let ccfg = FunctionCfg::build(&image, &callee).unwrap();
        assert_eq!(ccfg.exits(), &[0]);
    }

    #[test]
    fn diamond_from_conditional_branch() {
        let mut asm = Assembler::new(0);
        asm.beq(Reg::T9, Reg::ZERO, "else"); // 0x00
        asm.push(Instruction::NOP); // 0x04 (then)
        asm.j("end"); // 0x08
        asm.label("else");
        asm.push(Instruction::NOP); // 0x0c
        asm.label("end");
        asm.push(Instruction::Break { code: 0 }); // 0x10
        let image = asm.assemble().unwrap();
        let cfg = FunctionCfg::build(&image, &FunctionExtent::new("main", 0, 0x14)).unwrap();
        assert_eq!(cfg.blocks().len(), 4);
        // Branch block -> {else, then}.
        let mut s = cfg.succs()[0].clone();
        s.sort_unstable();
        assert_eq!(s, vec![1, 2]);
        // then (j) -> end; else -> end.
        assert_eq!(cfg.succs()[1], vec![3]);
        assert_eq!(cfg.succs()[2], vec![3]);
    }

    #[test]
    fn branch_outside_function_is_rejected() {
        let mut asm = Assembler::new(0);
        asm.label("out");
        asm.push(Instruction::NOP); // 0x00 — not part of the function below
        asm.bne(Reg::T0, Reg::ZERO, "out"); // 0x04
        asm.push(Instruction::Break { code: 0 }); // 0x08
        let image = asm.assemble().unwrap();
        let result = FunctionCfg::build(&image, &FunctionExtent::new("f", 0x04, 0x0c));
        assert!(matches!(
            result,
            Err(CfgError::InterFunctionBranch {
                from: 0x04,
                target: 0
            })
        ));
    }

    #[test]
    fn extent_validation() {
        let e = FunctionExtent::new("f", 0x100, 0x104);
        assert_eq!(e.name(), "f");
        assert!(e.contains(0x100));
        assert!(!e.contains(0x104));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_extent_panics() {
        let _ = FunctionExtent::new("f", 0x100, 0x100);
    }
}
