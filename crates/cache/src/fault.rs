//! Permanent-fault maps over the physical cache blocks.

use rand::Rng;

use pwcet_prob::FaultModel;

use crate::geometry::CacheGeometry;

/// Which physical cache blocks `(set, way)` are disabled by permanent
/// faults.
///
/// Fault maps describe *raw* physical faults; protection mechanisms
/// interpret them (the Reliable Way masks faults in way 0, see
/// [`ReliableWayCache`](crate::ReliableWayCache)).
///
/// # Example
///
/// ```
/// use pwcet_cache::{CacheGeometry, FaultMap};
///
/// let g = CacheGeometry::paper_default();
/// let map = FaultMap::from_faulty_blocks(&g, [(0, 1), (0, 2)]);
/// assert_eq!(map.faulty_ways_in_set(0), 2);
/// assert_eq!(map.faulty_ways_in_set(1), 0);
/// assert!(map.is_faulty(0, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMap {
    sets: u32,
    ways: u32,
    faulty: Vec<bool>,
}

impl FaultMap {
    /// A map with no faults.
    pub fn fault_free(geometry: &CacheGeometry) -> Self {
        Self {
            sets: geometry.sets(),
            ways: geometry.ways(),
            faulty: vec![false; (geometry.sets() * geometry.ways()) as usize],
        }
    }

    /// A map with the listed `(set, way)` blocks faulty.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is out of range.
    pub fn from_faulty_blocks(
        geometry: &CacheGeometry,
        blocks: impl IntoIterator<Item = (u32, u32)>,
    ) -> Self {
        let mut map = Self::fault_free(geometry);
        for (set, way) in blocks {
            assert!(set < map.sets, "set {set} out of range");
            assert!(way < map.ways, "way {way} out of range");
            map.faulty[(set * map.ways + way) as usize] = true;
        }
        map
    }

    /// Samples a random fault map: every block fails independently with
    /// probability `pbf` (Eq. 1 applied per block).
    pub fn sample(geometry: &CacheGeometry, pbf: f64, rng: &mut impl Rng) -> Self {
        let mut map = Self::fault_free(geometry);
        for flag in &mut map.faulty {
            *flag = rng.gen_bool(pbf.clamp(0.0, 1.0));
        }
        map
    }

    /// Samples using the paper's fault model: `pbf` derived from the
    /// per-bit failure probability and the geometry's block size (Eq. 1).
    pub fn sample_with_model(
        geometry: &CacheGeometry,
        model: &FaultModel,
        rng: &mut impl Rng,
    ) -> Self {
        let pbf = model.block_failure_probability(geometry.block_bits());
        Self::sample(geometry, pbf, rng)
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Number of ways.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// `true` if the block at `(set, way)` is permanently faulty.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn is_faulty(&self, set: u32, way: u32) -> bool {
        assert!(set < self.sets && way < self.ways, "coordinates in range");
        self.faulty[(set * self.ways + way) as usize]
    }

    /// Number of faulty ways in `set`.
    pub fn faulty_ways_in_set(&self, set: u32) -> u32 {
        (0..self.ways).filter(|&w| self.is_faulty(set, w)).count() as u32
    }

    /// Number of faulty ways in `set`, ignoring way 0 (the hardened way of
    /// the RW mechanism, whose faults are masked).
    pub fn faulty_unprotected_ways_in_set(&self, set: u32) -> u32 {
        (1..self.ways).filter(|&w| self.is_faulty(set, w)).count() as u32
    }

    /// Total number of faulty blocks.
    pub fn total_faulty(&self) -> u32 {
        self.faulty.iter().filter(|&&f| f).count() as u32
    }

    /// Per-set faulty-way counts (`sets()` entries).
    pub fn per_set_counts(&self) -> Vec<u32> {
        (0..self.sets).map(|s| self.faulty_ways_in_set(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geometry() -> CacheGeometry {
        CacheGeometry::paper_default()
    }

    #[test]
    fn fault_free_has_no_faults() {
        let map = FaultMap::fault_free(&geometry());
        assert_eq!(map.total_faulty(), 0);
        assert_eq!(map.per_set_counts(), vec![0; 16]);
    }

    #[test]
    fn explicit_faults_are_recorded() {
        let map = FaultMap::from_faulty_blocks(&geometry(), [(3, 0), (3, 3), (7, 1)]);
        assert!(map.is_faulty(3, 0));
        assert!(map.is_faulty(3, 3));
        assert!(!map.is_faulty(3, 1));
        assert_eq!(map.faulty_ways_in_set(3), 2);
        assert_eq!(map.faulty_ways_in_set(7), 1);
        assert_eq!(map.total_faulty(), 3);
    }

    #[test]
    fn unprotected_count_ignores_way_zero() {
        let map = FaultMap::from_faulty_blocks(&geometry(), [(2, 0), (2, 1)]);
        assert_eq!(map.faulty_ways_in_set(2), 2);
        assert_eq!(map.faulty_unprotected_ways_in_set(2), 1);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let a = FaultMap::sample(&geometry(), 0.3, &mut rng_a);
        let b = FaultMap::sample(&geometry(), 0.3, &mut rng_b);
        assert_eq!(a, b);
    }

    #[test]
    fn sampling_rate_approximates_pbf() {
        let big = CacheGeometry::new(1024, 4, 16);
        let mut rng = StdRng::seed_from_u64(123);
        let map = FaultMap::sample(&big, 0.25, &mut rng);
        let rate = f64::from(map.total_faulty()) / f64::from(big.sets() * big.ways());
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn sampling_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            FaultMap::sample(&geometry(), 0.0, &mut rng).total_faulty(),
            0
        );
        assert_eq!(
            FaultMap::sample(&geometry(), 1.0, &mut rng).total_faulty(),
            64
        );
    }

    #[test]
    fn sample_with_model_uses_block_bits() {
        let model = FaultModel::new(1.0).unwrap(); // every bit fails
        let mut rng = StdRng::seed_from_u64(2);
        let map = FaultMap::sample_with_model(&geometry(), &model, &mut rng);
        assert_eq!(map.total_faulty(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_fault_panics() {
        let _ = FaultMap::from_faulty_blocks(&geometry(), [(16, 0)]);
    }
}
