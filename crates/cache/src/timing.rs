//! Fetch timing parameters.

use crate::machine::AccessOutcome;

/// Cycle costs of instruction fetches.
///
/// The paper fixes "cache and memory latencies" to 1 and 100 cycles
/// (§IV-A). This workspace charges `hit_cycles` for every fetch plus
/// `miss_penalty_cycles` for each miss, so one converted hit→miss costs
/// exactly `miss_penalty_cycles` extra — the unit of the fault miss map.
///
/// # Example
///
/// ```
/// use pwcet_cache::{AccessOutcome, CacheTiming};
///
/// let t = CacheTiming::paper_default();
/// assert_eq!(t.cycles_for(AccessOutcome::Hit), 1);
/// assert_eq!(t.cycles_for(AccessOutcome::Miss), 101);
/// assert_eq!(t.miss_penalty_cycles(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheTiming {
    hit_cycles: u64,
    miss_penalty_cycles: u64,
}

impl CacheTiming {
    /// Creates a timing model.
    pub fn new(hit_cycles: u64, miss_penalty_cycles: u64) -> Self {
        Self {
            hit_cycles,
            miss_penalty_cycles,
        }
    }

    /// The paper's parameters: 1-cycle cache, 100-cycle memory.
    pub fn paper_default() -> Self {
        Self::new(1, 100)
    }

    /// Cycles charged for every fetch (the cache latency).
    pub fn hit_cycles(&self) -> u64 {
        self.hit_cycles
    }

    /// Extra cycles charged per miss (the memory latency).
    pub fn miss_penalty_cycles(&self) -> u64 {
        self.miss_penalty_cycles
    }

    /// Total cycles for one fetch with the given outcome.
    pub fn cycles_for(&self, outcome: AccessOutcome) -> u64 {
        match outcome {
            AccessOutcome::Hit => self.hit_cycles,
            AccessOutcome::Miss => self.hit_cycles + self.miss_penalty_cycles,
        }
    }

    /// Total cycles for a run of `fetches` fetches of which `misses`
    /// missed.
    pub fn total_cycles(&self, fetches: u64, misses: u64) -> u64 {
        self.hit_cycles * fetches + self.miss_penalty_cycles * misses
    }
}

impl Default for CacheTiming {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_compose() {
        let t = CacheTiming::paper_default();
        assert_eq!(t.total_cycles(10, 0), 10);
        assert_eq!(t.total_cycles(10, 3), 310);
        assert_eq!(
            t.total_cycles(2, 1),
            t.cycles_for(AccessOutcome::Hit) + t.cycles_for(AccessOutcome::Miss)
        );
    }

    #[test]
    fn custom_latencies() {
        let t = CacheTiming::new(2, 50);
        assert_eq!(t.cycles_for(AccessOutcome::Miss), 52);
        assert_eq!(t.total_cycles(4, 2), 108);
    }
}
