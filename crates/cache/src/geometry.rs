//! Cache configuration and address mapping.

use std::fmt;

/// A memory block identifier: the instruction address divided by the block
/// size. Two addresses in the same memory block always hit together.
///
/// # Example
///
/// ```
/// use pwcet_cache::CacheGeometry;
///
/// let g = CacheGeometry::paper_default();
/// assert_eq!(g.block_of(0x0040_0000), g.block_of(0x0040_000c));
/// assert_ne!(g.block_of(0x0040_0000), g.block_of(0x0040_0010));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemBlock(pub u32);

impl fmt::Display for MemBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{:#x}", self.0)
    }
}

/// A set-associative cache configuration (§II-A): `S` sets, `W` ways,
/// blocks of `K` bits.
///
/// The paper's experiments fix 1 KB / 4 ways / 16-byte lines ⇒ 16 sets
/// ([`paper_default`](Self::paper_default)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    sets: u32,
    ways: u32,
    block_bytes: u32,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` and `block_bytes` are non-zero powers of two
    /// (address mapping uses bit slicing) and `ways ≥ 1`.
    pub fn new(sets: u32, ways: u32, block_bytes: u32) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(ways >= 1, "cache needs at least one way");
        Self {
            sets,
            ways,
            block_bytes,
        }
    }

    /// The paper's configuration (§IV-A): 1 KB, 4-way, 16-byte lines,
    /// 16 sets.
    pub fn paper_default() -> Self {
        Self::new(16, 4, 16)
    }

    /// Number of sets `S`.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Associativity `W`.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Block size `K` in bits (the exponent of Eq. 1).
    pub fn block_bits(&self) -> u32 {
        self.block_bytes * 8
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u32 {
        self.sets * self.ways * self.block_bytes
    }

    /// The memory block containing `addr`.
    pub fn block_of(&self, addr: u32) -> MemBlock {
        MemBlock(addr / self.block_bytes)
    }

    /// The set index `addr` maps to.
    pub fn set_of(&self, addr: u32) -> u32 {
        self.block_of(addr).0 % self.sets
    }

    /// The set index a memory block maps to.
    pub fn set_of_block(&self, block: MemBlock) -> u32 {
        block.0 % self.sets
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}B {}-way ({} sets x {}B lines)",
            self.capacity_bytes(),
            self.ways,
            self.sets,
            self.block_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_1kb_16_sets() {
        let g = CacheGeometry::paper_default();
        assert_eq!(g.sets(), 16);
        assert_eq!(g.ways(), 4);
        assert_eq!(g.block_bytes(), 16);
        assert_eq!(g.block_bits(), 128);
        assert_eq!(g.capacity_bytes(), 1024);
    }

    #[test]
    fn block_and_set_mapping() {
        let g = CacheGeometry::paper_default();
        assert_eq!(g.block_of(0), MemBlock(0));
        assert_eq!(g.block_of(15), MemBlock(0));
        assert_eq!(g.block_of(16), MemBlock(1));
        assert_eq!(g.set_of(0), 0);
        assert_eq!(g.set_of(16), 1);
        // 16 sets * 16 bytes = 256-byte stride wraps to the same set.
        assert_eq!(g.set_of(0x100), 0);
        assert_eq!(g.set_of_block(MemBlock(16)), 0);
    }

    #[test]
    fn display_mentions_shape() {
        let g = CacheGeometry::paper_default();
        assert_eq!(g.to_string(), "1024B 4-way (16 sets x 16B lines)");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = CacheGeometry::new(3, 4, 16);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        let _ = CacheGeometry::new(16, 0, 16);
    }
}
