//! Cache configuration and address mapping.

use std::fmt;

/// A memory block identifier: the instruction address divided by the block
/// size. Two addresses in the same memory block always hit together.
///
/// # Example
///
/// ```
/// use pwcet_cache::CacheGeometry;
///
/// let g = CacheGeometry::paper_default();
/// assert_eq!(g.block_of(0x0040_0000), g.block_of(0x0040_000c));
/// assert_ne!(g.block_of(0x0040_0000), g.block_of(0x0040_0010));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemBlock(pub u32);

impl fmt::Display for MemBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{:#x}", self.0)
    }
}

/// A set-associative cache configuration (§II-A): `S` sets, `W` ways,
/// blocks of `K` bits.
///
/// The paper's experiments fix 1 KB / 4 ways / 16-byte lines ⇒ 16 sets
/// ([`paper_default`](Self::paper_default)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    sets: u32,
    ways: u32,
    block_bytes: u32,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` and `block_bytes` are non-zero powers of two
    /// (address mapping uses bit slicing) and `ways ≥ 1`.
    pub fn new(sets: u32, ways: u32, block_bytes: u32) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(ways >= 1, "cache needs at least one way");
        Self {
            sets,
            ways,
            block_bytes,
        }
    }

    /// The paper's configuration (§IV-A): 1 KB, 4-way, 16-byte lines,
    /// 16 sets.
    pub fn paper_default() -> Self {
        Self::new(16, 4, 16)
    }

    /// Number of sets `S`.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Associativity `W`.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Block size `K` in bits (the exponent of Eq. 1).
    pub fn block_bits(&self) -> u32 {
        self.block_bytes * 8
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u32 {
        self.sets * self.ways * self.block_bytes
    }

    /// The memory block containing `addr`.
    pub fn block_of(&self, addr: u32) -> MemBlock {
        MemBlock(addr / self.block_bytes)
    }

    /// The set index `addr` maps to.
    pub fn set_of(&self, addr: u32) -> u32 {
        self.block_of(addr).0 % self.sets
    }

    /// The set index a memory block maps to.
    pub fn set_of_block(&self, block: MemBlock) -> u32 {
        block.0 % self.sets
    }

    /// The same sets and block size with a different associativity — the
    /// step function of a [`GeometryLattice`].
    ///
    /// # Panics
    ///
    /// Panics when `ways == 0`.
    #[must_use]
    pub fn with_ways(self, ways: u32) -> Self {
        Self::new(self.sets, ways, self.block_bytes)
    }

    /// `true` when this geometry's analysis artifacts are derivable from
    /// `wider`'s: identical sets and block size, at most as many ways.
    /// Cache sets evolve independently under LRU and the abstract domain
    /// never consults the nominal way count, so the converged states of
    /// the wider geometry project exactly onto this one
    /// (`Acs::truncate` in `pwcet-analysis`).
    pub fn derivable_from(&self, wider: &CacheGeometry) -> bool {
        self.sets == wider.sets && self.block_bytes == wider.block_bytes && self.ways <= wider.ways
    }
}

/// A family of cache geometries sharing sets and block size, ordered by
/// associativity — the unit of cross-geometry warm starts.
///
/// Design-space exploration sweeps associativity at fixed capacity-per-way:
/// within one lattice a single cold fixpoint at the widest member seeds
/// every narrower member ([`CacheGeometry::derivable_from`]).
///
/// # Example
///
/// ```
/// use pwcet_cache::GeometryLattice;
///
/// let lattice = GeometryLattice::new(16, 16, &[1, 4, 2]);
/// assert_eq!(lattice.widest().ways(), 4);
/// let ways: Vec<u32> = lattice.members().map(|g| g.ways()).collect();
/// assert_eq!(ways, [4, 2, 1], "widest first");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometryLattice {
    sets: u32,
    block_bytes: u32,
    /// Way counts, strictly descending.
    ways: Vec<u32>,
}

impl GeometryLattice {
    /// A lattice over the given way counts (deduplicated, any order).
    ///
    /// # Panics
    ///
    /// Panics on an empty way list, a zero way count, or invalid
    /// `sets`/`block_bytes` (see [`CacheGeometry::new`]).
    pub fn new(sets: u32, block_bytes: u32, ways: &[u32]) -> Self {
        assert!(!ways.is_empty(), "a lattice needs at least one member");
        let mut ways: Vec<u32> = ways.to_vec();
        ways.sort_unstable_by(|a, b| b.cmp(a));
        ways.dedup();
        // Validate the shape once through the strictest constructor.
        let _ = CacheGeometry::new(sets, ways[0], block_bytes);
        assert!(*ways.last().unwrap() >= 1, "cache needs at least one way");
        Self {
            sets,
            block_bytes,
            ways,
        }
    }

    /// The paper's 16-set, 16-byte-line family over every associativity
    /// `1..=4` (the 4-way member is the paper's configuration).
    pub fn paper_default() -> Self {
        Self::new(16, 16, &[4, 3, 2, 1])
    }

    /// The widest member — the one whose cold fixpoint seeds the rest.
    pub fn widest(&self) -> CacheGeometry {
        CacheGeometry::new(self.sets, self.ways[0], self.block_bytes)
    }

    /// All members, widest first (the derivation order).
    pub fn members(&self) -> impl Iterator<Item = CacheGeometry> + '_ {
        self.ways
            .iter()
            .map(|&w| CacheGeometry::new(self.sets, w, self.block_bytes))
    }

    /// The way counts, widest first.
    pub fn way_counts(&self) -> &[u32] {
        &self.ways
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ways.len()
    }

    /// `false` — a lattice always has at least one member; kept for the
    /// conventional pairing with [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        self.ways.is_empty()
    }

    /// `true` when `geometry` belongs to this lattice.
    pub fn contains(&self, geometry: &CacheGeometry) -> bool {
        geometry.sets() == self.sets
            && geometry.block_bytes() == self.block_bytes
            && self.ways.contains(&geometry.ways())
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}B {}-way ({} sets x {}B lines)",
            self.capacity_bytes(),
            self.ways,
            self.sets,
            self.block_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_1kb_16_sets() {
        let g = CacheGeometry::paper_default();
        assert_eq!(g.sets(), 16);
        assert_eq!(g.ways(), 4);
        assert_eq!(g.block_bytes(), 16);
        assert_eq!(g.block_bits(), 128);
        assert_eq!(g.capacity_bytes(), 1024);
    }

    #[test]
    fn block_and_set_mapping() {
        let g = CacheGeometry::paper_default();
        assert_eq!(g.block_of(0), MemBlock(0));
        assert_eq!(g.block_of(15), MemBlock(0));
        assert_eq!(g.block_of(16), MemBlock(1));
        assert_eq!(g.set_of(0), 0);
        assert_eq!(g.set_of(16), 1);
        // 16 sets * 16 bytes = 256-byte stride wraps to the same set.
        assert_eq!(g.set_of(0x100), 0);
        assert_eq!(g.set_of_block(MemBlock(16)), 0);
    }

    #[test]
    fn display_mentions_shape() {
        let g = CacheGeometry::paper_default();
        assert_eq!(g.to_string(), "1024B 4-way (16 sets x 16B lines)");
    }

    #[test]
    fn with_ways_keeps_sets_and_block_size() {
        let g = CacheGeometry::paper_default().with_ways(2);
        assert_eq!((g.sets(), g.ways(), g.block_bytes()), (16, 2, 16));
    }

    #[test]
    fn derivability_requires_same_family() {
        let wide = CacheGeometry::new(16, 4, 16);
        assert!(CacheGeometry::new(16, 2, 16).derivable_from(&wide));
        assert!(wide.derivable_from(&wide));
        assert!(!CacheGeometry::new(16, 4, 16).derivable_from(&CacheGeometry::new(16, 2, 16)));
        assert!(!CacheGeometry::new(8, 2, 16).derivable_from(&wide));
        assert!(!CacheGeometry::new(16, 2, 32).derivable_from(&wide));
    }

    #[test]
    fn lattice_orders_and_dedups_members() {
        let lattice = GeometryLattice::new(16, 16, &[2, 4, 2, 1]);
        assert_eq!(lattice.way_counts(), &[4, 2, 1]);
        assert_eq!(lattice.len(), 3);
        assert!(!lattice.is_empty());
        assert_eq!(lattice.widest(), CacheGeometry::new(16, 4, 16));
        for member in lattice.members() {
            assert!(member.derivable_from(&lattice.widest()));
            assert!(lattice.contains(&member));
        }
        assert!(!lattice.contains(&CacheGeometry::new(16, 3, 16)));
        assert!(!lattice.contains(&CacheGeometry::new(8, 2, 16)));
    }

    #[test]
    fn paper_lattice_spans_every_associativity() {
        let lattice = GeometryLattice::paper_default();
        assert_eq!(lattice.way_counts(), &[4, 3, 2, 1]);
        assert_eq!(lattice.widest(), CacheGeometry::paper_default());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_lattice_panics() {
        let _ = GeometryLattice::new(16, 16, &[]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = CacheGeometry::new(3, 4, 16);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        let _ = CacheGeometry::new(16, 0, 16);
    }
}
