//! A concrete LRU stack for one cache set.

use crate::geometry::MemBlock;

/// The LRU state of one cache set with a (possibly fault-reduced)
/// capacity.
///
/// Position 0 is the most-recently-used (MRU) block. Disabling faulty
/// blocks shrinks the capacity — the paper's §II-A observation that the
/// *position* of faulty ways is irrelevant under LRU.
///
/// # Example
///
/// ```
/// use pwcet_cache::{LruSet, MemBlock};
///
/// let mut set = LruSet::new(2);
/// assert!(!set.access(MemBlock(1))); // miss
/// assert!(!set.access(MemBlock(2))); // miss
/// assert!(set.access(MemBlock(1)));  // hit, renewed
/// assert!(!set.access(MemBlock(3))); // miss, evicts 2
/// assert!(!set.access(MemBlock(2))); // miss again
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LruSet {
    capacity: usize,
    stack: Vec<MemBlock>,
}

impl LruSet {
    /// Creates an empty set holding at most `capacity` blocks (0 is
    /// allowed: a fully-faulty set that can cache nothing).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            stack: Vec::with_capacity(capacity),
        }
    }

    /// The number of usable ways.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The resident blocks, MRU first.
    pub fn stack(&self) -> &[MemBlock] {
        &self.stack
    }

    /// `true` if `block` is currently resident.
    pub fn contains(&self, block: MemBlock) -> bool {
        self.stack.contains(&block)
    }

    /// Accesses `block`: returns `true` on hit. Updates recency; on miss
    /// the LRU block is evicted if the set is full.
    pub fn access(&mut self, block: MemBlock) -> bool {
        if let Some(pos) = self.stack.iter().position(|&b| b == block) {
            self.stack.remove(pos);
            self.stack.insert(0, block);
            return true;
        }
        if self.capacity == 0 {
            return false;
        }
        if self.stack.len() == self.capacity {
            self.stack.pop();
        }
        self.stack.insert(0, block);
        false
    }

    /// Empties the set.
    pub fn clear(&mut self) {
        self.stack.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mru_ordering_maintained() {
        let mut set = LruSet::new(4);
        for b in [1, 2, 3, 4] {
            assert!(!set.access(MemBlock(b)));
        }
        assert_eq!(
            set.stack(),
            &[MemBlock(4), MemBlock(3), MemBlock(2), MemBlock(1)]
        );
        assert!(set.access(MemBlock(2)));
        assert_eq!(
            set.stack(),
            &[MemBlock(2), MemBlock(4), MemBlock(3), MemBlock(1)]
        );
    }

    #[test]
    fn eviction_removes_lru() {
        let mut set = LruSet::new(2);
        set.access(MemBlock(1));
        set.access(MemBlock(2));
        set.access(MemBlock(3)); // evicts 1
        assert!(!set.contains(MemBlock(1)));
        assert!(set.contains(MemBlock(2)));
        assert!(set.contains(MemBlock(3)));
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut set = LruSet::new(0);
        assert!(!set.access(MemBlock(1)));
        assert!(!set.access(MemBlock(1)));
        assert!(set.stack().is_empty());
    }

    #[test]
    fn repeated_access_always_hits_once_loaded() {
        let mut set = LruSet::new(1);
        assert!(!set.access(MemBlock(7)));
        for _ in 0..10 {
            assert!(set.access(MemBlock(7)));
        }
    }

    #[test]
    fn clear_resets_state() {
        let mut set = LruSet::new(2);
        set.access(MemBlock(1));
        set.clear();
        assert!(!set.contains(MemBlock(1)));
        assert!(!set.access(MemBlock(1)));
    }

    #[test]
    fn stack_never_exceeds_capacity() {
        let mut set = LruSet::new(3);
        for b in 0..100 {
            set.access(MemBlock(b % 7));
            assert!(set.stack().len() <= 3);
        }
    }
}
