//! Executable cache machines for the three protection levels.

use crate::fault::FaultMap;
use crate::geometry::{CacheGeometry, MemBlock};
use crate::lru::LruSet;

/// The result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// Served from the cache (or the SRB).
    Hit,
    /// Fetched from memory.
    Miss,
}

impl AccessOutcome {
    /// `true` for [`Hit`](AccessOutcome::Hit).
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// `true` for [`Miss`](AccessOutcome::Miss).
    pub fn is_miss(self) -> bool {
        matches!(self, AccessOutcome::Miss)
    }
}

/// A trace-driven instruction cache simulator.
///
/// Implementations: [`UnprotectedCache`], [`ReliableWayCache`],
/// [`SrbCache`]. All three share the access-counting API.
pub trait CacheSim {
    /// Performs one instruction fetch at `addr`.
    fn access(&mut self, addr: u32) -> AccessOutcome;

    /// The configured geometry.
    fn geometry(&self) -> &CacheGeometry;

    /// Accesses so far.
    fn accesses(&self) -> u64;

    /// Misses so far.
    fn misses(&self) -> u64;

    /// Empties all cache state and resets counters.
    fn reset(&mut self);

    /// Hits so far.
    fn hits(&self) -> u64 {
        self.accesses() - self.misses()
    }
}

/// Shared state of the set array with per-set usable capacities.
#[derive(Debug, Clone)]
struct SetArray {
    geometry: CacheGeometry,
    sets: Vec<LruSet>,
    accesses: u64,
    misses: u64,
}

impl SetArray {
    fn new(geometry: CacheGeometry, capacities: Vec<usize>) -> Self {
        assert_eq!(capacities.len(), geometry.sets() as usize);
        Self {
            geometry,
            sets: capacities.into_iter().map(LruSet::new).collect(),
            accesses: 0,
            misses: 0,
        }
    }

    fn set_for(&mut self, addr: u32) -> (&mut LruSet, MemBlock) {
        let block = self.geometry.block_of(addr);
        let set = self.geometry.set_of(addr) as usize;
        (&mut self.sets[set], block)
    }

    fn reset(&mut self) {
        self.sets.iter_mut().for_each(LruSet::clear);
        self.accesses = 0;
        self.misses = 0;
    }
}

/// A faulty cache with no protection (§II): faulty ways are disabled, so a
/// set with `f` faults keeps an LRU stack of `W − f` blocks; a fully
/// faulty set can cache nothing.
///
/// # Example
///
/// ```
/// use pwcet_cache::{CacheGeometry, CacheSim, FaultMap, UnprotectedCache};
///
/// let g = CacheGeometry::paper_default();
/// // All four blocks of set 0 faulty: every access to set 0 misses.
/// let faults = FaultMap::from_faulty_blocks(&g, (0..4).map(|w| (0, w)));
/// let mut cache = UnprotectedCache::new(g, &faults);
/// assert!(cache.access(0x0000).is_miss());
/// assert!(cache.access(0x0000).is_miss()); // can never be cached
/// ```
#[derive(Debug, Clone)]
pub struct UnprotectedCache {
    array: SetArray,
}

impl UnprotectedCache {
    /// Creates the machine for a given fault map.
    pub fn new(geometry: CacheGeometry, faults: &FaultMap) -> Self {
        let capacities = (0..geometry.sets())
            .map(|s| (geometry.ways() - faults.faulty_ways_in_set(s)) as usize)
            .collect();
        Self {
            array: SetArray::new(geometry, capacities),
        }
    }
}

impl CacheSim for UnprotectedCache {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        self.array.accesses += 1;
        let (set, block) = self.array.set_for(addr);
        if set.access(block) {
            AccessOutcome::Hit
        } else {
            self.array.misses += 1;
            AccessOutcome::Miss
        }
    }

    fn geometry(&self) -> &CacheGeometry {
        &self.array.geometry
    }

    fn accesses(&self) -> u64 {
        self.array.accesses
    }

    fn misses(&self) -> u64 {
        self.array.misses
    }

    fn reset(&mut self) {
        self.array.reset();
    }
}

/// The Reliable Way machine (§III-A1): way 0 of every set is hardened, so
/// its faults are masked and every set keeps at least one usable way — the
/// worst case degenerates to a direct-mapped cache of `S` blocks, never
/// worse.
#[derive(Debug, Clone)]
pub struct ReliableWayCache {
    array: SetArray,
}

impl ReliableWayCache {
    /// Creates the machine for a given (raw, unmasked) fault map.
    pub fn new(geometry: CacheGeometry, faults: &FaultMap) -> Self {
        let capacities = (0..geometry.sets())
            .map(|s| (geometry.ways() - faults.faulty_unprotected_ways_in_set(s)) as usize)
            .collect();
        Self {
            array: SetArray::new(geometry, capacities),
        }
    }
}

impl CacheSim for ReliableWayCache {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        self.array.accesses += 1;
        let (set, block) = self.array.set_for(addr);
        if set.access(block) {
            AccessOutcome::Hit
        } else {
            self.array.misses += 1;
            AccessOutcome::Miss
        }
    }

    fn geometry(&self) -> &CacheGeometry {
        &self.array.geometry
    }

    fn accesses(&self) -> u64 {
        self.array.accesses
    }

    fn misses(&self) -> u64 {
        self.array.misses
    }

    fn reset(&mut self) {
        self.array.reset();
    }
}

/// The Shared Reliable Buffer machine (§III-A2): one hardened block-sized
/// buffer shared by all sets. The look-up is modified — the SRB is
/// consulted *only* when every block of the referenced set is faulty; on
/// an SRB miss the block is loaded into the SRB. Sets with at least one
/// usable block never touch the SRB.
#[derive(Debug, Clone)]
pub struct SrbCache {
    array: SetArray,
    srb: Option<MemBlock>,
    srb_hits: u64,
}

impl SrbCache {
    /// Creates the machine for a given fault map.
    pub fn new(geometry: CacheGeometry, faults: &FaultMap) -> Self {
        let capacities = (0..geometry.sets())
            .map(|s| (geometry.ways() - faults.faulty_ways_in_set(s)) as usize)
            .collect();
        Self {
            array: SetArray::new(geometry, capacities),
            srb: None,
            srb_hits: 0,
        }
    }

    /// Hits served by the SRB (a subset of [`hits`](CacheSim::hits)).
    pub fn srb_hits(&self) -> u64 {
        self.srb_hits
    }
}

impl CacheSim for SrbCache {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        self.array.accesses += 1;
        let (set, block) = self.array.set_for(addr);
        if set.capacity() == 0 {
            // All blocks of this set are faulty: route through the SRB.
            if self.srb == Some(block) {
                self.srb_hits += 1;
                return AccessOutcome::Hit;
            }
            self.srb = Some(block);
            self.array.misses += 1;
            return AccessOutcome::Miss;
        }
        if set.access(block) {
            AccessOutcome::Hit
        } else {
            self.array.misses += 1;
            AccessOutcome::Miss
        }
    }

    fn geometry(&self) -> &CacheGeometry {
        &self.array.geometry
    }

    fn accesses(&self) -> u64 {
        self.array.accesses
    }

    fn misses(&self) -> u64 {
        self.array.misses
    }

    fn reset(&mut self) {
        self.array.reset();
        self.srb = None;
        self.srb_hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> CacheGeometry {
        CacheGeometry::paper_default()
    }

    /// Addresses of distinct blocks that all map to set 0 (256-byte
    /// stride in the paper geometry).
    fn set0_addr(i: u32) -> u32 {
        i * 256
    }

    #[test]
    fn unprotected_fault_free_behaves_as_lru() {
        let mut c = UnprotectedCache::new(geometry(), &FaultMap::fault_free(&geometry()));
        // Fill set 0 with 4 blocks, then re-access the first: still a hit.
        for i in 0..4 {
            assert!(c.access(set0_addr(i)).is_miss());
        }
        assert!(c.access(set0_addr(0)).is_hit());
        // A 5th block evicts the LRU (block 1).
        assert!(c.access(set0_addr(4)).is_miss());
        assert!(c.access(set0_addr(1)).is_miss());
        assert_eq!(c.accesses(), 7);
        assert_eq!(c.misses(), 6);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn faulty_ways_shrink_the_set() {
        let faults = FaultMap::from_faulty_blocks(&geometry(), [(0, 1), (0, 3)]);
        let mut c = UnprotectedCache::new(geometry(), &faults);
        // Capacity 2: three distinct blocks thrash.
        assert!(c.access(set0_addr(0)).is_miss());
        assert!(c.access(set0_addr(1)).is_miss());
        assert!(c.access(set0_addr(0)).is_hit());
        assert!(c.access(set0_addr(2)).is_miss()); // evicts 1
        assert!(c.access(set0_addr(1)).is_miss());
    }

    #[test]
    fn fully_faulty_set_never_hits_unprotected() {
        let faults = FaultMap::from_faulty_blocks(&geometry(), (0..4).map(|w| (0, w)));
        let mut c = UnprotectedCache::new(geometry(), &faults);
        for _ in 0..5 {
            assert!(c.access(set0_addr(0)).is_miss());
        }
        // Other sets are unaffected.
        assert!(c.access(16).is_miss());
        assert!(c.access(16).is_hit());
    }

    #[test]
    fn reliable_way_masks_way0_faults() {
        // All four ways "faulty", but way 0 is hardened: capacity 1.
        let faults = FaultMap::from_faulty_blocks(&geometry(), (0..4).map(|w| (0, w)));
        let mut c = ReliableWayCache::new(geometry(), &faults);
        assert!(c.access(set0_addr(0)).is_miss());
        assert!(c.access(set0_addr(0)).is_hit()); // direct-mapped behavior
        assert!(c.access(set0_addr(1)).is_miss());
        assert!(c.access(set0_addr(0)).is_miss());
    }

    #[test]
    fn reliable_way_never_worse_than_unprotected() {
        let faults = FaultMap::from_faulty_blocks(
            &geometry(),
            [(0, 0), (0, 1), (0, 2), (0, 3), (1, 2), (2, 0)],
        );
        let trace: Vec<u32> = (0..200).map(|i| (i % 7) * 256 + (i % 3) * 16).collect();
        let mut unp = UnprotectedCache::new(geometry(), &faults);
        let mut rw = ReliableWayCache::new(geometry(), &faults);
        for &a in &trace {
            unp.access(a);
            rw.access(a);
        }
        assert!(rw.misses() <= unp.misses());
    }

    #[test]
    fn srb_serves_fully_faulty_set() {
        let faults = FaultMap::from_faulty_blocks(&geometry(), (0..4).map(|w| (0, w)));
        let mut c = SrbCache::new(geometry(), &faults);
        // Sequential fetches within one 16-byte block: 1 miss + 3 hits.
        assert!(c.access(0x0).is_miss());
        assert!(c.access(0x4).is_hit());
        assert!(c.access(0x8).is_hit());
        assert!(c.access(0xc).is_hit());
        assert_eq!(c.srb_hits(), 3);
        // A different block of set 0 reloads the SRB.
        assert!(c.access(set0_addr(1)).is_miss());
        assert!(c.access(0x0).is_miss());
    }

    #[test]
    fn srb_not_used_by_healthy_sets() {
        let faults = FaultMap::from_faulty_blocks(&geometry(), (0..4).map(|w| (0, w)));
        let mut c = SrbCache::new(geometry(), &faults);
        assert!(c.access(0x0).is_miss()); // SRB now holds block 0 (set 0)
        assert!(c.access(16).is_miss()); // set 1 is healthy: normal miss
        assert!(c.access(16).is_hit());
        assert_eq!(c.srb_hits(), 0);
        assert!(c.access(0x0).is_hit()); // SRB kept its block meanwhile
        assert_eq!(c.srb_hits(), 1);
    }

    #[test]
    fn srb_never_worse_than_unprotected() {
        let faults = FaultMap::from_faulty_blocks(
            &geometry(),
            [
                (0, 0),
                (0, 1),
                (0, 2),
                (0, 3),
                (5, 0),
                (5, 1),
                (5, 2),
                (5, 3),
            ],
        );
        let trace: Vec<u32> = (0..400).map(|i| (i % 9) * 4 + (i % 5) * 256).collect();
        let mut unp = UnprotectedCache::new(geometry(), &faults);
        let mut srb = SrbCache::new(geometry(), &faults);
        for &a in &trace {
            unp.access(a);
            srb.access(a);
        }
        assert!(srb.misses() <= unp.misses());
    }

    #[test]
    fn machines_agree_when_fault_free() {
        let faults = FaultMap::fault_free(&geometry());
        let trace: Vec<u32> = (0..500).map(|i| (i * 12) % 2048).collect();
        let mut unp = UnprotectedCache::new(geometry(), &faults);
        let mut rw = ReliableWayCache::new(geometry(), &faults);
        let mut srb = SrbCache::new(geometry(), &faults);
        for &a in &trace {
            let u = unp.access(a);
            assert_eq!(u, rw.access(a));
            assert_eq!(u, srb.access(a));
        }
        assert_eq!(unp.misses(), rw.misses());
        assert_eq!(unp.misses(), srb.misses());
    }

    #[test]
    fn reset_clears_state_and_counters() {
        let mut c = UnprotectedCache::new(geometry(), &FaultMap::fault_free(&geometry()));
        c.access(0);
        c.access(0);
        c.reset();
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.misses(), 0);
        assert!(c.access(0).is_miss());
    }
}
