//! Instruction-cache substrate: geometry, permanent faults, and concrete
//! machines.
//!
//! This crate models the hardware of §II-A and §III-A of the paper:
//!
//! * [`CacheGeometry`] — a set-associative instruction cache with LRU
//!   replacement (`S` sets × `W` ways × `K`-bit blocks);
//! * [`FaultMap`] — which cache blocks are disabled by permanent faults
//!   (a block with ≥ 1 faulty bit is disabled; LRU-stack and control bits
//!   are fault-free by assumption);
//! * three executable cache machines implementing [`CacheSim`]:
//!   [`UnprotectedCache`] (faulty ways shrink the LRU stack),
//!   [`ReliableWayCache`] (way 0 is hardened — §III-A1), and
//!   [`SrbCache`] (a shared reliable buffer consulted only when *all*
//!   blocks of the referenced set are faulty — §III-A2).
//!
//! The machines are used by `pwcet-sim` for trace-driven validation of the
//! static bounds computed in `pwcet-core`.
//!
//! # Example
//!
//! ```
//! use pwcet_cache::{CacheGeometry, CacheSim, FaultMap, UnprotectedCache};
//!
//! let geometry = CacheGeometry::paper_default(); // 1 KB: 16 sets × 4 ways × 16 B
//! let faults = FaultMap::fault_free(&geometry);
//! let mut cache = UnprotectedCache::new(geometry, &faults);
//! assert!(cache.access(0x0040_0000).is_miss());
//! assert!(cache.access(0x0040_0004).is_hit()); // same 16-byte block
//! ```

mod fault;
mod geometry;
mod lru;
mod machine;
mod timing;

pub use fault::FaultMap;
pub use geometry::{CacheGeometry, GeometryLattice, MemBlock};
pub use lru::LruSet;
pub use machine::{AccessOutcome, CacheSim, ReliableWayCache, SrbCache, UnprotectedCache};
pub use timing::CacheTiming;
