//! Conflict-set persistence analysis.
//!
//! A cache set holding at most `assoc` distinct blocks over a scope can
//! never evict any of them while execution stays inside the scope: with
//! LRU, evicting a block requires `assoc` *other* blocks of the same set
//! to be accessed after it, and only `|conflicts| − 1 < assoc` exist. All
//! references to such a set inside the scope are therefore *persistent*:
//! at most one miss per scope entry.
//!
//! This per-set counting criterion is immune to the known unsoundness of
//! the original ACS-based persistence domain and matches how Heptane
//! bounds first-miss references.

use std::collections::{BTreeSet, HashMap};

use pwcet_cache::{CacheGeometry, MemBlock};
use pwcet_cfg::{ExpandedCfg, LoopId};

use crate::chmc::Scope;

/// For every reference `(node, index)`, the *outermost* scope in which the
/// referenced block is persistent (`None` if no scope qualifies).
///
/// Outermost is best: its entry count — and hence the first-miss budget —
/// is smallest.
pub fn persistent_scopes(
    cfg: &ExpandedCfg,
    geometry: &CacheGeometry,
    assoc: u32,
) -> Vec<Vec<Option<Scope>>> {
    if assoc == 0 {
        return cfg
            .nodes()
            .iter()
            .map(|n| vec![None; n.addrs().len()])
            .collect();
    }

    // Distinct blocks per cache set, for the program scope…
    let mut program_conflicts: HashMap<u32, BTreeSet<MemBlock>> = HashMap::new();
    for node in cfg.nodes() {
        for &addr in node.addrs() {
            let block = geometry.block_of(addr);
            program_conflicts
                .entry(geometry.set_of_block(block))
                .or_default()
                .insert(block);
        }
    }
    // …and per loop scope.
    let mut loop_conflicts: Vec<HashMap<u32, BTreeSet<MemBlock>>> =
        vec![HashMap::new(); cfg.loops().len()];
    for l in cfg.loops() {
        for &node in &l.nodes {
            for &addr in cfg.node(node).addrs() {
                let block = geometry.block_of(addr);
                loop_conflicts[l.id]
                    .entry(geometry.set_of_block(block))
                    .or_default()
                    .insert(block);
            }
        }
    }

    let fits = |conflicts: &HashMap<u32, BTreeSet<MemBlock>>, set: u32| -> bool {
        conflicts
            .get(&set)
            .is_none_or(|blocks| blocks.len() <= assoc as usize)
    };

    cfg.nodes()
        .iter()
        .map(|node| {
            // Enclosing loops from outermost to innermost.
            let mut enclosing: Vec<LoopId> =
                cfg.loops_containing(node.id()).map(|l| l.id).collect();
            enclosing.reverse();
            node.addrs()
                .iter()
                .map(|&addr| {
                    let set = geometry.set_of(addr);
                    if fits(&program_conflicts, set) {
                        return Some(Scope::Program);
                    }
                    enclosing
                        .iter()
                        .find(|&&l| fits(&loop_conflicts[l], set))
                        .map(|&l| Some(Scope::Loop(l)))
                        .unwrap_or(None)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwcet_cfg::FunctionExtent;
    use pwcet_progen::{stmt, Program};

    fn build(program: Program) -> ExpandedCfg {
        let compiled = program.compile(0x0040_0000).expect("compiles");
        let extents: Vec<FunctionExtent> = compiled
            .functions()
            .iter()
            .map(|f| FunctionExtent::new(f.name(), f.entry(), f.end()))
            .collect();
        let bounds: Vec<(u32, u32)> = compiled
            .loop_bounds()
            .iter()
            .map(|lb| (lb.header, lb.bound))
            .collect();
        ExpandedCfg::build(compiled.image(), &extents, &bounds).expect("expands")
    }

    #[test]
    fn small_program_is_program_persistent() {
        // Whole program fits in the cache: every set sees ≤ 4 blocks.
        let cfg =
            build(Program::new("small").with_function("main", stmt::loop_(9, stmt::compute(8))));
        let g = CacheGeometry::paper_default();
        let scopes = persistent_scopes(&cfg, &g, 4);
        for node in cfg.nodes() {
            for (i, scope) in scopes[node.id()].iter().enumerate() {
                assert_eq!(
                    *scope,
                    Some(Scope::Program),
                    "node {} ref {i} should be program-persistent",
                    node.id()
                );
            }
        }
    }

    #[test]
    fn zero_assoc_has_no_persistence() {
        let cfg = build(Program::new("z").with_function("main", stmt::compute(2)));
        let g = CacheGeometry::paper_default();
        let scopes = persistent_scopes(&cfg, &g, 0);
        assert!(scopes.iter().flatten().all(|s| s.is_none()));
    }

    #[test]
    fn large_program_persists_only_in_inner_loops() {
        // A loop body much larger than the cache: program scope conflicts
        // exceed 4 blocks per set (64 blocks per 1 KB), but a small inner
        // loop still fits.
        let cfg = build(Program::new("big").with_function(
            "main",
            stmt::seq([
                stmt::compute(1200), // 300 blocks: floods every set
                stmt::loop_(10, stmt::compute(4)),
            ]),
        ));
        let g = CacheGeometry::paper_default();
        let scopes = persistent_scopes(&cfg, &g, 4);
        // Flat straight-line code cannot be program-persistent everywhere.
        let program_persistent = scopes
            .iter()
            .flatten()
            .filter(|s| **s == Some(Scope::Program))
            .count();
        let total: usize = scopes.iter().map(Vec::len).sum();
        assert!(program_persistent < total);
        // The small trailing loop's body is persistent in that loop.
        let l = &cfg.loops()[0];
        let header_scopes = &scopes[l.header];
        assert!(header_scopes
            .iter()
            .all(|s| matches!(s, Some(Scope::Loop(_)) | Some(Scope::Program))));
    }

    #[test]
    fn lower_assoc_reduces_persistence() {
        let cfg =
            build(Program::new("shrink").with_function("main", stmt::loop_(6, stmt::compute(40))));
        let g = CacheGeometry::paper_default();
        let count = |assoc: u32| -> usize {
            persistent_scopes(&cfg, &g, assoc)
                .iter()
                .flatten()
                .filter(|s| s.is_some())
                .count()
        };
        assert!(count(4) >= count(2));
        assert!(count(2) >= count(1));
        assert!(count(1) >= count(0));
    }
}
