//! Static instruction-cache analysis by abstract interpretation.
//!
//! Implements the cache analyses the paper builds on (§II-B1):
//!
//! * **Must** analysis — a reference is *always-hit* when its block is
//!   guaranteed in the cache (maximum possible LRU age < associativity);
//! * **May** analysis — a reference is *always-miss* when its block cannot
//!   be in the cache (not in the May state);
//! * **Persistence** — a reference is *first-miss* in the outermost scope
//!   (loop or whole program) where its block, once loaded, can never be
//!   evicted. This implementation uses *conflict-set* persistence: a set's
//!   blocks are persistent in a scope when the scope references at most
//!   `associativity` distinct blocks mapping to that set — a criterion that
//!   avoids the known unsoundness of the original persistence domain.
//!
//! All analyses take the **effective associativity** as a parameter. Cache
//! sets evolve independently under LRU, so the classification of references
//! to one set with `f` disabled ways equals the per-set readout of a whole-
//! cache analysis at associativity `W − f` — exactly what the Fault Miss
//! Map computation of `pwcet-core` needs (§II-C).
//!
//! The **SRB analysis** of §III-B2 is the Must analysis run on a pseudo-
//! geometry with a single one-way set (the shared reliable buffer),
//! conservatively routing *every* reference through the buffer.
//!
//! # Example
//!
//! ```
//! use pwcet_analysis::{classify, Chmc};
//! use pwcet_cache::CacheGeometry;
//! use pwcet_cfg::{ExpandedCfg, FunctionExtent};
//! use pwcet_progen::{stmt, Program};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let compiled = Program::new("p")
//!     .with_function("main", stmt::loop_(10, stmt::compute(2)))
//!     .compile(0x0040_0000)?;
//! let extents: Vec<FunctionExtent> = compiled.functions().iter()
//!     .map(|f| FunctionExtent::new(f.name(), f.entry(), f.end())).collect();
//! let bounds: Vec<(u32, u32)> = compiled.loop_bounds().iter()
//!     .map(|lb| (lb.header, lb.bound)).collect();
//! let cfg = ExpandedCfg::build(compiled.image(), &extents, &bounds)?;
//! let chmc = classify(&cfg, &CacheGeometry::paper_default(), 4);
//! // The tiny loop fits: after the cold start everything hits or is a
//! // first miss.
//! assert!(chmc.stats().always_miss <= chmc.stats().total());
//! # Ok(())
//! # }
//! ```

mod acs;
mod chmc;
mod classify;
mod fixpoint;
mod packed;
mod persistence;

pub use acs::{Acs, AnalysisKind};
pub use chmc::{Chmc, ChmcMap, ChmcStats, Scope};
pub use classify::{
    classify, classify_level, classify_level_from, classify_level_from_with, classify_level_with,
    classify_srb, classify_srb_with, ClassificationMode, ClassifiedLevel, ClassifierBackend,
    SrbMap,
};
pub use fixpoint::{analyze, analyze_seeded};
pub use packed::{
    analyze_packed, analyze_packed_seeded, BlockInterner, KernelStats, KernelStatsCell, PackedAcs,
};
pub use persistence::persistent_scopes;
