//! CHMC classification: combining Must, May and Persistence.

use std::sync::Arc;

use pwcet_cache::CacheGeometry;
use pwcet_cfg::{ExpandedCfg, NodeId};

use crate::acs::{Acs, AnalysisKind};
use crate::chmc::{Chmc, ChmcMap, Scope};
use crate::fixpoint::{analyze, analyze_seeded};
use crate::packed::{
    analyze_packed, analyze_packed_seeded, BlockInterner, KernelStatsCell, PackedAcs,
};
use crate::persistence::persistent_scopes;

/// How the per-level CHMC fixpoints of a context are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClassificationMode {
    /// Every associativity level runs its own cold fixpoint (the
    /// reference mode the differential tests compare against).
    Cold,
    /// Only the full-associativity level runs cold; every lower level is
    /// warm-started from the age-truncated converged states of the
    /// nearest higher level ([`classify_level_from`]). Bit-identical to
    /// [`Cold`](Self::Cold) — `tests/incremental_equivalence.rs` pins the
    /// guarantee across the whole benchmark suite.
    #[default]
    Incremental,
}

/// Which abstract-domain representation runs the Must/May fixpoints.
///
/// Both backends produce **bit-identical** [`ClassifiedLevel`]s — the
/// packed kernel is pinned against the set-based oracle by the proptest
/// suite of `tests/packed_equivalence.rs` and the pipeline-level
/// differential tests, the same oracle-plus-differential pattern the ILP
/// solver's `SolverBackend` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClassifierBackend {
    /// The bit-packed word-parallel kernel with dirty-set worklist
    /// tracking (`crate::packed` — the production path).
    #[default]
    Packed,
    /// The frozen `BTreeSet`-based [`Acs`] domain — the oracle the
    /// equivalence suites compare against. Deliberately uninstrumented:
    /// it records no [`KernelStats`](crate::KernelStats).
    SetReference,
}

/// The converged analysis artifacts of one associativity level: the CHMC
/// classification plus the packed Must/May fixpoint states it was read
/// off, kept so lower levels can be warm-started from them.
///
/// States are stored packed regardless of the backend that computed them
/// (the set-based reference converts on the way out); the interner is
/// deterministic for a given CFG and `(sets, block_bytes)`, so equality
/// of levels is bit-equality of their slot words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifiedLevel {
    assoc: u32,
    chmc: ChmcMap,
    interner: Arc<BlockInterner>,
    must: Vec<Option<PackedAcs>>,
    may: Vec<Option<PackedAcs>>,
}

impl ClassifiedLevel {
    /// The effective associativity this level was classified at.
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// The classification.
    pub fn chmc(&self) -> &ChmcMap {
        &self.chmc
    }

    /// Consumes the level, keeping only the classification.
    pub fn into_chmc(self) -> ChmcMap {
        self.chmc
    }

    /// The block interner the stored states' dense indices refer to.
    pub fn interner(&self) -> &Arc<BlockInterner> {
        &self.interner
    }

    /// The converged per-node Must states the classification was read
    /// off (`None` for unreachable nodes).
    pub fn must_states(&self) -> &[Option<PackedAcs>] {
        &self.must
    }

    /// The converged per-node May states.
    pub fn may_states(&self) -> &[Option<PackedAcs>] {
        &self.may
    }

    /// Reassembles a level from its parts — the deserialization entry
    /// point of the on-disk context store. Analysis code obtains levels
    /// through [`classify_level`]/[`classify_level_from`] instead.
    ///
    /// # Panics
    ///
    /// Panics when the state vectors disagree in length.
    pub fn from_parts(
        assoc: u32,
        chmc: ChmcMap,
        interner: Arc<BlockInterner>,
        must: Vec<Option<PackedAcs>>,
        may: Vec<Option<PackedAcs>>,
    ) -> Self {
        assert_eq!(
            must.len(),
            may.len(),
            "Must and May must cover the same nodes"
        );
        Self {
            assoc,
            chmc,
            interner,
            must,
            may,
        }
    }
}

/// Classifies every instruction fetch of the expanded graph at the given
/// **effective associativity** (number of usable ways per set).
///
/// Precedence (§II-B1): always-hit (Must) over first-miss (Persistence)
/// over always-miss (May absence) over not-classified. With `assoc == 0`
/// every fetch is always-miss — the behavior of a fully disabled set.
///
/// This is the cold path under the default packed backend; see
/// [`classify_level_from`] for the warm-started incremental variant and
/// [`classify_level_with`] for backend selection.
///
/// See the [crate docs](crate) for an end-to-end example.
pub fn classify(cfg: &ExpandedCfg, geometry: &CacheGeometry, assoc: u32) -> ChmcMap {
    classify_level(cfg, geometry, assoc).into_chmc()
}

/// As [`classify`], additionally returning the converged Must/May states
/// so the next-lower level can be warm-started from them.
pub fn classify_level(cfg: &ExpandedCfg, geometry: &CacheGeometry, assoc: u32) -> ClassifiedLevel {
    classify_level_with(cfg, geometry, assoc, ClassifierBackend::default(), None)
}

/// [`classify_level`] with an explicit backend and optional kernel
/// counters (recorded by the packed backend only).
pub fn classify_level_with(
    cfg: &ExpandedCfg,
    geometry: &CacheGeometry,
    assoc: u32,
    backend: ClassifierBackend,
    stats: Option<&KernelStatsCell>,
) -> ClassifiedLevel {
    let interner = Arc::new(BlockInterner::build(cfg, geometry));
    if assoc == 0 {
        return zero_level(cfg, interner);
    }
    match backend {
        ClassifierBackend::Packed => {
            let must = analyze_packed(cfg, geometry, assoc, AnalysisKind::Must, &interner, stats);
            let may = analyze_packed(cfg, geometry, assoc, AnalysisKind::May, &interner, stats);
            combine_packed(cfg, geometry, assoc, interner, must, may)
        }
        ClassifierBackend::SetReference => {
            let must = analyze(cfg, geometry, assoc, AnalysisKind::Must);
            let may = analyze(cfg, geometry, assoc, AnalysisKind::May);
            combine_reference(cfg, geometry, assoc, interner, must, may)
        }
    }
}

/// Classifies at `assoc` by **warm-starting** both fixpoints from the
/// age-truncated converged states of `warmer` (a level with strictly
/// larger associativity) instead of from the cold lattice top.
///
/// Because truncation is an exact homomorphism of the abstract domain
/// (see [`Acs::truncate`] / [`PackedAcs::truncate`]), the truncated seed
/// already *is* the fixpoint of the narrower analysis; the worklist loop
/// merely verifies stability, so the result is bit-identical to
/// [`classify_level`] at a fraction of the cost. Were the seed ever to
/// disagree, the chaotic iteration would still converge to a sound
/// solution — warm starting cannot compromise soundness, only
/// (theoretically) precision, and the differential suite pins exactness.
///
/// # Cross-geometry warm starts
///
/// None of the abstract domain depends on the *nominal* way count of the
/// cache — only on the set count, the block size, and the effective
/// associativity of the fixpoint. `warmer` may therefore come from a
/// **different cache geometry** as long as it shares `geometry`'s sets
/// and block size: the converged full-associativity states of a 4-way
/// cache seed the full classification of the 2-way sibling exactly. This
/// is the derivation step of the geometry-sweep reuse plane in
/// `pwcet-core` — one cold fixpoint at the widest associativity serves
/// every narrower-way geometry of the lattice. (The interner only
/// depends on the set count and block size, so it carries over
/// unchanged.)
///
/// # Panics
///
/// Panics when `assoc` is not strictly below the warmer level's
/// associativity, or when the warmer states were computed for an
/// incompatible set count or block size (each state carries both as
/// provenance).
pub fn classify_level_from(
    cfg: &ExpandedCfg,
    geometry: &CacheGeometry,
    warmer: &ClassifiedLevel,
    assoc: u32,
) -> ClassifiedLevel {
    classify_level_from_with(
        cfg,
        geometry,
        warmer,
        assoc,
        ClassifierBackend::default(),
        None,
    )
}

/// [`classify_level_from`] with an explicit backend and optional kernel
/// counters (recorded by the packed backend only).
pub fn classify_level_from_with(
    cfg: &ExpandedCfg,
    geometry: &CacheGeometry,
    warmer: &ClassifiedLevel,
    assoc: u32,
    backend: ClassifierBackend,
    stats: Option<&KernelStatsCell>,
) -> ClassifiedLevel {
    assert!(
        assoc < warmer.assoc,
        "warm start requires a strictly wider source level \
         (have {}, requested {assoc})",
        warmer.assoc
    );
    if let Some(state) = warmer.must.iter().flatten().next() {
        assert_eq!(
            state.sets(),
            geometry.sets(),
            "warm start requires matching set counts"
        );
        assert_eq!(
            state.block_bytes(),
            geometry.block_bytes(),
            "warm start requires matching block sizes"
        );
    }
    let interner = Arc::clone(&warmer.interner);
    if assoc == 0 {
        return zero_level(cfg, interner);
    }
    match backend {
        ClassifierBackend::Packed => {
            let truncate_all = |states: &[Option<PackedAcs>]| -> Vec<Option<PackedAcs>> {
                states
                    .iter()
                    .map(|s| s.as_ref().map(|acs| acs.truncate(assoc)))
                    .collect()
            };
            let must = analyze_packed_seeded(cfg, geometry, truncate_all(&warmer.must), stats);
            let may = analyze_packed_seeded(cfg, geometry, truncate_all(&warmer.may), stats);
            combine_packed(cfg, geometry, assoc, interner, must, may)
        }
        ClassifierBackend::SetReference => {
            let truncate_all = |states: &[Option<PackedAcs>]| -> Vec<Option<Acs>> {
                states
                    .iter()
                    .map(|s| s.as_ref().map(|acs| acs.truncate(assoc).to_acs()))
                    .collect()
            };
            let must = analyze_seeded(cfg, geometry, truncate_all(&warmer.must));
            let may = analyze_seeded(cfg, geometry, truncate_all(&warmer.may));
            combine_reference(cfg, geometry, assoc, interner, must, may)
        }
    }
}

/// The trivial level of a fully disabled set: every fetch always misses.
fn zero_level(cfg: &ExpandedCfg, interner: Arc<BlockInterner>) -> ClassifiedLevel {
    ClassifiedLevel {
        assoc: 0,
        chmc: ChmcMap::new(
            cfg.nodes()
                .iter()
                .map(|n| vec![Chmc::AlwaysMiss; n.addrs().len()])
                .collect(),
        ),
        interner,
        must: vec![None; cfg.nodes().len()],
        may: vec![None; cfg.nodes().len()],
    }
}

/// Reads the classification off converged packed Must/May states
/// (§II-B1 precedence: Must > Persistence > May-absence >
/// not-classified).
fn combine_packed(
    cfg: &ExpandedCfg,
    geometry: &CacheGeometry,
    assoc: u32,
    interner: Arc<BlockInterner>,
    must: Vec<Option<PackedAcs>>,
    may: Vec<Option<PackedAcs>>,
) -> ClassifiedLevel {
    let persistence: Vec<Vec<Option<Scope>>> = persistent_scopes(cfg, geometry, assoc);
    let per_node = cfg
        .nodes()
        .iter()
        .map(|node| {
            let id: NodeId = node.id();
            let (Some(must_state), Some(may_state)) = (&must[id], &may[id]) else {
                // Unreachable node: classify conservatively.
                return vec![Chmc::NotClassified; node.addrs().len()];
            };
            let mut must_state = must_state.clone();
            let mut may_state = may_state.clone();
            node.addrs()
                .iter()
                .enumerate()
                .map(|(i, &addr)| {
                    let block = geometry.block_of(addr);
                    let class = if must_state.contains(block) {
                        Chmc::AlwaysHit
                    } else if let Some(scope) = persistence[id][i] {
                        Chmc::FirstMiss(scope)
                    } else if !may_state.contains(block) {
                        Chmc::AlwaysMiss
                    } else {
                        Chmc::NotClassified
                    };
                    must_state.update(block);
                    may_state.update(block);
                    class
                })
                .collect()
        })
        .collect();
    ClassifiedLevel {
        assoc,
        chmc: ChmcMap::new(per_node),
        interner,
        must,
        may,
    }
}

/// As [`combine_packed`], over the set-based oracle states; the final
/// states are converted to the packed representation on the way out so
/// both backends store (and serialize) identical levels.
fn combine_reference(
    cfg: &ExpandedCfg,
    geometry: &CacheGeometry,
    assoc: u32,
    interner: Arc<BlockInterner>,
    must: Vec<Option<Acs>>,
    may: Vec<Option<Acs>>,
) -> ClassifiedLevel {
    let persistence: Vec<Vec<Option<Scope>>> = persistent_scopes(cfg, geometry, assoc);
    let per_node = cfg
        .nodes()
        .iter()
        .map(|node| {
            let id: NodeId = node.id();
            let (Some(must_state), Some(may_state)) = (&must[id], &may[id]) else {
                // Unreachable node: classify conservatively.
                return vec![Chmc::NotClassified; node.addrs().len()];
            };
            let mut must_state = must_state.clone();
            let mut may_state = may_state.clone();
            node.addrs()
                .iter()
                .enumerate()
                .map(|(i, &addr)| {
                    let block = geometry.block_of(addr);
                    let class = if must_state.contains(block) {
                        Chmc::AlwaysHit
                    } else if let Some(scope) = persistence[id][i] {
                        Chmc::FirstMiss(scope)
                    } else if !may_state.contains(block) {
                        Chmc::AlwaysMiss
                    } else {
                        Chmc::NotClassified
                    };
                    must_state.update(block);
                    may_state.update(block);
                    class
                })
                .collect()
        })
        .collect();
    let pack_all = |states: Vec<Option<Acs>>| -> Vec<Option<PackedAcs>> {
        states
            .into_iter()
            .map(|s| s.map(|acs| PackedAcs::from_acs(&acs, &interner)))
            .collect()
    };
    let (must, may) = (pack_all(must), pack_all(may));
    ClassifiedLevel {
        assoc,
        chmc: ChmcMap::new(per_node),
        interner,
        must,
        may,
    }
}

/// Which references are guaranteed hits in the Shared Reliable Buffer.
///
/// Indexed like [`ChmcMap`]: `always_hit(node, index)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrbMap {
    per_node: Vec<Vec<bool>>,
}

impl SrbMap {
    /// `true` if reference `index` of `node` is always-hit in the SRB.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn always_hit(&self, node: NodeId, index: usize) -> bool {
        self.per_node[node][index]
    }

    /// Number of always-hit references.
    pub fn hit_count(&self) -> usize {
        self.per_node.iter().flatten().filter(|&&b| b).count()
    }

    /// Total references covered.
    pub fn total(&self) -> usize {
        self.per_node.iter().map(Vec::len).sum()
    }

    /// The per-node hit rows (`rows[node][i]` — reference `i` of `node`).
    /// Exposed for the persistence codec of `pwcet-core`; pair with
    /// [`from_rows`](Self::from_rows).
    pub fn rows(&self) -> &[Vec<bool>] {
        &self.per_node
    }

    /// Rebuilds a map from its rows — the deserialization entry point of
    /// the on-disk context store. Analysis code uses [`classify_srb`].
    pub fn from_rows(per_node: Vec<Vec<bool>>) -> Self {
        Self { per_node }
    }
}

/// The SRB analysis of §III-B2: a Must analysis of a one-block cache
/// through which **every** reference is routed.
///
/// This is the paper's conservative assumption: no information survives in
/// the SRB between distinct series of successive accesses, because any
/// intervening reference to a fully-faulty set may reload it. A reference
/// is SRB-always-hit exactly when every immediately preceding fetch (on
/// all paths) touches the same memory block — the buffer then provably
/// holds the block even if the reference's own set is fully faulty.
pub fn classify_srb(cfg: &ExpandedCfg, geometry: &CacheGeometry) -> SrbMap {
    classify_srb_with(cfg, geometry, ClassifierBackend::default(), None)
}

/// [`classify_srb`] with an explicit backend and optional kernel
/// counters (recorded by the packed backend only).
pub fn classify_srb_with(
    cfg: &ExpandedCfg,
    geometry: &CacheGeometry,
    backend: ClassifierBackend,
    stats: Option<&KernelStatsCell>,
) -> SrbMap {
    // One set, one way, same block size: the SRB as a cache.
    let srb_geometry = CacheGeometry::new(1, 1, geometry.block_bytes());
    let per_node = match backend {
        ClassifierBackend::Packed => {
            let interner = Arc::new(BlockInterner::build(cfg, &srb_geometry));
            let must = analyze_packed(cfg, &srb_geometry, 1, AnalysisKind::Must, &interner, stats);
            cfg.nodes()
                .iter()
                .map(|node| {
                    let Some(state) = &must[node.id()] else {
                        return vec![false; node.addrs().len()];
                    };
                    let mut state = state.clone();
                    node.addrs()
                        .iter()
                        .map(|&addr| {
                            let block = srb_geometry.block_of(addr);
                            let hit = state.contains(block);
                            state.update(block);
                            hit
                        })
                        .collect()
                })
                .collect()
        }
        ClassifierBackend::SetReference => {
            let must = analyze(cfg, &srb_geometry, 1, AnalysisKind::Must);
            cfg.nodes()
                .iter()
                .map(|node| {
                    let Some(state) = &must[node.id()] else {
                        return vec![false; node.addrs().len()];
                    };
                    let mut state = state.clone();
                    node.addrs()
                        .iter()
                        .map(|&addr| {
                            let block = srb_geometry.block_of(addr);
                            let hit = state.contains(block);
                            state.update(block);
                            hit
                        })
                        .collect()
                })
                .collect()
        }
    };
    SrbMap { per_node }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chmc::Scope;
    use pwcet_cfg::FunctionExtent;
    use pwcet_progen::{stmt, Program};

    fn build(program: Program) -> ExpandedCfg {
        let compiled = program.compile(0x0040_0000).expect("compiles");
        let extents: Vec<FunctionExtent> = compiled
            .functions()
            .iter()
            .map(|f| FunctionExtent::new(f.name(), f.entry(), f.end()))
            .collect();
        let bounds: Vec<(u32, u32)> = compiled
            .loop_bounds()
            .iter()
            .map(|lb| (lb.header, lb.bound))
            .collect();
        ExpandedCfg::build(compiled.image(), &extents, &bounds).expect("expands")
    }

    fn geometry() -> CacheGeometry {
        CacheGeometry::paper_default()
    }

    #[test]
    fn straight_line_classifies_block_leaders_as_miss() {
        // 61 instructions straight-line: first fetch of each 16-byte block
        // misses once (program-persistent: the program fits), later
        // fetches of the block always hit.
        let cfg = build(Program::new("s").with_function("main", stmt::compute(60)));
        let chmc = classify(&cfg, &geometry(), 4);
        let stats = chmc.stats();
        // 64 instructions = 16 blocks. Code fits the cache exactly, so
        // block-leader fetches are first-miss (program scope), rest hit.
        assert_eq!(stats.total(), 64);
        assert_eq!(stats.always_hit, 48);
        assert_eq!(stats.first_miss + stats.always_miss, 16);
        assert_eq!(stats.not_classified, 0);
    }

    #[test]
    fn tight_loop_body_hits_after_first_iteration() {
        let cfg = build(Program::new("l").with_function("main", stmt::loop_(50, stmt::compute(8))));
        let chmc = classify(&cfg, &geometry(), 4);
        let l = &cfg.loops()[0];
        // Every in-loop reference is at worst first-miss: the program is
        // tiny, so nothing can be evicted.
        for &node in &l.nodes {
            for (i, &class) in chmc.node(node).iter().enumerate() {
                assert!(
                    matches!(class, Chmc::AlwaysHit | Chmc::FirstMiss(_)),
                    "loop node {node} ref {i} got {class:?}"
                );
            }
        }
        assert_eq!(chmc.stats().not_classified, 0);
    }

    #[test]
    fn zero_associativity_is_all_miss() {
        let cfg = build(Program::new("z").with_function("main", stmt::compute(5)));
        let chmc = classify(&cfg, &geometry(), 0);
        assert_eq!(chmc.stats().always_miss, chmc.stats().total());
    }

    #[test]
    fn lower_associativity_never_improves_classes() {
        let cfg = build(
            Program::new("d")
                .with_function(
                    "main",
                    stmt::loop_(20, stmt::seq([stmt::compute(100), stmt::call("f")])),
                )
                .with_function("f", stmt::compute(120)),
        );
        let g = geometry();
        let mut previous_hits = usize::MAX;
        for assoc in (0..=4).rev() {
            let stats = classify(&cfg, &g, assoc).stats();
            assert!(
                stats.always_hit <= previous_hits,
                "assoc {assoc}: hits must not increase when ways shrink"
            );
            previous_hits = stats.always_hit;
        }
    }

    #[test]
    fn first_miss_scope_is_outermost_possible() {
        // Small program: everything fits ⇒ scopes should be Program, not
        // the loop.
        let cfg = build(Program::new("sc").with_function("main", stmt::loop_(5, stmt::compute(4))));
        let chmc = classify(&cfg, &geometry(), 4);
        for (_, _, class) in chmc.iter() {
            if let Chmc::FirstMiss(scope) = class {
                assert_eq!(scope, Scope::Program);
            }
        }
    }

    #[test]
    fn backends_produce_bit_identical_levels() {
        // The tentpole guarantee at the unit level: packed and set-based
        // backends agree on every level — CHMC, states, cold and warm.
        let cfg = build(
            Program::new("bk")
                .with_function(
                    "main",
                    stmt::loop_(
                        10,
                        stmt::seq([
                            stmt::compute(90),
                            stmt::call("f"),
                            stmt::if_else(stmt::compute(7), stmt::compute(33)),
                        ]),
                    ),
                )
                .with_function("f", stmt::compute(55)),
        );
        let g = geometry();
        for assoc in 0..=4u32 {
            let packed = classify_level_with(&cfg, &g, assoc, ClassifierBackend::Packed, None);
            let reference =
                classify_level_with(&cfg, &g, assoc, ClassifierBackend::SetReference, None);
            assert_eq!(packed, reference, "cold level {assoc}");
        }
        let packed_full = classify_level_with(&cfg, &g, 4, ClassifierBackend::Packed, None);
        for assoc in 0..4u32 {
            let packed = classify_level_from_with(
                &cfg,
                &g,
                &packed_full,
                assoc,
                ClassifierBackend::Packed,
                None,
            );
            let reference = classify_level_from_with(
                &cfg,
                &g,
                &packed_full,
                assoc,
                ClassifierBackend::SetReference,
                None,
            );
            assert_eq!(packed, reference, "warm level {assoc}");
        }
        assert_eq!(
            classify_srb_with(&cfg, &g, ClassifierBackend::Packed, None),
            classify_srb_with(&cfg, &g, ClassifierBackend::SetReference, None),
            "SRB map"
        );
    }

    #[test]
    fn packed_backend_records_kernel_stats() {
        let cfg =
            build(Program::new("ks").with_function("main", stmt::loop_(8, stmt::compute(40))));
        let g = geometry();
        let cell = KernelStatsCell::default();
        let _ = classify_level_with(&cfg, &g, 4, ClassifierBackend::Packed, Some(&cell));
        let snapshot = cell.snapshot();
        assert!(snapshot.passes > 0);
        assert!(snapshot.words_touched > 0);
        let reference_cell = KernelStatsCell::default();
        let _ = classify_level_with(
            &cfg,
            &g,
            4,
            ClassifierBackend::SetReference,
            Some(&reference_cell),
        );
        assert_eq!(
            reference_cell.snapshot(),
            crate::KernelStats::default(),
            "the reference backend is deliberately uninstrumented"
        );
    }

    #[test]
    fn warm_started_levels_match_cold_classification() {
        // A program with loops, calls, and branches whose working set
        // exceeds the cache — the hard case for the warm-start chain.
        let cfg = build(
            Program::new("warm")
                .with_function(
                    "main",
                    stmt::loop_(
                        15,
                        stmt::seq([
                            stmt::compute(120),
                            stmt::call("f"),
                            stmt::if_else(stmt::compute(9), stmt::loop_(4, stmt::compute(22))),
                        ]),
                    ),
                )
                .with_function("f", stmt::compute(70)),
        );
        let g = geometry();
        let mut warmer = classify_level(&cfg, &g, 4);
        for assoc in (0..4u32).rev() {
            let cold = classify_level(&cfg, &g, assoc);
            let warm = classify_level_from(&cfg, &g, &warmer, assoc);
            assert_eq!(warm, cold, "assoc {assoc} must be bit-identical");
            if assoc > 0 {
                warmer = warm;
            }
        }
    }

    #[test]
    fn warm_start_skipping_levels_matches_cold() {
        // Truncation is transitive: seeding level 1 directly from level 4
        // (not the adjacent level 2) is equally exact.
        let cfg =
            build(Program::new("skip").with_function("main", stmt::loop_(10, stmt::compute(90))));
        let g = geometry();
        let full = classify_level(&cfg, &g, 4);
        let direct = classify_level_from(&cfg, &g, &full, 1);
        assert_eq!(direct, classify_level(&cfg, &g, 1));
    }

    #[test]
    fn cross_geometry_warm_start_matches_narrow_cold_classification() {
        // The derivation step of the geometry sweep: the converged 4-way
        // states classify the 2-way and 1-way sibling geometries exactly.
        let cfg = build(
            Program::new("xgeo")
                .with_function(
                    "main",
                    stmt::loop_(12, stmt::seq([stmt::compute(80), stmt::call("f")])),
                )
                .with_function("f", stmt::if_else(stmt::compute(30), stmt::compute(14))),
        );
        let wide = CacheGeometry::new(16, 4, 16);
        let full = classify_level(&cfg, &wide, wide.ways());
        for ways in [3u32, 2, 1] {
            let narrow = CacheGeometry::new(16, ways, 16);
            let derived = classify_level_from(&cfg, &narrow, &full, ways);
            let cold = classify_level(&cfg, &narrow, ways);
            assert_eq!(derived, cold, "{ways}-way geometry must be derivable");
        }
    }

    #[test]
    #[should_panic(expected = "matching set counts")]
    fn cross_geometry_warm_start_rejects_set_count_mismatch() {
        let cfg = build(Program::new("sm").with_function("main", stmt::compute(12)));
        let full = classify_level(&cfg, &CacheGeometry::new(16, 4, 16), 4);
        let other_sets = CacheGeometry::new(8, 2, 16);
        let _ = classify_level_from(&cfg, &other_sets, &full, 2);
    }

    #[test]
    #[should_panic(expected = "matching block sizes")]
    fn cross_geometry_warm_start_rejects_block_size_mismatch() {
        let cfg = build(Program::new("bm").with_function("main", stmt::compute(12)));
        let full = classify_level(&cfg, &CacheGeometry::new(16, 4, 32), 4);
        let other_blocks = CacheGeometry::new(16, 2, 16);
        let _ = classify_level_from(&cfg, &other_blocks, &full, 2);
    }

    #[test]
    #[should_panic(expected = "strictly wider")]
    fn warm_start_cannot_widen() {
        let cfg = build(Program::new("n").with_function("main", stmt::compute(4)));
        let g = geometry();
        let narrow = classify_level(&cfg, &g, 2);
        let _ = classify_level_from(&cfg, &g, &narrow, 3);
    }

    #[test]
    fn srb_hits_are_intra_block_successors() {
        // Straight-line code: within a 16-byte block, fetches 2..4 follow
        // a fetch to the same block ⇒ SRB-always-hit; block leaders are
        // not.
        let cfg = build(Program::new("srb").with_function("main", stmt::compute(28)));
        let srb = classify_srb(&cfg, &geometry());
        assert_eq!(srb.total(), 32); // 8 blocks
        assert_eq!(srb.hit_count(), 24); // 3 of every 4 fetches
    }

    #[test]
    fn srb_join_requires_agreement_on_all_paths() {
        // A diamond whose sides end in different blocks: the first fetch
        // after the join cannot be SRB-classified as hit unless both
        // predecessors end in its block.
        let cfg = build(Program::new("dj").with_function(
            "main",
            stmt::seq([
                stmt::if_else(stmt::compute(3), stmt::compute(17)),
                stmt::compute(8),
            ]),
        ));
        let srb = classify_srb(&cfg, &geometry());
        // The node after the join: its first fetch follows either the
        // then-side `j` or the last else instruction — different blocks,
        // so no SRB hit.
        let join_node = cfg.preds()[cfg.exit()]
            .first()
            .copied()
            .unwrap_or(cfg.exit());
        let _ = join_node; // The precise node is layout-dependent;
                           // assert the aggregate instead:
        assert!(srb.hit_count() < srb.total());
        assert!(srb.hit_count() > 0);
    }

    #[test]
    fn srb_analysis_is_context_sensitive() {
        // f is called twice; its entry fetch follows different callers'
        // blocks, but *within* f the intra-block runs hit in both
        // contexts.
        let cfg = build(
            Program::new("ctx")
                .with_function("main", stmt::seq([stmt::call("f"), stmt::call("f")]))
                .with_function("f", stmt::compute(6)),
        );
        let srb = classify_srb(&cfg, &geometry());
        let f_nodes: Vec<_> = cfg.nodes().iter().filter(|n| n.function() == "f").collect();
        assert_eq!(f_nodes.len(), 2);
        // The two instances may disagree only on their *entry* fetch
        // (whose predecessor block depends on the caller); every interior
        // fetch has the same (intra-instance) predecessor in both
        // contexts, so interior classifications agree.
        let interior_hits: Vec<Vec<bool>> = f_nodes
            .iter()
            .map(|n| {
                (1..n.addrs().len())
                    .map(|i| srb.always_hit(n.id(), i))
                    .collect()
            })
            .collect();
        assert_eq!(interior_hits[0], interior_hits[1]);
    }
}
