//! Worklist fixpoint driver for the abstract cache analyses.

use std::collections::VecDeque;

use pwcet_cache::CacheGeometry;
use pwcet_cfg::{ExpandedCfg, NodeId};

use crate::acs::{Acs, AnalysisKind};

/// Computes the abstract cache state at the *entry* of every node.
///
/// The initial state at the program entry is the empty (cold) cache, the
/// standard assumption of the paper's toolchain. Returns `None` for
/// unreachable nodes.
///
/// # Panics
///
/// Panics if `assoc == 0` (callers handle the zero-way case directly).
pub fn analyze(
    cfg: &ExpandedCfg,
    geometry: &CacheGeometry,
    assoc: u32,
    kind: AnalysisKind,
) -> Vec<Option<Acs>> {
    let mut entry_states: Vec<Option<Acs>> = vec![None; cfg.nodes().len()];
    entry_states[cfg.entry()] = Some(Acs::empty(geometry, assoc, kind));
    solve(cfg, geometry, entry_states)
}

/// As [`analyze`], but starting from `seed` states instead of the
/// uninitialized (⊤) lattice element.
///
/// The worklist loop runs the identical chaotic iteration to
/// stabilization, so any stable result satisfies the dataflow
/// inequalities and is therefore a *sound* solution. When the seed
/// over-approximates the cold fixpoint — as the age-truncated converged
/// states of a higher associativity level do (see
/// [`Acs::truncate`]) — the iteration converges to **exactly** the cold
/// fixpoint, typically in the single verification pass: this is the
/// warm-start path of the incremental CHMC classification.
///
/// # Panics
///
/// Panics when `seed` does not cover every node of `cfg`.
pub fn analyze_seeded(
    cfg: &ExpandedCfg,
    geometry: &CacheGeometry,
    seed: Vec<Option<Acs>>,
) -> Vec<Option<Acs>> {
    assert_eq!(
        seed.len(),
        cfg.nodes().len(),
        "seed must cover every node of the graph"
    );
    assert!(
        seed[cfg.entry()].is_some(),
        "seed must include an entry state"
    );
    solve(cfg, geometry, seed)
}

/// Successor-driven worklist iteration, seeded in reverse postorder (so
/// the common acyclic parts still converge in one sweep). Only nodes
/// whose entry state actually changed are re-evaluated, and only the
/// popped node's state is cloned for the transfer — the previous global
/// re-scan cloned every node's state on every pass, changed or not.
/// Chaotic iteration of a monotone framework converges to the unique
/// least fixpoint above the seed, so the evaluation order cannot change
/// the result.
fn solve(
    cfg: &ExpandedCfg,
    geometry: &CacheGeometry,
    mut entry_states: Vec<Option<Acs>>,
) -> Vec<Option<Acs>> {
    let mut in_queue = vec![false; cfg.nodes().len()];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for &node in &cfg.reverse_postorder() {
        if entry_states[node].is_some() {
            in_queue[node] = true;
            queue.push_back(node);
        }
    }
    while let Some(node) = queue.pop_front() {
        in_queue[node] = false;
        let state = entry_states[node]
            .clone()
            .expect("worklist nodes always hold a state");
        let out = transfer(state, cfg, geometry, node);
        for &succ in &cfg.succs()[node] {
            let changed = match &mut entry_states[succ] {
                Some(existing) => existing.join_in_place(&out),
                slot @ None => {
                    *slot = Some(out.clone());
                    true
                }
            };
            if changed && !in_queue[succ] {
                in_queue[succ] = true;
                queue.push_back(succ);
            }
        }
    }
    entry_states
}

/// Applies all references of `node` to `state`.
pub(crate) fn transfer(
    mut state: Acs,
    cfg: &ExpandedCfg,
    geometry: &CacheGeometry,
    node: NodeId,
) -> Acs {
    for &addr in cfg.node(node).addrs() {
        state.update(geometry.block_of(addr));
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwcet_cfg::FunctionExtent;
    use pwcet_progen::{stmt, Program};

    fn build(program: Program) -> ExpandedCfg {
        let compiled = program.compile(0x0040_0000).expect("compiles");
        let extents: Vec<FunctionExtent> = compiled
            .functions()
            .iter()
            .map(|f| FunctionExtent::new(f.name(), f.entry(), f.end()))
            .collect();
        let bounds: Vec<(u32, u32)> = compiled
            .loop_bounds()
            .iter()
            .map(|lb| (lb.header, lb.bound))
            .collect();
        ExpandedCfg::build(compiled.image(), &extents, &bounds).expect("expands")
    }

    #[test]
    fn straight_line_single_pass() {
        let cfg = build(Program::new("s").with_function("main", stmt::compute(10)));
        let g = CacheGeometry::paper_default();
        let states = analyze(&cfg, &g, 4, AnalysisKind::Must);
        assert!(states[cfg.entry()].as_ref().unwrap().is_empty());
    }

    #[test]
    fn loop_header_state_joins_entry_and_backedge() {
        let cfg = build(Program::new("l").with_function("main", stmt::loop_(3, stmt::compute(2))));
        let g = CacheGeometry::paper_default();
        let must = analyze(&cfg, &g, 4, AnalysisKind::Must);
        let may = analyze(&cfg, &g, 4, AnalysisKind::May);
        let header = cfg.loops()[0].header;
        // On entry to the header, Must cannot guarantee the loop body's
        // own blocks from the first iteration (join with the cold entry
        // path loses them)…
        let header_must = must[header].as_ref().unwrap();
        // …but May records them as possibly present.
        let header_may = may[header].as_ref().unwrap();
        assert!(header_may.len() >= header_must.len());
    }

    #[test]
    fn seeded_from_truncation_matches_cold_fixpoint() {
        let cfg = build(
            Program::new("w")
                .with_function(
                    "main",
                    stmt::loop_(8, stmt::seq([stmt::compute(40), stmt::call("f")])),
                )
                .with_function("f", stmt::if_else(stmt::compute(12), stmt::compute(30))),
        );
        let g = CacheGeometry::paper_default();
        for kind in [AnalysisKind::Must, AnalysisKind::May] {
            let wide = analyze(&cfg, &g, 4, kind);
            for assoc in (1..4u32).rev() {
                let cold = analyze(&cfg, &g, assoc, kind);
                let seed: Vec<Option<Acs>> = wide
                    .iter()
                    .map(|s| s.as_ref().map(|acs| acs.truncate(assoc)))
                    .collect();
                let warm = analyze_seeded(&cfg, &g, seed);
                assert_eq!(warm, cold, "{kind:?} assoc {assoc}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn seeded_requires_full_coverage() {
        let cfg = build(Program::new("p").with_function("main", stmt::compute(4)));
        let g = CacheGeometry::paper_default();
        let _ = analyze_seeded(&cfg, &g, vec![]);
    }

    #[test]
    fn all_reachable_nodes_have_states() {
        let cfg = build(
            Program::new("r")
                .with_function("main", stmt::if_else(stmt::compute(2), stmt::call("f")))
                .with_function("f", stmt::compute(3)),
        );
        let g = CacheGeometry::paper_default();
        let states = analyze(&cfg, &g, 2, AnalysisKind::Must);
        for (id, s) in states.iter().enumerate() {
            assert!(s.is_some(), "node {id} reachable");
        }
    }
}
