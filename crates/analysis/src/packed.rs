//! Bit-packed abstract cache states and the word-parallel fixpoint
//! kernel.
//!
//! The set-based [`Acs`] domain stores each age slot as a
//! `BTreeSet<MemBlock>` and joins with nested per-block probes. For a
//! given program and geometry, though, the universe of memory blocks
//! mapping to each cache set is small and statically known — so
//! [`BlockInterner`] interns it into a dense index space and
//! [`PackedAcs`] represents each age slot as a `u64` bitset (one word
//! *lane* per 64 blocks, the `assoc` slots of a set stored
//! contiguously):
//!
//! ```text
//! words[(set * assoc + age) * lanes .. + lanes]   = blocks at that age
//! block bit = (dense / 64, dense % 64)            dense = interned index
//! ```
//!
//! On this layout the three domain operations lose their per-block
//! probing entirely:
//!
//! * `update` is a shift of the slot words below the renewal boundary
//!   (an OR-merge at the boundary slot) plus one bit clear/set;
//! * `join` is word-parallel AND/OR with age-max (Must) or age-min
//!   (May) resolved by prefix-OR over the slot words —
//!   `res[r] = (a[r] & b≤r) | (b[r] & a≤r)` for Must,
//!   `res[r] = (a[r] & !b<r) | (b[r] & !a<r)` for May;
//! * `truncate` drops trailing slot words per set.
//!
//! Every operation is **bit-identical** to the [`Acs`] oracle — pinned
//! by the unit tests below, the vendored-proptest suite in
//! `tests/packed_equivalence.rs`, and the pipeline-level differential
//! suite in `tests/incremental_equivalence.rs` (the same
//! oracle-plus-proptest pattern that de-risked the sparse simplex).
//!
//! [`analyze_packed`] / [`analyze_packed_seeded`] run the fixpoint with
//! a successor-driven worklist plus per-node *dirty-set* masks, so a
//! node whose inputs changed in only one cache set re-propagates only
//! that set's region; [`KernelStats`] counts the passes, the words
//! touched, and the sets skipped.

use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pwcet_cache::{CacheGeometry, MemBlock};
use pwcet_cfg::{ExpandedCfg, NodeId};

use crate::acs::{Acs, AnalysisKind};

/// The statically-known universe of memory blocks of a program under one
/// cache geometry, interned per set into a dense index space.
///
/// The interner is deterministic — per-set universes are sorted — so two
/// interners built from the same CFG and the same `(sets, block_bytes)`
/// are equal, and equal [`PackedAcs`] values have equal words. The lane
/// count is uniform across sets (sized by the largest universe) so every
/// per-set region has the same shape.
///
/// Associativity does not enter: interners are shared across levels and
/// across the cross-geometry warm starts of the reuse plane (which vary
/// only the way count).
#[derive(Debug, PartialEq, Eq)]
pub struct BlockInterner {
    sets: u32,
    block_bytes: u32,
    lanes: usize,
    /// Per set, the sorted universe of blocks mapping to it; a block's
    /// dense index is its rank here.
    universes: Vec<Vec<MemBlock>>,
}

impl BlockInterner {
    /// Interns every block referenced by `cfg` under `geometry`.
    pub fn build(cfg: &ExpandedCfg, geometry: &CacheGeometry) -> Self {
        Self::from_blocks(
            geometry,
            cfg.nodes()
                .iter()
                .flat_map(|node| node.addrs().iter().map(|&addr| geometry.block_of(addr))),
        )
    }

    /// Interns an explicit block universe (the test entry point; the
    /// pipeline uses [`build`](Self::build)).
    pub fn from_blocks(
        geometry: &CacheGeometry,
        blocks: impl IntoIterator<Item = MemBlock>,
    ) -> Self {
        let sets = geometry.sets();
        let mut universes = vec![BTreeSet::new(); sets as usize];
        for block in blocks {
            universes[(block.0 % sets) as usize].insert(block);
        }
        let universes: Vec<Vec<MemBlock>> = universes
            .into_iter()
            .map(|set| set.into_iter().collect())
            .collect();
        let widest = universes.iter().map(Vec::len).max().unwrap_or(0);
        Self {
            sets,
            block_bytes: geometry.block_bytes(),
            lanes: widest.div_ceil(64).max(1),
            universes,
        }
    }

    /// Number of cache sets.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// The block size the interned block ids were computed with.
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// `u64` lanes per age slot (uniform across sets).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The sorted universe of one set.
    pub fn universe(&self, set: usize) -> &[MemBlock] {
        &self.universes[set]
    }

    /// Total interned blocks over all sets.
    pub fn len(&self) -> usize {
        self.universes.iter().map(Vec::len).sum()
    }

    /// `true` when no block is interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(set, dense index)` of a block, if interned.
    pub fn dense_of(&self, block: MemBlock) -> Option<(usize, usize)> {
        let set = (block.0 % self.sets) as usize;
        self.universes[set]
            .binary_search(&block)
            .ok()
            .map(|dense| (set, dense))
    }
}

/// A bit-packed abstract cache state over an interned block universe.
///
/// Semantically identical to [`Acs`] — same kinds, same update/join/
/// truncate results, same panics — but stored as slot bitsets, so the
/// domain operations are word-parallel. Convert with
/// [`from_acs`](Self::from_acs) / [`to_acs`](Self::to_acs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedAcs {
    kind: AnalysisKind,
    assoc: usize,
    interner: Arc<BlockInterner>,
    /// `words[(set * assoc + age) * lanes ..][..lanes]` = the blocks of
    /// `set` with that (max or min) age, as dense-index bits.
    words: Vec<u64>,
}

impl PackedAcs {
    /// The empty state (cold cache) at the given effective associativity.
    ///
    /// # Panics
    ///
    /// Panics if `assoc == 0`; zero-way analyses have no state.
    pub fn empty(interner: &Arc<BlockInterner>, assoc: u32, kind: AnalysisKind) -> Self {
        assert!(assoc > 0, "zero-way states are meaningless");
        let words = interner.sets() as usize * assoc as usize * interner.lanes();
        Self {
            kind,
            assoc: assoc as usize,
            interner: Arc::clone(interner),
            words: vec![0; words],
        }
    }

    /// The analysis kind of this state.
    pub fn kind(&self) -> AnalysisKind {
        self.kind
    }

    /// The effective associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Number of cache sets the state covers.
    pub fn sets(&self) -> u32 {
        self.interner.sets()
    }

    /// The block size the tracked block ids were computed with.
    pub fn block_bytes(&self) -> u32 {
        self.interner.block_bytes()
    }

    /// The interner this state's dense indices refer to.
    pub fn interner(&self) -> &Arc<BlockInterner> {
        &self.interner
    }

    /// The raw slot words (layout in the type docs) — the persistence
    /// codec's serialization entry point; pair with
    /// [`from_words`](Self::from_words).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a state from raw slot words (the inverse of
    /// [`words`](Self::words)) — the deserialization entry point of the
    /// on-disk context store. The codec validates stray bits and
    /// duplicate ages before calling this.
    ///
    /// # Panics
    ///
    /// Panics when `assoc == 0` or the word vector does not have exactly
    /// `sets × assoc × lanes` entries.
    pub fn from_words(
        kind: AnalysisKind,
        assoc: u32,
        interner: &Arc<BlockInterner>,
        words: Vec<u64>,
    ) -> Self {
        assert!(assoc > 0, "zero-way states are meaningless");
        assert_eq!(
            words.len(),
            interner.sets() as usize * assoc as usize * interner.lanes(),
            "raw state must carry sets x assoc x lanes slot words"
        );
        Self {
            kind,
            assoc: assoc as usize,
            interner: Arc::clone(interner),
            words,
        }
    }

    fn lanes(&self) -> usize {
        self.interner.lanes()
    }

    /// Words per set region (`assoc × lanes`).
    fn region(&self) -> usize {
        self.assoc * self.lanes()
    }

    /// The abstract age of `block`, if present.
    pub fn age_of(&self, block: MemBlock) -> Option<usize> {
        let (set, dense) = self.interner.dense_of(block)?;
        let lanes = self.lanes();
        let base = set * self.region() + dense / 64;
        let bit = 1u64 << (dense % 64);
        (0..self.assoc).find(|&age| self.words[base + age * lanes] & bit != 0)
    }

    /// `true` if `block` is in the state.
    pub fn contains(&self, block: MemBlock) -> bool {
        self.age_of(block).is_some()
    }

    /// Applies one access to `block` — the same LRU update as
    /// [`Acs::update`], as a word shift with an OR-merge at the renewal
    /// boundary plus one bit clear/set.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not in the interned universe (the interner
    /// must be built from the same CFG the accesses come from).
    pub fn update(&mut self, block: MemBlock) {
        let (set, dense) = self
            .interner
            .dense_of(block)
            .expect("block not in the interned universe");
        let (assoc, lanes, region) = (self.assoc, self.lanes(), self.region());
        let base = set * region;
        update_region(
            &mut self.words[base..base + region],
            assoc,
            lanes,
            self.kind,
            dense,
        );
    }

    /// Joins another state into this one at a control-flow merge —
    /// identical to [`Acs::join`], resolved word-parallel by prefix-OR.
    ///
    /// # Panics
    ///
    /// Panics if the states have different shapes, kinds, or interners.
    pub fn join(&mut self, other: &PackedAcs) {
        let _ = self.join_in_place(other);
    }

    /// [`join`](Self::join) that also reports whether `self` changed —
    /// the worklist kernels propagate only on `true`.
    ///
    /// # Panics
    ///
    /// As [`join`](Self::join).
    pub fn join_in_place(&mut self, other: &PackedAcs) -> bool {
        assert_eq!(self.kind, other.kind, "cannot join across kinds");
        assert_eq!(self.assoc, other.assoc, "associativity mismatch");
        assert_eq!(self.sets(), other.sets(), "set-count mismatch");
        assert_eq!(
            self.block_bytes(),
            other.block_bytes(),
            "block-size mismatch"
        );
        assert!(
            Arc::ptr_eq(&self.interner, &other.interner) || self.interner == other.interner,
            "cannot join across interners"
        );
        let (assoc, lanes, region) = (self.assoc, self.lanes(), self.region());
        let mut changed = false;
        for set in 0..self.sets() as usize {
            let base = set * region;
            changed |= join_region_in_place(
                &mut self.words[base..base + region],
                &other.words[base..base + region],
                self.kind,
                assoc,
                lanes,
            );
        }
        changed
    }

    /// Projects this state onto a smaller effective associativity by
    /// dropping each set's trailing slot words — the same exact
    /// homomorphism as [`Acs::truncate`], so warm starts stay
    /// bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is zero or exceeds this state's associativity.
    #[must_use]
    pub fn truncate(&self, assoc: u32) -> PackedAcs {
        assert!(assoc > 0, "zero-way states are meaningless");
        let narrow = assoc as usize;
        assert!(
            narrow <= self.assoc,
            "cannot truncate to a larger associativity"
        );
        let lanes = self.lanes();
        let (wide_region, narrow_region) = (self.region(), narrow * lanes);
        let mut words = Vec::with_capacity(self.sets() as usize * narrow_region);
        for set in 0..self.sets() as usize {
            let base = set * wide_region;
            words.extend_from_slice(&self.words[base..base + narrow_region]);
        }
        Self {
            kind: self.kind,
            assoc: narrow,
            interner: Arc::clone(&self.interner),
            words,
        }
    }

    /// Converts a set-based state into the packed representation.
    ///
    /// # Panics
    ///
    /// Panics when the geometry of `acs` does not match the interner or
    /// a tracked block is outside the interned universe.
    pub fn from_acs(acs: &Acs, interner: &Arc<BlockInterner>) -> Self {
        assert_eq!(acs.sets(), interner.sets(), "set-count mismatch");
        assert_eq!(
            acs.block_bytes(),
            interner.block_bytes(),
            "block-size mismatch"
        );
        let mut packed = Self::empty(interner, acs.assoc() as u32, acs.kind());
        let (lanes, region) = (packed.lanes(), packed.region());
        for (slot, blocks) in acs.age_slots().iter().enumerate() {
            let (set, age) = (slot / acs.assoc(), slot % acs.assoc());
            for &block in blocks {
                let (dense_set, dense) = interner
                    .dense_of(block)
                    .expect("block not in the interned universe");
                debug_assert_eq!(dense_set, set);
                packed.words[set * region + age * lanes + dense / 64] |= 1u64 << (dense % 64);
            }
        }
        packed
    }

    /// Converts back into the set-based representation.
    pub fn to_acs(&self) -> Acs {
        let (lanes, region) = (self.lanes(), self.region());
        let mut ages = vec![BTreeSet::new(); self.sets() as usize * self.assoc];
        for set in 0..self.sets() as usize {
            let universe = self.interner.universe(set);
            for age in 0..self.assoc {
                let slot = &self.words[set * region + age * lanes..][..lanes];
                for (lane, &word) in slot.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let dense = lane * 64 + bits.trailing_zeros() as usize;
                        ages[set * self.assoc + age].insert(universe[dense]);
                        bits &= bits - 1;
                    }
                }
            }
        }
        Acs::from_raw(
            self.kind,
            self.sets(),
            self.block_bytes(),
            self.assoc as u32,
            ages,
        )
    }

    /// Total number of blocks tracked (over all sets and ages).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no block is tracked.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// [`Acs::update`] over one set's slot words. `region` is
/// `assoc × lanes` words; `dense` the accessed block's dense index.
fn update_region(region: &mut [u64], assoc: usize, lanes: usize, kind: AnalysisKind, dense: usize) {
    let lane = dense / 64;
    let bit = 1u64 << (dense % 64);
    let hit_age = (0..assoc).find(|&age| region[age * lanes + lane] & bit != 0);
    let boundary = match (kind, hit_age) {
        (_, None) => assoc,
        (AnalysisKind::Must, Some(k)) => k,
        (AnalysisKind::May, Some(k)) => k + 1,
    };
    // Ages [0, boundary) shift to [1, boundary]; ages above stay. The
    // boundary slot (the accessed block's old position) merges what it
    // held with the shifted-in younger slot, exactly as the oracle.
    for age in (1..assoc).rev() {
        if age <= boundary {
            let (from, to) = ((age - 1) * lanes, age * lanes);
            if age == boundary {
                for l in 0..lanes {
                    region[to + l] |= region[from + l];
                }
            } else {
                region.copy_within(from..from + lanes, to);
            }
        }
    }
    for age in 1..assoc {
        region[age * lanes + lane] &= !bit;
    }
    region[..lanes].fill(0);
    region[lane] = bit;
}

/// [`Acs::join`] over one set's slot words; returns whether `dst`
/// changed.
///
/// Must resolves age-max by *inclusive* prefix-OR
/// (`res[r] = (a[r] & b≤r) | (b[r] & a≤r)`), May age-min by *strict*
/// prefix-OR (`res[r] = (a[r] & !b<r) | (b[r] & !a<r)`, one-sided
/// blocks kept at their own age).
fn join_region_in_place(
    dst: &mut [u64],
    src: &[u64],
    kind: AnalysisKind,
    assoc: usize,
    lanes: usize,
) -> bool {
    let mut changed = false;
    match kind {
        AnalysisKind::Must => {
            // a_le / b_le accumulate ages ≤ r, including r itself.
            let mut prefixes = vec![0u64; 2 * lanes];
            let (a_le, b_le) = prefixes.split_at_mut(lanes);
            for r in 0..assoc {
                for l in 0..lanes {
                    let (av, bv) = (dst[r * lanes + l], src[r * lanes + l]);
                    a_le[l] |= av;
                    b_le[l] |= bv;
                    let res = (av & b_le[l]) | (bv & a_le[l]);
                    changed |= res != av;
                    dst[r * lanes + l] = res;
                }
            }
        }
        AnalysisKind::May => {
            // a_lt / b_lt accumulate ages strictly below r.
            let mut prefixes = vec![0u64; 2 * lanes];
            let (a_lt, b_lt) = prefixes.split_at_mut(lanes);
            for r in 0..assoc {
                for l in 0..lanes {
                    let (av, bv) = (dst[r * lanes + l], src[r * lanes + l]);
                    let res = (av & !b_lt[l]) | (bv & !a_lt[l]);
                    a_lt[l] |= av;
                    b_lt[l] |= bv;
                    changed |= res != av;
                    dst[r * lanes + l] = res;
                }
            }
        }
    }
    changed
}

// ---------------------------------------------------------------------------
// Kernel counters
// ---------------------------------------------------------------------------

/// Counters describing how a packed fixpoint (or a batch of them)
/// behaved.
///
/// Recorded by [`analyze_packed`] / [`analyze_packed_seeded`] into a
/// [`KernelStatsCell`]; zeroes for the set-based reference backend,
/// which is deliberately uninstrumented (like the ILP solver's dense
/// reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Worklist pops — node re-evaluations across all fixpoints.
    pub passes: u64,
    /// `u64` slot words read or written by region transfers and joins.
    pub words_touched: u64,
    /// Per-pass cache sets skipped because their dirty bit was clear.
    pub sets_skipped: u64,
}

impl KernelStats {
    /// Adds `other` into `self`, field by field.
    pub fn merge(&mut self, other: &KernelStats) {
        self.passes += other.passes;
        self.words_touched += other.words_touched;
        self.sets_skipped += other.sets_skipped;
    }

    /// The counters accumulated since `earlier` (a previous snapshot of
    /// the same cell; saturating, so a stale snapshot cannot underflow).
    #[must_use]
    pub fn delta_since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            passes: self.passes.saturating_sub(earlier.passes),
            words_touched: self.words_touched.saturating_sub(earlier.words_touched),
            sets_skipped: self.sets_skipped.saturating_sub(earlier.sets_skipped),
        }
    }

    /// The counters as a self-describing name→value table (field names
    /// verbatim). This is what telemetry exposition serializes, so a
    /// new counter added here reaches the wire with no protocol change.
    pub fn entries(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("passes", self.passes),
            ("words_touched", self.words_touched),
            ("sets_skipped", self.sets_skipped),
        ]
    }
}

/// Thread-safe accumulator of [`KernelStats`] (plain relaxed counters —
/// classification workers record concurrently, readers snapshot).
#[derive(Debug, Default)]
pub struct KernelStatsCell {
    passes: AtomicU64,
    words_touched: AtomicU64,
    sets_skipped: AtomicU64,
}

impl KernelStatsCell {
    /// Adds one fixpoint's counters.
    pub fn record(&self, stats: &KernelStats) {
        self.passes.fetch_add(stats.passes, Ordering::Relaxed);
        self.words_touched
            .fetch_add(stats.words_touched, Ordering::Relaxed);
        self.sets_skipped
            .fetch_add(stats.sets_skipped, Ordering::Relaxed);
    }

    /// The accumulated totals.
    pub fn snapshot(&self) -> KernelStats {
        KernelStats {
            passes: self.passes.load(Ordering::Relaxed),
            words_touched: self.words_touched.load(Ordering::Relaxed),
            sets_skipped: self.sets_skipped.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Worklist fixpoint
// ---------------------------------------------------------------------------

/// A node's accesses, pre-resolved to interned `(set, dense)` indices.
struct NodeAccesses {
    /// All accesses in program order (for full-state transfers).
    flat: Vec<(u32, u32)>,
    /// The same accesses grouped by set, order preserved within each
    /// (updates to different sets commute, so per-set replay is exact).
    by_set: Vec<(usize, Vec<u32>)>,
}

fn resolve_accesses(
    cfg: &ExpandedCfg,
    geometry: &CacheGeometry,
    interner: &BlockInterner,
) -> Vec<NodeAccesses> {
    cfg.nodes()
        .iter()
        .map(|node| {
            let flat: Vec<(u32, u32)> = node
                .addrs()
                .iter()
                .map(|&addr| {
                    let (set, dense) = interner
                        .dense_of(geometry.block_of(addr))
                        .expect("block not in the interned universe");
                    (set as u32, dense as u32)
                })
                .collect();
            let mut by_set: Vec<(usize, Vec<u32>)> = Vec::new();
            for &(set, dense) in &flat {
                match by_set.iter_mut().find(|(s, _)| *s == set as usize) {
                    Some((_, seq)) => seq.push(dense),
                    None => by_set.push((set as usize, vec![dense])),
                }
            }
            NodeAccesses { flat, by_set }
        })
        .collect()
}

/// Iterates the set indices of a multi-word dirty mask.
fn for_each_set_bit(mask: &[u64], mut f: impl FnMut(usize)) {
    for (word_idx, &word) in mask.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            f(word_idx * 64 + bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
}

/// Runs the packed Must or May fixpoint cold: only the entry node holds
/// a state (the cold cache), every other node's entry state materializes
/// when first reached. Returns per-node entry states (`None` =
/// unreachable), bit-identical to [`crate::fixpoint::analyze`] converted
/// through the interner.
pub fn analyze_packed(
    cfg: &ExpandedCfg,
    geometry: &CacheGeometry,
    assoc: u32,
    kind: AnalysisKind,
    interner: &Arc<BlockInterner>,
    stats: Option<&KernelStatsCell>,
) -> Vec<Option<PackedAcs>> {
    let mut entry_states: Vec<Option<PackedAcs>> = vec![None; cfg.nodes().len()];
    entry_states[cfg.entry()] = Some(PackedAcs::empty(interner, assoc, kind));
    solve_packed(cfg, geometry, kind, interner, entry_states, stats)
}

/// Runs the packed fixpoint from a seed covering every node (a truncated
/// wider-level solution) — bit-identical to
/// [`crate::fixpoint::analyze_seeded`] converted through the interner.
///
/// # Panics
///
/// Panics when the seed does not cover every node.
pub fn analyze_packed_seeded(
    cfg: &ExpandedCfg,
    geometry: &CacheGeometry,
    seed: Vec<Option<PackedAcs>>,
    stats: Option<&KernelStatsCell>,
) -> Vec<Option<PackedAcs>> {
    assert_eq!(
        seed.len(),
        cfg.nodes().len(),
        "seed must cover every node of the graph"
    );
    let entry = seed[cfg.entry()]
        .as_ref()
        .expect("seed must include the entry node");
    let (kind, interner) = (entry.kind(), Arc::clone(entry.interner()));
    solve_packed(cfg, geometry, kind, &interner, seed, stats)
}

/// The worklist engine shared by the cold and seeded entry points.
///
/// Every node carries a *dirty-set* mask. A node's **first** pop always
/// runs with the mask fully set (cold: the entry is seeded all-ones and
/// every materialized successor inherits all-ones; seeded: every node
/// starts all-ones), so every edge propagates every set at least once;
/// after that, a pop re-propagates only the sets whose entry region an
/// incoming join actually changed — stable sets are skipped entirely.
/// Chaotic iteration over the per-set product lattice converges to the
/// unique least fixpoint above the seed, so the worklist order cannot
/// change the result.
fn solve_packed(
    cfg: &ExpandedCfg,
    geometry: &CacheGeometry,
    kind: AnalysisKind,
    interner: &Arc<BlockInterner>,
    mut entry_states: Vec<Option<PackedAcs>>,
    stats: Option<&KernelStatsCell>,
) -> Vec<Option<PackedAcs>> {
    assert_eq!(geometry.sets(), interner.sets(), "set-count mismatch");
    assert_eq!(
        geometry.block_bytes(),
        interner.block_bytes(),
        "block-size mismatch"
    );
    let nodes = cfg.nodes().len();
    let sets = interner.sets() as usize;
    let lanes = interner.lanes();
    let assoc = entry_states[cfg.entry()]
        .as_ref()
        .expect("solver needs a state at the entry node")
        .assoc();
    let region = assoc * lanes;
    let set_words = sets.div_ceil(64);
    let full_mask: Vec<u64> = (0..set_words)
        .map(|w| {
            let bits = (sets - w * 64).min(64);
            if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            }
        })
        .collect();

    let accesses = resolve_accesses(cfg, geometry, interner);
    let mut dirty = vec![0u64; nodes * set_words];
    let mut in_queue = vec![false; nodes];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for &node in &cfg.reverse_postorder() {
        if entry_states[node].is_some() {
            dirty[node * set_words..(node + 1) * set_words].copy_from_slice(&full_mask);
            in_queue[node] = true;
            queue.push_back(node);
        }
    }

    let mut counters = KernelStats::default();
    let mut prop = vec![0u64; set_words];
    let mut scratch = vec![0u64; region];
    while let Some(node) = queue.pop_front() {
        in_queue[node] = false;
        let dirty_slot = &mut dirty[node * set_words..(node + 1) * set_words];
        prop.copy_from_slice(dirty_slot);
        dirty_slot.fill(0);
        counters.passes += 1;
        let live: u64 = prop.iter().map(|w| u64::from(w.count_ones())).sum();
        counters.sets_skipped += sets as u64 - live;
        let succs = &cfg.succs()[node];
        if succs.is_empty() {
            continue;
        }

        // Materialize the outgoing regions as owned buffers so the
        // borrow of this node's state ends before successors mutate.
        let acc = &accesses[node];
        let (outs, full_out) = {
            let state = entry_states[node]
                .as_ref()
                .expect("worklist nodes always hold a state");
            let mut outs: Vec<(usize, Vec<u64>)> = Vec::with_capacity(live as usize);
            for_each_set_bit(&prop, |set| {
                let src = &state.words[set * region..(set + 1) * region];
                match acc.by_set.iter().find(|(s, _)| *s == set) {
                    Some((_, seq)) => {
                        scratch.copy_from_slice(src);
                        for &dense in seq {
                            update_region(&mut scratch, assoc, lanes, kind, dense as usize);
                        }
                        counters.words_touched += (region * seq.len()) as u64;
                        outs.push((set, scratch.clone()));
                    }
                    None => outs.push((set, src.to_vec())),
                }
            });
            // A not-yet-reached successor needs the full transfer, all
            // sets — the only per-pop whole-state clone, paid once per
            // materialization.
            let full_out = succs.iter().any(|&s| entry_states[s].is_none()).then(|| {
                let mut out = state.clone();
                for &(set, dense) in &acc.flat {
                    let base = set as usize * region;
                    update_region(
                        &mut out.words[base..base + region],
                        assoc,
                        lanes,
                        kind,
                        dense as usize,
                    );
                }
                counters.words_touched += (region * acc.flat.len()) as u64;
                out
            });
            (outs, full_out)
        };

        for &succ in succs {
            match &mut entry_states[succ] {
                slot @ None => {
                    *slot = Some(full_out.clone().expect("full transfer was materialized"));
                    dirty[succ * set_words..(succ + 1) * set_words].copy_from_slice(&full_mask);
                    if !in_queue[succ] {
                        in_queue[succ] = true;
                        queue.push_back(succ);
                    }
                }
                Some(existing) => {
                    let mut touched = false;
                    for (set, out) in &outs {
                        let base = set * region;
                        let changed = join_region_in_place(
                            &mut existing.words[base..base + region],
                            out,
                            kind,
                            assoc,
                            lanes,
                        );
                        counters.words_touched += region as u64;
                        if changed {
                            dirty[succ * set_words + set / 64] |= 1u64 << (set % 64);
                            touched = true;
                        }
                    }
                    if touched && !in_queue[succ] {
                        in_queue[succ] = true;
                        queue.push_back(succ);
                    }
                }
            }
        }
    }

    if let Some(cell) = stats {
        cell.record(&counters);
    }
    entry_states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixpoint;

    fn geometry() -> CacheGeometry {
        CacheGeometry::paper_default()
    }

    /// Blocks 0, 16, 32, 48 … all map to set 0 in the 16-set geometry.
    fn b(i: u32) -> MemBlock {
        MemBlock(i * 16)
    }

    fn interner(upto: u32) -> Arc<BlockInterner> {
        Arc::new(BlockInterner::from_blocks(&geometry(), (0..upto).map(b)))
    }

    #[test]
    fn must_update_tracks_max_age() {
        let interner = interner(8);
        let mut acs = PackedAcs::empty(&interner, 4, AnalysisKind::Must);
        for i in 0..4 {
            acs.update(b(i));
        }
        for i in 0..4 {
            assert_eq!(acs.age_of(b(i)), Some(3 - i as usize));
        }
        acs.update(b(4));
        assert!(!acs.contains(b(0)));
        assert_eq!(acs.age_of(b(4)), Some(0));
    }

    #[test]
    fn must_hit_renews_and_ages_younger_only() {
        let interner = interner(8);
        let mut acs = PackedAcs::empty(&interner, 4, AnalysisKind::Must);
        for i in 0..4 {
            acs.update(b(i));
        }
        acs.update(b(2));
        assert_eq!(acs.age_of(b(2)), Some(0));
        assert_eq!(acs.age_of(b(3)), Some(1));
        assert_eq!(acs.age_of(b(1)), Some(2));
        assert_eq!(acs.age_of(b(0)), Some(3));
    }

    #[test]
    fn joins_match_the_oracle() {
        let interner = interner(8);
        for kind in [AnalysisKind::Must, AnalysisKind::May] {
            let mut a = PackedAcs::empty(&interner, 4, kind);
            let mut c = PackedAcs::empty(&interner, 4, kind);
            a.update(b(1));
            a.update(b(2));
            c.update(b(2));
            c.update(b(3));
            let mut oracle_a = a.to_acs();
            let oracle_c = c.to_acs();
            a.join(&c);
            oracle_a.join(&oracle_c);
            assert_eq!(a.to_acs(), oracle_a, "{kind:?}");
            assert_eq!(PackedAcs::from_acs(&oracle_a, &interner), a, "{kind:?}");
        }
    }

    #[test]
    fn join_in_place_reports_change() {
        let interner = interner(4);
        let mut a = PackedAcs::empty(&interner, 4, AnalysisKind::May);
        let mut c = PackedAcs::empty(&interner, 4, AnalysisKind::May);
        c.update(b(1));
        assert!(a.join_in_place(&c));
        assert!(
            !a.join_in_place(&c),
            "idempotent join must report no change"
        );
    }

    #[test]
    fn random_operation_sequences_match_the_oracle() {
        // Deterministic pseudo-random mixes of update/join/truncate over
        // a universe wide enough to exercise a second lane (set 0 holds
        // 80 blocks), against the Acs oracle at every step.
        let wide = Arc::new(BlockInterner::from_blocks(&geometry(), (0..80).map(b)));
        assert_eq!(wide.lanes(), 2, "universe must span two lanes");
        let mut rng = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for kind in [AnalysisKind::Must, AnalysisKind::May] {
            let mut packed = PackedAcs::empty(&wide, 8, kind);
            let mut oracle = Acs::empty(&geometry(), 8, kind);
            let mut other = PackedAcs::empty(&wide, 8, kind);
            let mut other_oracle = Acs::empty(&geometry(), 8, kind);
            for _ in 0..400 {
                match next() % 4 {
                    0 | 1 => {
                        let block = b((next() % 80) as u32);
                        packed.update(block);
                        oracle.update(block);
                    }
                    2 => {
                        let block = b((next() % 80) as u32);
                        other.update(block);
                        other_oracle.update(block);
                    }
                    _ => {
                        packed.join(&other);
                        oracle.join(&other_oracle);
                    }
                }
                assert_eq!(packed.to_acs(), oracle, "{kind:?}");
                let narrow = 1 + (next() % 8) as u32;
                assert_eq!(
                    packed.truncate(narrow).to_acs(),
                    oracle.truncate(narrow),
                    "{kind:?} truncate {narrow}"
                );
            }
        }
    }

    #[test]
    fn conversion_round_trips() {
        let interner = interner(8);
        let mut packed = PackedAcs::empty(&interner, 4, AnalysisKind::Must);
        for i in [0, 3, 1, 5, 3] {
            packed.update(b(i));
        }
        let acs = packed.to_acs();
        assert_eq!(PackedAcs::from_acs(&acs, &interner), packed);
        assert_eq!(acs.len(), packed.len());
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn zero_assoc_panics() {
        let _ = PackedAcs::empty(&interner(4), 0, AnalysisKind::Must);
    }

    #[test]
    #[should_panic(expected = "larger associativity")]
    fn truncate_cannot_widen() {
        let acs = PackedAcs::empty(&interner(4), 2, AnalysisKind::Must);
        let _ = acs.truncate(3);
    }

    #[test]
    #[should_panic(expected = "not in the interned universe")]
    fn unknown_block_panics() {
        let mut acs = PackedAcs::empty(&interner(4), 2, AnalysisKind::Must);
        acs.update(b(99));
    }

    // -- kernel equivalence -------------------------------------------------

    use pwcet_cfg::FunctionExtent;
    use pwcet_progen::{stmt, Program};

    fn build(program: Program) -> ExpandedCfg {
        let compiled = program.compile(0x0040_0000).expect("compiles");
        let extents: Vec<FunctionExtent> = compiled
            .functions()
            .iter()
            .map(|f| FunctionExtent::new(f.name(), f.entry(), f.end()))
            .collect();
        let bounds: Vec<(u32, u32)> = compiled
            .loop_bounds()
            .iter()
            .map(|lb| (lb.header, lb.bound))
            .collect();
        ExpandedCfg::build(compiled.image(), &extents, &bounds).expect("expands")
    }

    fn looped() -> ExpandedCfg {
        build(
            Program::new("packed-kernel")
                .with_function(
                    "main",
                    stmt::seq([
                        stmt::compute(24),
                        stmt::loop_(40, stmt::if_else(stmt::compute(12), stmt::call("leaf"))),
                        stmt::compute(8),
                    ]),
                )
                .with_function("leaf", stmt::compute(16)),
        )
    }

    fn assert_states_match(
        cfg: &ExpandedCfg,
        packed: &[Option<PackedAcs>],
        reference: &[Option<Acs>],
    ) {
        assert_eq!(packed.len(), reference.len());
        for node in 0..packed.len() {
            match (&packed[node], &reference[node]) {
                (None, None) => {}
                (Some(p), Some(r)) => {
                    assert_eq!(&p.to_acs(), r, "node {node} of {}", cfg.nodes().len())
                }
                _ => panic!("node {node}: reachability differs"),
            }
        }
    }

    #[test]
    fn cold_fixpoint_matches_the_reference_solver() {
        let cfg = looped();
        let g = geometry();
        let interner = Arc::new(BlockInterner::build(&cfg, &g));
        for kind in [AnalysisKind::Must, AnalysisKind::May] {
            for assoc in 1..=4 {
                let stats = KernelStatsCell::default();
                let packed = analyze_packed(&cfg, &g, assoc, kind, &interner, Some(&stats));
                let reference = fixpoint::analyze(&cfg, &g, assoc, kind);
                assert_states_match(&cfg, &packed, &reference);
                let snapshot = stats.snapshot();
                assert!(snapshot.passes > 0, "kernel must record passes");
                assert!(snapshot.words_touched > 0);
            }
        }
    }

    #[test]
    fn seeded_fixpoint_matches_the_reference_solver() {
        let cfg = looped();
        let g = geometry();
        let interner = Arc::new(BlockInterner::build(&cfg, &g));
        for kind in [AnalysisKind::Must, AnalysisKind::May] {
            let wide = analyze_packed(&cfg, &g, 4, kind, &interner, None);
            let seed: Vec<Option<PackedAcs>> = wide
                .iter()
                .map(|s| s.as_ref().map(|s| s.truncate(2)))
                .collect();
            let warm = analyze_packed_seeded(&cfg, &g, seed, None);
            let reference = fixpoint::analyze(&cfg, &g, 2, kind);
            assert_states_match(&cfg, &warm, &reference);
        }
    }

    #[test]
    fn dirty_tracking_skips_stable_sets() {
        let cfg = looped();
        let g = geometry();
        let interner = Arc::new(BlockInterner::build(&cfg, &g));
        let stats = KernelStatsCell::default();
        let _ = analyze_packed(&cfg, &g, 4, AnalysisKind::Must, &interner, Some(&stats));
        assert!(
            stats.snapshot().sets_skipped > 0,
            "loop convergence must leave stable sets unpropagated"
        );
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn seeded_requires_full_coverage() {
        let cfg = looped();
        let g = geometry();
        let _ = analyze_packed_seeded(&cfg, &g, Vec::new(), None);
    }
}
