//! Abstract cache states for the Must and May analyses.

use std::collections::BTreeSet;

use pwcet_cache::{CacheGeometry, MemBlock};

/// Which analysis an abstract state belongs to; selects the join and
/// update semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalysisKind {
    /// Ages are *maximum* possible ages; membership guarantees presence.
    Must,
    /// Ages are *minimum* possible ages; absence guarantees absence.
    May,
}

/// An abstract cache state: per set, `associativity` age positions each
/// holding a set of memory blocks.
///
/// Age 0 is the most recently used position. For Must states the age of a
/// block is an upper bound of its true LRU age; for May states a lower
/// bound. A block appears at most once per set.
///
/// # Example
///
/// ```
/// use pwcet_analysis::{Acs, AnalysisKind};
/// use pwcet_cache::{CacheGeometry, MemBlock};
///
/// let g = CacheGeometry::paper_default();
/// let mut acs = Acs::empty(&g, 2, AnalysisKind::Must);
/// acs.update(MemBlock(0));
/// acs.update(MemBlock(16)); // same set (16 sets), ages block 0 to 1
/// assert_eq!(acs.age_of(MemBlock(0)), Some(1));
/// assert_eq!(acs.age_of(MemBlock(16)), Some(0));
/// assert!(acs.contains(MemBlock(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acs {
    kind: AnalysisKind,
    sets: u32,
    /// Provenance only: the block size the tracked [`MemBlock`] ids were
    /// computed with. The state logic never consults it, but
    /// cross-geometry warm starts use it to reject seeds whose block
    /// mapping differs (same sets, different lines ⇒ silently unsound).
    block_bytes: u32,
    assoc: usize,
    /// `ages[set * assoc + age]` = blocks with that (max or min) age.
    ages: Vec<BTreeSet<MemBlock>>,
}

impl Acs {
    /// The empty state (cold cache) at the given effective associativity.
    ///
    /// # Panics
    ///
    /// Panics if `assoc == 0`; zero-way analyses have no state (callers
    /// classify everything always-miss directly).
    pub fn empty(geometry: &CacheGeometry, assoc: u32, kind: AnalysisKind) -> Self {
        assert!(assoc > 0, "zero-way states are meaningless");
        Self {
            kind,
            sets: geometry.sets(),
            block_bytes: geometry.block_bytes(),
            assoc: assoc as usize,
            ages: vec![BTreeSet::new(); (geometry.sets() * assoc) as usize],
        }
    }

    /// The analysis kind of this state.
    pub fn kind(&self) -> AnalysisKind {
        self.kind
    }

    /// The effective associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Number of cache sets the state covers.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// The block size the tracked block ids were computed with
    /// (provenance; see the field docs).
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// The raw age slots, `sets × assoc` of them: slot `set * assoc + age`
    /// holds the blocks with that (max or min) age. Exposed for the
    /// persistence codec of `pwcet-core`; pair with
    /// [`from_raw`](Self::from_raw).
    pub fn age_slots(&self) -> &[BTreeSet<MemBlock>] {
        &self.ages
    }

    /// Rebuilds a state from its raw parts (the inverse of
    /// [`age_slots`](Self::age_slots)) — the deserialization entry point
    /// of the on-disk context store.
    ///
    /// # Panics
    ///
    /// Panics when the slot vector does not have exactly `sets × assoc`
    /// entries or `assoc == 0`.
    pub fn from_raw(
        kind: AnalysisKind,
        sets: u32,
        block_bytes: u32,
        assoc: u32,
        ages: Vec<BTreeSet<MemBlock>>,
    ) -> Self {
        assert!(assoc > 0, "zero-way states are meaningless");
        assert_eq!(
            ages.len(),
            (sets * assoc) as usize,
            "raw state must carry sets x assoc age slots"
        );
        Self {
            kind,
            sets,
            block_bytes,
            assoc: assoc as usize,
            ages,
        }
    }

    fn set_of(&self, block: MemBlock) -> usize {
        (block.0 % self.sets) as usize
    }

    fn slot(&self, set: usize, age: usize) -> usize {
        set * self.assoc + age
    }

    /// The abstract age of `block`, if present.
    pub fn age_of(&self, block: MemBlock) -> Option<usize> {
        let set = self.set_of(block);
        (0..self.assoc).find(|&age| self.ages[self.slot(set, age)].contains(&block))
    }

    /// `true` if `block` is in the state (Must: guaranteed cached;
    /// May: possibly cached).
    pub fn contains(&self, block: MemBlock) -> bool {
        self.age_of(block).is_some()
    }

    /// Applies one access to `block` (the LRU update of §II-B1).
    ///
    /// On a potential miss (`block` absent) every block ages and the
    /// oldest position falls out. On a hit at age `k` the analyses
    /// differ in how age-`k` cohabitants (possible after joins) move:
    ///
    /// * **Must** (max ages): a block sharing `b`'s *maximum* age keeps
    ///   it — its true age cannot exceed `k`, and if it equals `k` then
    ///   `b`'s true age is below `k`, so the block does not age.
    /// * **May** (min ages): a block sharing `b`'s *minimum* age must
    ///   move to `k + 1` — its true age is ≥ `k`, and whichever of the
    ///   two actually sits at `k` ends up at `k + 1` (either it ages
    ///   under `b`'s renewal, or it already was deeper).
    pub fn update(&mut self, block: MemBlock) {
        let set = self.set_of(block);
        let hit_age = self.age_of(block);
        let boundary = match (self.kind, hit_age) {
            (_, None) => self.assoc,
            (AnalysisKind::Must, Some(k)) => k,
            (AnalysisKind::May, Some(k)) => k + 1,
        };
        // Ages [0, boundary) shift to [1, boundary]; ages above stay.
        // Work oldest-to-youngest to reuse storage.
        for age in (1..self.assoc).rev() {
            if age <= boundary {
                let from = self.slot(set, age - 1);
                let to = self.slot(set, age);
                let moved = std::mem::take(&mut self.ages[from]);
                if age == boundary {
                    // The accessed block's old position is overwritten by
                    // the shift; anything there merges per kind. For both
                    // kinds the blocks previously at `boundary` stay there
                    // only if boundary < assoc (hit case) — they are
                    // replaced by the younger set, so merge them.
                    let stay = std::mem::take(&mut self.ages[to]);
                    self.ages[to] = moved;
                    self.ages[to].extend(stay);
                } else {
                    self.ages[to] = moved;
                }
            }
        }
        for age in 0..self.assoc {
            let slot = self.slot(set, age);
            self.ages[slot].remove(&block);
        }
        let slot0 = self.slot(set, 0);
        self.ages[slot0] = BTreeSet::from([block]);
    }

    /// Joins another state into this one at a control-flow merge.
    ///
    /// * Must: intersection with *maximum* age.
    /// * May: union with *minimum* age.
    ///
    /// # Panics
    ///
    /// Panics if the states have different shapes or kinds.
    pub fn join(&mut self, other: &Acs) {
        let _ = self.join_in_place(other);
    }

    /// [`join`](Self::join) that also reports whether `self` changed —
    /// the worklist solver propagates to successors only on `true`.
    ///
    /// # Panics
    ///
    /// As [`join`](Self::join).
    pub fn join_in_place(&mut self, other: &Acs) -> bool {
        assert_eq!(self.kind, other.kind, "cannot join across kinds");
        assert_eq!(self.assoc, other.assoc, "associativity mismatch");
        assert_eq!(self.sets, other.sets, "set-count mismatch");
        assert_eq!(self.block_bytes, other.block_bytes, "block-size mismatch");
        let mut changed = false;
        for set in 0..self.sets as usize {
            let mut joined: Vec<BTreeSet<MemBlock>> = vec![BTreeSet::new(); self.assoc];
            match self.kind {
                AnalysisKind::Must => {
                    for age_a in 0..self.assoc {
                        for &b in &self.ages[self.slot(set, age_a)] {
                            if let Some(age_b) = other.age_in_set(set, b) {
                                joined[age_a.max(age_b)].insert(b);
                            }
                        }
                    }
                }
                AnalysisKind::May => {
                    for age_a in 0..self.assoc {
                        for &b in &self.ages[self.slot(set, age_a)] {
                            let age = other.age_in_set(set, b).map_or(age_a, |x| x.min(age_a));
                            joined[age].insert(b);
                        }
                    }
                    for (age_b, joined_level) in joined.iter_mut().enumerate() {
                        for &b in &other.ages[other.slot(set, age_b)] {
                            if self.age_in_set(set, b).is_none() {
                                joined_level.insert(b);
                            }
                        }
                    }
                }
            }
            for (age, blocks) in joined.into_iter().enumerate() {
                let slot = set * self.assoc + age;
                if self.ages[slot] != blocks {
                    self.ages[slot] = blocks;
                    changed = true;
                }
            }
        }
        changed
    }

    /// Projects this state onto a smaller effective associativity: ages
    /// `0..assoc` are kept verbatim, blocks at ages `>= assoc` are dropped.
    ///
    /// For this age-based domain the projection is an **exact
    /// homomorphism** with respect to [`update`](Self::update) and
    /// [`join`](Self::join): a hit at a surviving age behaves identically
    /// in both widths, a hit at a truncated age is exactly a miss of the
    /// narrower cache (ages shift, the oldest surviving age falls out of
    /// the window), and both joins act age-pointwise. Truncating the
    /// converged states of associativity `a` therefore yields *exactly*
    /// the converged states of associativity `assoc` — the warm-start
    /// invariant the incremental classification builds on, pinned
    /// empirically by `tests/incremental_equivalence.rs`.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is zero or exceeds this state's associativity.
    #[must_use]
    pub fn truncate(&self, assoc: u32) -> Acs {
        assert!(assoc > 0, "zero-way states are meaningless");
        let assoc = assoc as usize;
        assert!(
            assoc <= self.assoc,
            "cannot truncate to a larger associativity"
        );
        let ages = (0..self.sets as usize)
            .flat_map(|set| (0..assoc).map(move |age| self.ages[self.slot(set, age)].clone()))
            .collect();
        Self {
            kind: self.kind,
            sets: self.sets,
            block_bytes: self.block_bytes,
            assoc,
            ages,
        }
    }

    fn age_in_set(&self, set: usize, block: MemBlock) -> Option<usize> {
        (0..self.assoc).find(|&age| self.ages[self.slot(set, age)].contains(&block))
    }

    /// Total number of blocks tracked (over all sets and ages).
    pub fn len(&self) -> usize {
        self.ages.iter().map(BTreeSet::len).sum()
    }

    /// `true` when no block is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> CacheGeometry {
        CacheGeometry::paper_default()
    }

    /// Blocks 0, 16, 32, 48 … all map to set 0 in the 16-set geometry.
    fn b(i: u32) -> MemBlock {
        MemBlock(i * 16)
    }

    #[test]
    fn must_update_tracks_max_age() {
        let mut acs = Acs::empty(&geometry(), 4, AnalysisKind::Must);
        for i in 0..4 {
            acs.update(b(i));
        }
        for i in 0..4 {
            assert_eq!(acs.age_of(b(i)), Some(3 - i as usize));
        }
        // A fifth block evicts the oldest.
        acs.update(b(4));
        assert!(!acs.contains(b(0)));
        assert_eq!(acs.age_of(b(4)), Some(0));
    }

    #[test]
    fn must_hit_renews_and_ages_younger_only() {
        let mut acs = Acs::empty(&geometry(), 4, AnalysisKind::Must);
        for i in 0..4 {
            acs.update(b(i));
        }
        // Access block 2 (age 1): blocks younger (b3 at age 0) age to 1;
        // older blocks (b1 age 2, b0 age 3) unchanged.
        acs.update(b(2));
        assert_eq!(acs.age_of(b(2)), Some(0));
        assert_eq!(acs.age_of(b(3)), Some(1));
        assert_eq!(acs.age_of(b(1)), Some(2));
        assert_eq!(acs.age_of(b(0)), Some(3));
    }

    #[test]
    fn must_join_keeps_common_blocks_at_max_age() {
        let mut a = Acs::empty(&geometry(), 4, AnalysisKind::Must);
        let mut c = Acs::empty(&geometry(), 4, AnalysisKind::Must);
        a.update(b(1));
        a.update(b(2)); // a: b2@0, b1@1
        c.update(b(2));
        c.update(b(3)); // c: b3@0, b2@1
        a.join(&c);
        assert_eq!(a.age_of(b(2)), Some(1)); // max(0, 1)
        assert!(!a.contains(b(1))); // only on one side
        assert!(!a.contains(b(3)));
    }

    #[test]
    fn may_join_keeps_union_at_min_age() {
        let mut a = Acs::empty(&geometry(), 4, AnalysisKind::May);
        let mut c = Acs::empty(&geometry(), 4, AnalysisKind::May);
        a.update(b(1));
        a.update(b(2));
        c.update(b(2));
        c.update(b(3));
        a.join(&c);
        assert_eq!(a.age_of(b(2)), Some(0)); // min(0, 1)
        assert_eq!(a.age_of(b(1)), Some(1));
        assert_eq!(a.age_of(b(3)), Some(0));
    }

    #[test]
    fn sets_are_independent() {
        let mut acs = Acs::empty(&geometry(), 2, AnalysisKind::Must);
        acs.update(MemBlock(0)); // set 0
        acs.update(MemBlock(1)); // set 1
        acs.update(MemBlock(2)); // set 2
        assert_eq!(acs.age_of(MemBlock(0)), Some(0));
        assert_eq!(acs.age_of(MemBlock(1)), Some(0));
        assert_eq!(acs.age_of(MemBlock(2)), Some(0));
    }

    #[test]
    fn single_way_state_holds_one_block_per_set() {
        let g = CacheGeometry::new(1, 1, 16);
        let mut acs = Acs::empty(&g, 1, AnalysisKind::Must);
        acs.update(MemBlock(5));
        assert!(acs.contains(MemBlock(5)));
        acs.update(MemBlock(9));
        assert!(!acs.contains(MemBlock(5)));
        assert!(acs.contains(MemBlock(9)));
    }

    #[test]
    fn update_is_idempotent_on_mru() {
        let mut acs = Acs::empty(&geometry(), 4, AnalysisKind::Must);
        acs.update(b(1));
        acs.update(b(2));
        let snapshot = acs.clone();
        acs.update(b(2)); // already MRU
        assert_eq!(acs, snapshot);
    }

    #[test]
    fn must_join_with_empty_empties() {
        let mut a = Acs::empty(&geometry(), 4, AnalysisKind::Must);
        a.update(b(1));
        let empty = Acs::empty(&geometry(), 4, AnalysisKind::Must);
        a.join(&empty);
        assert!(a.is_empty());
    }

    #[test]
    fn may_join_with_empty_keeps() {
        let mut a = Acs::empty(&geometry(), 4, AnalysisKind::May);
        a.update(b(1));
        let empty = Acs::empty(&geometry(), 4, AnalysisKind::May);
        a.join(&empty);
        assert!(a.contains(b(1)));
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn zero_assoc_panics() {
        let _ = Acs::empty(&geometry(), 0, AnalysisKind::Must);
    }

    #[test]
    fn truncate_drops_old_ages_only() {
        let mut acs = Acs::empty(&geometry(), 4, AnalysisKind::Must);
        for i in 0..4 {
            acs.update(b(i));
        }
        let narrow = acs.truncate(2);
        assert_eq!(narrow.assoc(), 2);
        assert_eq!(narrow.age_of(b(3)), Some(0));
        assert_eq!(narrow.age_of(b(2)), Some(1));
        assert!(!narrow.contains(b(1)));
        assert!(!narrow.contains(b(0)));
    }

    #[test]
    fn truncate_commutes_with_update() {
        // The homomorphism property on a concrete access sequence: project
        // then update == update then project, for hits at surviving ages,
        // hits at truncated ages, and misses.
        for kind in [AnalysisKind::Must, AnalysisKind::May] {
            let mut wide = Acs::empty(&geometry(), 4, kind);
            for i in 0..4 {
                wide.update(b(i));
            }
            for access in [b(3), b(1), b(0), b(7), b(2)] {
                let mut projected = wide.truncate(2);
                projected.update(access);
                wide.update(access);
                assert_eq!(wide.truncate(2), projected, "{kind:?} access {access}");
            }
        }
    }

    #[test]
    fn truncate_commutes_with_join() {
        for kind in [AnalysisKind::Must, AnalysisKind::May] {
            let mut a = Acs::empty(&geometry(), 4, kind);
            let mut c = Acs::empty(&geometry(), 4, kind);
            for i in 0..4 {
                a.update(b(i));
            }
            for i in [2u32, 5, 1, 3] {
                c.update(b(i));
            }
            let mut projected = a.truncate(3);
            projected.join(&c.truncate(3));
            a.join(&c);
            assert_eq!(a.truncate(3), projected, "{kind:?}");
        }
    }

    #[test]
    fn truncate_to_same_width_is_identity() {
        let mut acs = Acs::empty(&geometry(), 4, AnalysisKind::May);
        acs.update(b(1));
        acs.update(b(2));
        assert_eq!(acs.truncate(4), acs);
    }

    #[test]
    #[should_panic(expected = "larger associativity")]
    fn truncate_cannot_widen() {
        let acs = Acs::empty(&geometry(), 2, AnalysisKind::Must);
        let _ = acs.truncate(3);
    }
}
