//! Cache hit/miss classifications (CHMC).

use pwcet_cfg::{LoopId, NodeId};

/// A persistence scope: where a first-miss reference pays its single miss
/// per entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// The whole program (entered exactly once).
    Program,
    /// A natural loop of the expanded graph.
    Loop(LoopId),
}

/// The worst-case cache behavior of one instruction fetch (§II-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Chmc {
    /// Guaranteed hit on every execution (Must analysis).
    AlwaysHit,
    /// At most one miss per entry of the scope (Persistence analysis).
    FirstMiss(Scope),
    /// Guaranteed miss on every execution (May analysis: block absent).
    AlwaysMiss,
    /// None of the above. The evaluation treats this as always-miss
    /// (§IV-A).
    NotClassified,
}

impl Chmc {
    /// `true` if the reference can never miss.
    pub fn is_always_hit(self) -> bool {
        matches!(self, Chmc::AlwaysHit)
    }

    /// `true` if every execution must be charged a miss (always-miss or
    /// not-classified, which the evaluation merges).
    pub fn is_charged_per_execution(self) -> bool {
        matches!(self, Chmc::AlwaysMiss | Chmc::NotClassified)
    }

    /// The first-miss scope, if this is a first-miss classification.
    pub fn first_miss_scope(self) -> Option<Scope> {
        match self {
            Chmc::FirstMiss(scope) => Some(scope),
            _ => None,
        }
    }
}

/// Classification counts, for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChmcStats {
    /// Number of always-hit references.
    pub always_hit: usize,
    /// Number of first-miss references.
    pub first_miss: usize,
    /// Number of always-miss references.
    pub always_miss: usize,
    /// Number of unclassified references.
    pub not_classified: usize,
}

impl ChmcStats {
    /// Total classified references.
    pub fn total(&self) -> usize {
        self.always_hit + self.first_miss + self.always_miss + self.not_classified
    }
}

/// Per-reference classifications for a whole expanded graph.
///
/// Indexed by `(node, reference index within the node)`; reference `i` of a
/// node is its `i`-th instruction fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChmcMap {
    per_node: Vec<Vec<Chmc>>,
}

impl ChmcMap {
    pub(crate) fn new(per_node: Vec<Vec<Chmc>>) -> Self {
        Self { per_node }
    }

    /// Builds a map from per-node classification rows (`rows[node][i]` is
    /// the class of reference `i` of `node`). This is the deserialization
    /// entry point of the on-disk context store; analysis code uses
    /// [`classify`](crate::classify) instead.
    pub fn from_rows(rows: Vec<Vec<Chmc>>) -> Self {
        Self::new(rows)
    }

    /// The classification of reference `index` of `node`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, node: NodeId, index: usize) -> Chmc {
        self.per_node[node][index]
    }

    /// All classifications of one node, in fetch order.
    pub fn node(&self, node: NodeId) -> &[Chmc] {
        &self.per_node[node]
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.per_node.len()
    }

    /// `true` when no nodes are covered.
    pub fn is_empty(&self) -> bool {
        self.per_node.is_empty()
    }

    /// Aggregate class counts.
    pub fn stats(&self) -> ChmcStats {
        let mut stats = ChmcStats::default();
        for classes in &self.per_node {
            for c in classes {
                match c {
                    Chmc::AlwaysHit => stats.always_hit += 1,
                    Chmc::FirstMiss(_) => stats.first_miss += 1,
                    Chmc::AlwaysMiss => stats.always_miss += 1,
                    Chmc::NotClassified => stats.not_classified += 1,
                }
            }
        }
        stats
    }

    /// Iterates over `(node, index, classification)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, usize, Chmc)> + '_ {
        self.per_node
            .iter()
            .enumerate()
            .flat_map(|(n, cs)| cs.iter().enumerate().map(move |(i, &c)| (n, i, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chmc_predicates() {
        assert!(Chmc::AlwaysHit.is_always_hit());
        assert!(!Chmc::AlwaysMiss.is_always_hit());
        assert!(Chmc::AlwaysMiss.is_charged_per_execution());
        assert!(Chmc::NotClassified.is_charged_per_execution());
        assert!(!Chmc::FirstMiss(Scope::Program).is_charged_per_execution());
        assert_eq!(
            Chmc::FirstMiss(Scope::Loop(3)).first_miss_scope(),
            Some(Scope::Loop(3))
        );
        assert_eq!(Chmc::AlwaysHit.first_miss_scope(), None);
    }

    #[test]
    fn map_stats_count_classes() {
        let map = ChmcMap::new(vec![
            vec![Chmc::AlwaysHit, Chmc::AlwaysMiss],
            vec![
                Chmc::FirstMiss(Scope::Program),
                Chmc::NotClassified,
                Chmc::AlwaysHit,
            ],
        ]);
        let stats = map.stats();
        assert_eq!(stats.always_hit, 2);
        assert_eq!(stats.first_miss, 1);
        assert_eq!(stats.always_miss, 1);
        assert_eq!(stats.not_classified, 1);
        assert_eq!(stats.total(), 5);
        assert_eq!(map.get(1, 0), Chmc::FirstMiss(Scope::Program));
        assert_eq!(map.iter().count(), 5);
    }
}
