//! Property tests: the bit-packed abstract cache state is **bit-identical**
//! to the frozen set-based [`Acs`] oracle under random interleavings of
//! update, join, and truncate, across random geometries — including
//! multi-lane universes (more than 64 blocks mapping to one set) and both
//! analysis kinds.
//!
//! Identity is checked both ways after every operation: decoding the
//! packed state yields exactly the oracle state, and re-encoding the
//! oracle state yields exactly the packed words (the interner orders each
//! set's universe deterministically, so encodings are canonical).

use std::sync::Arc;

use proptest::prelude::*;
use pwcet_analysis::{Acs, AnalysisKind, BlockInterner, PackedAcs};
use pwcet_cache::{CacheGeometry, MemBlock};

/// One step of a random operation sequence. Indices select blocks from
/// the pre-interned universe.
#[derive(Debug, Clone)]
enum Op {
    /// Access one block.
    Update(usize),
    /// Join with a fresh state warmed by the given accesses.
    Join(Vec<usize>),
    /// Truncate to `max(1, assoc - drop)` ways (replacing the state).
    Truncate(u32),
}

#[derive(Debug, Clone)]
struct Scenario {
    sets: u32,
    assoc: u32,
    universe: usize,
    kind: AnalysisKind,
    ops: Vec<Op>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        1u32..=4,
        prop_oneof![
            8usize..40,
            // Wide universes: >64 blocks on at least one set, so the
            // packed form needs 2+ lanes and carries between words.
            70usize..150,
        ],
        prop_oneof![Just(AnalysisKind::Must), Just(AnalysisKind::May)],
    )
        .prop_flat_map(|(sets, assoc, universe, kind)| {
            // Unweighted alternation; updates dominate by arm count.
            let op = prop_oneof![
                (0..universe).prop_map(Op::Update),
                (0..universe).prop_map(Op::Update),
                (0..universe).prop_map(Op::Update),
                proptest::collection::vec(0..universe, 0..25).prop_map(Op::Join),
                (1u32..=3).prop_map(Op::Truncate),
            ];
            (proptest::collection::vec(op, 1..60),).prop_map(move |(ops,)| Scenario {
                sets,
                assoc,
                universe,
                kind,
                ops,
            })
        })
}

/// Runs `accesses` over a fresh oracle/packed pair.
fn warmed(
    geometry: &CacheGeometry,
    interner: &Arc<BlockInterner>,
    assoc: u32,
    kind: AnalysisKind,
    accesses: &[usize],
) -> (Acs, PackedAcs) {
    let mut acs = Acs::empty(geometry, assoc, kind);
    let mut packed = PackedAcs::empty(interner, assoc, kind);
    for &i in accesses {
        let block = MemBlock(i as u32);
        acs.update(block);
        packed.update(block);
    }
    (acs, packed)
}

fn assert_bit_identical(
    acs: &Acs,
    packed: &PackedAcs,
    interner: &Arc<BlockInterner>,
    universe: usize,
    step: usize,
) {
    assert_eq!(&packed.to_acs(), acs, "decode mismatch at step {step}");
    assert_eq!(
        &PackedAcs::from_acs(acs, interner),
        packed,
        "re-encode mismatch at step {step}"
    );
    for i in 0..universe {
        let block = MemBlock(i as u32);
        assert_eq!(
            packed.age_of(block),
            acs.age_of(block),
            "age_of({block:?}) at step {step}"
        );
    }
}

proptest! {
    #[test]
    fn random_op_sequences_are_bit_identical(scenario in arb_scenario()) {
        let geometry = CacheGeometry::new(scenario.sets, 4, 16);
        let interner = Arc::new(BlockInterner::from_blocks(
            &geometry,
            (0..scenario.universe).map(|i| MemBlock(i as u32)),
        ));
        let mut assoc = scenario.assoc;
        let (mut acs, mut packed) =
            warmed(&geometry, &interner, assoc, scenario.kind, &[]);
        for (step, op) in scenario.ops.iter().enumerate() {
            match op {
                Op::Update(i) => {
                    let block = MemBlock(*i as u32);
                    acs.update(block);
                    packed.update(block);
                }
                Op::Join(accesses) => {
                    let (other_acs, other_packed) =
                        warmed(&geometry, &interner, assoc, scenario.kind, accesses);
                    let acs_changed = acs.join_in_place(&other_acs);
                    let packed_changed = packed.join_in_place(&other_packed);
                    prop_assert_eq!(
                        packed_changed, acs_changed,
                        "change detection diverged at step {}", step
                    );
                }
                Op::Truncate(drop) => {
                    assoc = (assoc.saturating_sub(*drop)).max(1);
                    acs = acs.truncate(assoc);
                    packed = packed.truncate(assoc);
                }
            }
            assert_bit_identical(&acs, &packed, &interner, scenario.universe, step);
        }
    }

    #[test]
    fn conversion_round_trips_after_random_warmup(
        sets in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        assoc in 1u32..=4,
        kind in prop_oneof![Just(AnalysisKind::Must), Just(AnalysisKind::May)],
        accesses in proptest::collection::vec(0usize..90, 0..120),
    ) {
        let geometry = CacheGeometry::new(sets, 4, 16);
        let interner = Arc::new(BlockInterner::from_blocks(
            &geometry,
            (0..90).map(|i| MemBlock(i as u32)),
        ));
        let (acs, packed) = warmed(&geometry, &interner, assoc, kind, &accesses);
        prop_assert_eq!(&packed.to_acs(), &acs);
        prop_assert_eq!(&PackedAcs::from_acs(&acs, &interner), &packed);
        // Raw-word round trip (the codec path).
        let rebuilt = PackedAcs::from_words(
            kind,
            assoc,
            &interner,
            packed.words().to_vec(),
        );
        prop_assert_eq!(&rebuilt, &packed);
    }
}
