//! Property tests: the abstract cache states are sound abstractions of
//! the concrete LRU cache.
//!
//! For random access sequences (with joins exercised via randomized
//! prefix merging):
//!
//! * **Must**: every block in the Must state is in the concrete cache,
//!   and its concrete LRU age never exceeds its abstract age;
//! * **May**: every block in the concrete cache is in the May state, and
//!   its abstract age never exceeds its concrete age.

use proptest::prelude::*;
use pwcet_analysis::{Acs, AnalysisKind};
use pwcet_cache::{CacheGeometry, LruSet, MemBlock};

/// A concrete multi-set LRU cache driven alongside the abstract states.
struct ConcreteCache {
    geometry: CacheGeometry,
    sets: Vec<LruSet>,
}

impl ConcreteCache {
    fn new(geometry: CacheGeometry, assoc: u32) -> Self {
        Self {
            geometry,
            sets: (0..geometry.sets())
                .map(|_| LruSet::new(assoc as usize))
                .collect(),
        }
    }

    fn access(&mut self, block: MemBlock) {
        let set = self.geometry.set_of_block(block) as usize;
        self.sets[set].access(block);
    }

    fn age_of(&self, block: MemBlock) -> Option<usize> {
        let set = self.geometry.set_of_block(block) as usize;
        self.sets[set].stack().iter().position(|&b| b == block)
    }
}

fn geometry() -> CacheGeometry {
    CacheGeometry::new(4, 4, 16)
}

fn arb_trace() -> impl Strategy<Value = Vec<u32>> {
    // Block ids 0..24 over 4 sets: plenty of conflicts.
    proptest::collection::vec(0u32..24, 1..120)
}

proptest! {
    #[test]
    fn must_state_underapproximates_concrete(trace in arb_trace(), assoc in 1u32..=4) {
        let g = geometry();
        let mut concrete = ConcreteCache::new(g, assoc);
        let mut must = Acs::empty(&g, assoc, AnalysisKind::Must);
        for &b in &trace {
            let block = MemBlock(b);
            concrete.access(block);
            must.update(block);
            // Every Must block is cached, at age >= its abstract claim.
            for probe in 0..24u32 {
                let probe = MemBlock(probe);
                if let Some(abstract_age) = must.age_of(probe) {
                    let concrete_age = concrete.age_of(probe);
                    prop_assert!(
                        concrete_age.is_some(),
                        "Must contains {probe} but the cache does not"
                    );
                    prop_assert!(
                        concrete_age.unwrap() <= abstract_age,
                        "{probe}: concrete age {} > abstract max age {}",
                        concrete_age.unwrap(),
                        abstract_age
                    );
                }
            }
        }
    }

    #[test]
    fn may_state_overapproximates_concrete(trace in arb_trace(), assoc in 1u32..=4) {
        let g = geometry();
        let mut concrete = ConcreteCache::new(g, assoc);
        let mut may = Acs::empty(&g, assoc, AnalysisKind::May);
        for &b in &trace {
            let block = MemBlock(b);
            concrete.access(block);
            may.update(block);
            for probe in 0..24u32 {
                let probe = MemBlock(probe);
                if let Some(concrete_age) = concrete.age_of(probe) {
                    let abstract_age = may.age_of(probe);
                    prop_assert!(
                        abstract_age.is_some(),
                        "cache holds {probe} but May lost it"
                    );
                    prop_assert!(
                        abstract_age.unwrap() <= concrete_age,
                        "{probe}: abstract min age {} > concrete age {}",
                        abstract_age.unwrap(),
                        concrete_age
                    );
                }
            }
        }
    }

    #[test]
    fn joined_must_is_sound_for_both_histories(
        prefix_a in arb_trace(),
        prefix_b in arb_trace(),
        suffix in arb_trace(),
        assoc in 1u32..=4,
    ) {
        // Two alternative histories merge (control-flow join), then a
        // common suffix executes. The joined Must state must be sound for
        // BOTH concrete executions.
        let g = geometry();
        let mut must_a = Acs::empty(&g, assoc, AnalysisKind::Must);
        let mut must_b = Acs::empty(&g, assoc, AnalysisKind::Must);
        let mut concrete_a = ConcreteCache::new(g, assoc);
        let mut concrete_b = ConcreteCache::new(g, assoc);
        for &b in &prefix_a {
            must_a.update(MemBlock(b));
            concrete_a.access(MemBlock(b));
        }
        for &b in &prefix_b {
            must_b.update(MemBlock(b));
            concrete_b.access(MemBlock(b));
        }
        must_a.join(&must_b);
        for &b in &suffix {
            must_a.update(MemBlock(b));
            concrete_a.access(MemBlock(b));
            concrete_b.access(MemBlock(b));
            for probe in 0..24u32 {
                let probe = MemBlock(probe);
                if let Some(abstract_age) = must_a.age_of(probe) {
                    for (label, concrete) in
                        [("A", &concrete_a), ("B", &concrete_b)]
                    {
                        let age = concrete.age_of(probe);
                        prop_assert!(age.is_some(), "history {label} evicted {probe}");
                        prop_assert!(
                            age.unwrap() <= abstract_age,
                            "history {label}: {probe} at {} > claimed {}",
                            age.unwrap(),
                            abstract_age
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn joined_may_covers_both_histories(
        prefix_a in arb_trace(),
        prefix_b in arb_trace(),
        suffix in arb_trace(),
        assoc in 1u32..=4,
    ) {
        let g = geometry();
        let mut may_a = Acs::empty(&g, assoc, AnalysisKind::May);
        let mut may_b = Acs::empty(&g, assoc, AnalysisKind::May);
        let mut concrete_a = ConcreteCache::new(g, assoc);
        let mut concrete_b = ConcreteCache::new(g, assoc);
        for &b in &prefix_a {
            may_a.update(MemBlock(b));
            concrete_a.access(MemBlock(b));
        }
        for &b in &prefix_b {
            may_b.update(MemBlock(b));
            concrete_b.access(MemBlock(b));
        }
        may_a.join(&may_b);
        for &b in &suffix {
            may_a.update(MemBlock(b));
            concrete_a.access(MemBlock(b));
            concrete_b.access(MemBlock(b));
            for probe in 0..24u32 {
                let probe = MemBlock(probe);
                for (label, concrete) in [("A", &concrete_a), ("B", &concrete_b)] {
                    if let Some(concrete_age) = concrete.age_of(probe) {
                        let abstract_age = may_a.age_of(probe);
                        prop_assert!(
                            abstract_age.is_some(),
                            "history {label}: May lost cached block {probe}"
                        );
                        prop_assert!(
                            abstract_age.unwrap() <= concrete_age,
                            "history {label}: {probe} min-age too high"
                        );
                    }
                }
            }
        }
    }
}
