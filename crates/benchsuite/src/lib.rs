//! The modelled Mälardalen WCET benchmark suite.
//!
//! The paper evaluates 25 benchmarks of the Mälardalen suite \[13\]
//! compiled for MIPS R2000/R3000 (§IV-A). The original C sources and gcc
//! 4.1 binaries are not reproducible here, but the analysis observes only
//! the *fetch address stream shape* — code footprint, basic-block
//! structure, loop nests and bounds, and call structure. Each program in
//! this crate models those properties of one original benchmark:
//!
//! * **code footprint** relative to the 1 KB analyzed cache (tiny kernels
//!   like `fibcall` up to multi-KB control code like `nsichneu`);
//! * **loop structure** (bounds and nesting from the published suite,
//!   clamped where the original iterates millions of times);
//! * **call structure** (leaf helpers, helpers called from loops);
//! * **branchiness** (if/else diamonds inside hot loops).
//!
//! These are exactly the features that decide the paper's four benchmark
//! categories (spatial-only locality, MRU-temporal, deep-temporal, mixed
//! — §IV-B), so the suite exercises the same qualitative behaviors.
//!
//! # Example
//!
//! ```
//! let bench = pwcet_benchsuite::by_name("matmult").expect("matmult exists");
//! assert!(bench.program.validate().is_ok());
//! assert_eq!(pwcet_benchsuite::all().len(), 25);
//! ```

mod programs;

use pwcet_progen::Program;

/// One modelled benchmark.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The Mälardalen benchmark name.
    pub name: &'static str,
    /// What the original computes and what the model reproduces.
    pub description: &'static str,
    /// The structured program.
    pub program: Program,
}

/// All 25 benchmarks of the evaluation, in the paper's alphabetical order.
pub fn all() -> Vec<Benchmark> {
    vec![
        programs::adpcm(),
        programs::bs(),
        programs::bsort100(),
        programs::cnt(),
        programs::compress(),
        programs::cover(),
        programs::crc(),
        programs::edn(),
        programs::expint(),
        programs::fdct(),
        programs::fft(),
        programs::fibcall(),
        programs::fir(),
        programs::insertsort(),
        programs::jfdctint(),
        programs::ludcmp(),
        programs::matmult(),
        programs::minver(),
        programs::ndes(),
        programs::ns(),
        programs::nsichneu(),
        programs::prime(),
        programs::qurt(),
        programs::statemate(),
        programs::ud(),
    ]
}

/// Looks up one benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

/// The benchmark names in suite order.
pub fn names() -> Vec<&'static str> {
    all().into_iter().map(|b| b.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_25_unique_benchmarks() {
        let names = names();
        assert_eq!(names.len(), 25);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 25, "names are unique");
    }

    #[test]
    fn every_benchmark_compiles() {
        for bench in all() {
            bench
                .program
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            let compiled = bench
                .program
                .compile(0x0040_0000)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            assert!(
                compiled.image().len_words() >= 10,
                "{} is non-trivial",
                bench.name
            );
        }
    }

    #[test]
    fn footprints_span_below_and_above_the_cache() {
        // The 1 KB analyzed cache must be exceeded by some benchmarks and
        // not by others: that contrast produces the paper's categories.
        let mut below = 0;
        let mut above = 0;
        for bench in all() {
            let compiled = bench.program.compile(0x0040_0000).unwrap();
            if compiled.image().len_bytes() <= 1024 {
                below += 1;
            } else {
                above += 1;
            }
        }
        assert!(below >= 5, "{below} benchmarks fit the cache");
        assert!(above >= 5, "{above} benchmarks exceed the cache");
    }

    #[test]
    fn by_name_finds_paper_examples() {
        for name in ["adpcm", "matmult", "ud", "fft"] {
            assert!(by_name(name).is_some(), "{name} is in the suite");
        }
        assert!(by_name("does_not_exist").is_none());
    }

    #[test]
    fn descriptions_are_non_empty() {
        for bench in all() {
            assert!(!bench.description.is_empty(), "{}", bench.name);
        }
    }
}
