//! The 25 modelled benchmark programs, grouped by workload family.
//!
//! Footprint and loop-bound figures cited in each model's docs refer to
//! the *original* Mälardalen benchmark; the models reproduce the relative
//! shape (footprint vs. the 1 KB analyzed cache, loop nesting, call
//! structure), not the absolute instruction counts.

mod codec;
mod control;
mod math;
mod signal;
mod sort_search;

pub use codec::{adpcm, compress, crc, ndes};
pub use control::{cover, nsichneu, statemate};
pub use math::{expint, fac_like_prime as prime, ludcmp, minver, qurt, ud};
pub use signal::{edn, fdct, fft, fir, jfdctint};
pub use sort_search::{bs, bsort100, cnt, fibcall, insertsort, matmult, ns};
