//! Encoders, decoders and checksum kernels.

use pwcet_progen::{stmt, Program};

use crate::Benchmark;

/// `adpcm` — ADPCM speech encoder/decoder.
///
/// Original: the largest "algorithmic" benchmark of the suite (~8 KB of
/// code): a sample loop calling encode and decode paths, which themselves
/// call quantization/filter helpers with small inner loops. The combined
/// footprint far exceeds the 1 KB cache, but helpers are hot. `adpcm` is
/// the benchmark whose full exceedance curve the paper plots (Figure 3).
pub fn adpcm() -> Benchmark {
    let program = Program::new("adpcm")
        .with_function(
            "main",
            stmt::seq([
                stmt::compute(20),
                stmt::loop_(
                    60, // sample frames
                    stmt::seq([
                        stmt::call("encode"),
                        stmt::call("decode"),
                        stmt::compute(10),
                    ]),
                ),
                stmt::compute(8),
            ]),
        )
        .with_function(
            "encode",
            stmt::seq([
                stmt::compute(60), // high-pass + band split straight-line
                stmt::loop_(6, stmt::call("quantl")),
                stmt::compute(40),
                stmt::if_else(stmt::compute(24), stmt::compute(30)),
                stmt::call("upzero"),
                stmt::compute(36),
            ]),
        )
        .with_function(
            "decode",
            stmt::seq([
                stmt::compute(52),
                stmt::loop_(6, stmt::call("quantl")),
                stmt::if_else(stmt::compute(28), stmt::compute(22)),
                stmt::call("upzero"),
                stmt::compute(44),
            ]),
        )
        .with_function(
            "quantl",
            stmt::seq([
                stmt::compute(8),
                stmt::loop_(7, stmt::if_else(stmt::compute(3), stmt::compute(2))),
                stmt::compute(6),
            ]),
        )
        .with_function(
            "upzero",
            stmt::seq([
                stmt::compute(6),
                stmt::loop_(6, stmt::compute(9)),
                stmt::compute(4),
            ]),
        );
    Benchmark {
        name: "adpcm",
        description: "ADPCM encode/decode pipeline (large, helper-heavy; Figure 3's subject)",
        program,
    }
}

/// `compress` — in-memory data compression (hash + emit loop).
///
/// Original: a byte loop with hash-probe branches and occasional table
/// resets; medium footprint with one dominant loop.
pub fn compress() -> Benchmark {
    let program = Program::new("compress")
        .with_function(
            "main",
            stmt::seq([
                stmt::compute(18),
                stmt::loop_(
                    50, // input bytes per analyzed buffer
                    stmt::seq([
                        stmt::compute(14), // hash computation
                        stmt::if_else(
                            stmt::compute(10), // hit: emit code
                            stmt::seq([stmt::compute(16), stmt::call("cl_hash")]),
                        ),
                        stmt::compute(8),
                    ]),
                ),
                stmt::compute(12), // flush
            ]),
        )
        .with_function(
            "cl_hash",
            stmt::loop_(16, stmt::compute(6)), // partial table clear
        );
    Benchmark {
        name: "compress",
        description: "LZ-style byte compressor (branchy hash loop + table-clear helper)",
        program,
    }
}

/// `crc` — cyclic redundancy check over a 40-byte message.
///
/// Original: an outer byte loop with a table-driven fast path and a
/// bit-serial slow path (8-iteration inner loop) — classic two-arm branch
/// inside a hot loop.
pub fn crc() -> Benchmark {
    let program = Program::new("crc").with_function(
        "main",
        stmt::seq([
            stmt::compute(30), // table setup prologue
            stmt::loop_(
                40,
                stmt::seq([
                    stmt::compute(17),
                    stmt::if_else(
                        stmt::compute(24),                 // table lookup arm
                        stmt::loop_(8, stmt::compute(13)), // bit-serial arm
                    ),
                    stmt::compute(10),
                ]),
            ),
            stmt::compute(14),
        ]),
    );
    Benchmark {
        name: "crc",
        description: "CRC over 40 bytes (table arm vs. bit-serial arm in a hot loop)",
        program,
    }
}

/// `ndes` — lightweight DES-style block cipher.
///
/// Original: 16 Feistel rounds calling S-box/permutation helpers; ~2 KB
/// of code with hot helpers called from every round.
pub fn ndes() -> Benchmark {
    let program = Program::new("ndes")
        .with_function(
            "main",
            stmt::seq([
                stmt::compute(24), // key schedule head
                stmt::loop_(
                    16,
                    stmt::seq([
                        stmt::call("f_round"),
                        stmt::compute(12), // swap halves, round key advance
                    ]),
                ),
                stmt::compute(16), // final permutation
            ]),
        )
        .with_function(
            "f_round",
            stmt::seq([
                stmt::compute(20), // expansion permutation
                stmt::loop_(8, stmt::call("sbox")),
                stmt::compute(18), // P permutation
            ]),
        )
        .with_function(
            "sbox",
            stmt::seq([
                stmt::compute(6),
                stmt::if_else(stmt::compute(4), stmt::compute(4)),
            ]),
        );
    Benchmark {
        name: "ndes",
        description: "16-round Feistel cipher with S-box helpers (hot call chain)",
        program,
    }
}
