//! Numerical and math-library-style kernels.

use pwcet_progen::{stmt, Program};

use crate::Benchmark;

/// `expint` — series expansion of the exponential integral.
///
/// Original: an outer loop (50 terms) whose body branches between a cheap
/// continuation and an expensive inner summation loop.
pub fn expint() -> Benchmark {
    let program = Program::new("expint").with_function(
        "main",
        stmt::seq([
            stmt::compute(28),
            stmt::loop_(
                50,
                stmt::if_else(
                    stmt::seq([stmt::compute(26), stmt::loop_(24, stmt::compute(18))]),
                    stmt::compute(34),
                ),
            ),
            stmt::compute(14),
        ]),
    );
    Benchmark {
        name: "expint",
        description: "exponential-integral series (branch between cheap and loop-heavy arms)",
        program,
    }
}

/// `ludcmp` — LU decomposition and back-substitution of a 5×5 system.
///
/// Original: several sequential loop nests (elimination, forward and
/// backward substitution) over a shared small matrix kernel.
pub fn ludcmp() -> Benchmark {
    let program = Program::new("ludcmp").with_function(
        "main",
        stmt::seq([
            stmt::compute(32), // matrix/vector setup
            // Elimination: k, i, j triangular nest (rectangular model).
            stmt::loop_(
                5,
                stmt::seq([
                    stmt::compute(15),
                    stmt::loop_(
                        5,
                        stmt::seq([stmt::compute(24), stmt::loop_(5, stmt::compute(22))]),
                    ),
                ]),
            ),
            // Forward substitution.
            stmt::loop_(
                5,
                stmt::seq([stmt::compute(15), stmt::loop_(5, stmt::compute(17))]),
            ),
            // Backward substitution.
            stmt::loop_(
                5,
                stmt::seq([stmt::compute(17), stmt::loop_(5, stmt::compute(17))]),
            ),
            stmt::compute(12),
        ]),
    );
    Benchmark {
        name: "ludcmp",
        description: "5x5 LU decomposition + substitutions (sequential loop nests)",
        program,
    }
}

/// `minver` — inversion of a 3×3 matrix.
///
/// Original: pivoting elimination with small fixed-bound nests and a
/// determinant helper; moderately branchy straight-line math between
/// loops.
pub fn minver() -> Benchmark {
    let program = Program::new("minver")
        .with_function(
            "main",
            stmt::seq([
                stmt::compute(38),
                stmt::call("mmul"),
                stmt::loop_(
                    3,
                    stmt::seq([
                        stmt::compute(30),                                  // pivot search straight-line
                        stmt::if_else(stmt::compute(20), stmt::compute(5)), // row swap
                        stmt::loop_(
                            3,
                            stmt::seq([stmt::compute(15), stmt::loop_(3, stmt::compute(15))]),
                        ),
                    ]),
                ),
                stmt::compute(24),
            ]),
        )
        .with_function(
            "mmul",
            stmt::loop_(
                3,
                stmt::loop_(
                    3,
                    stmt::seq([stmt::compute(10), stmt::loop_(3, stmt::compute(13))]),
                ),
            ),
        );
    Benchmark {
        name: "minver",
        description: "3x3 matrix inversion with pivoting (small nests + helper)",
        program,
    }
}

/// `qurt` — roots of a quadratic equation via Newton's square root.
///
/// Original: straight-line coefficient math around a `sqrt` helper whose
/// iteration loop runs up to 19 times, called from both root branches.
pub fn qurt() -> Benchmark {
    let program = Program::new("qurt")
        .with_function(
            "main",
            stmt::seq([
                stmt::compute(42), // discriminant computation
                stmt::if_else(
                    stmt::seq([stmt::call("newton_sqrt"), stmt::compute(24)]),
                    stmt::seq([stmt::call("newton_sqrt"), stmt::compute(28)]),
                ),
                stmt::compute(18),
            ]),
        )
        .with_function(
            "newton_sqrt",
            stmt::seq([
                stmt::compute(12),
                stmt::loop_(
                    19,
                    stmt::seq([
                        stmt::compute(22),
                        stmt::if_else(stmt::compute(5), stmt::compute(5)),
                    ]),
                ),
            ]),
        );
    Benchmark {
        name: "qurt",
        description: "quadratic roots via an iterative square-root helper",
        program,
    }
}

/// `ud` — LU-based solver of a 5×5 linear system (no pivoting).
///
/// Original: triangular elimination and substitution nests over a compact
/// kernel. The paper reports `ud` as the benchmark with the *minimum* SRB
/// gain (25%): its temporal reuse sits deeper than the MRU position.
pub fn ud() -> Benchmark {
    let program = Program::new("ud").with_function(
        "main",
        stmt::seq([
            stmt::compute(28),
            stmt::loop_(
                5,
                stmt::seq([
                    stmt::compute(19),
                    stmt::loop_(
                        5,
                        stmt::seq([
                            stmt::compute(32),
                            stmt::loop_(5, stmt::compute(26)),
                            stmt::compute(14),
                        ]),
                    ),
                ]),
            ),
            stmt::loop_(
                5,
                stmt::seq([stmt::compute(21), stmt::loop_(5, stmt::compute(19))]),
            ),
            stmt::compute(10),
        ]),
    );
    Benchmark {
        name: "ud",
        description: "5x5 LU solver without pivoting (deep-temporal reuse)",
        program,
    }
}

/// `prime` — trial-division primality test.
///
/// Original: one division loop with an early-out branch over a tiny
/// kernel; entirely MRU-resident.
pub fn fac_like_prime() -> Benchmark {
    let program = Program::new("prime").with_function(
        "main",
        stmt::seq([
            stmt::compute(14),
            stmt::loop_(
                16,
                stmt::seq([
                    stmt::compute(18), // divide + remainder test
                    stmt::if_else(stmt::compute(5), stmt::compute(7)),
                ]),
            ),
            stmt::compute(8),
        ]),
    );
    Benchmark {
        name: "prime",
        description: "trial-division primality test (tiny branchy loop)",
        program,
    }
}
