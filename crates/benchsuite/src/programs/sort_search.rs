//! Sorting, searching and small array kernels.

use pwcet_progen::{stmt, Program};

use crate::Benchmark;

/// `bs` — binary search of a 15-entry array.
///
/// Original: ~4 iterations over a tiny loop with one comparison branch.
/// The whole benchmark fits in a handful of cache blocks, so the cache
/// captures spatial locality plus temporal reuse in the MRU position —
/// the paper's second category.
pub fn bs() -> Benchmark {
    let program = Program::new("bs").with_function(
        "main",
        stmt::seq([
            stmt::compute(14), // array set-up
            stmt::loop_(
                4,
                stmt::seq([
                    stmt::compute(22), // midpoint arithmetic + load
                    stmt::if_else(stmt::compute(8), stmt::compute(9)),
                ]),
            ),
            stmt::compute(8), // result selection
        ]),
    );
    Benchmark {
        name: "bs",
        description: "binary search over a 15-entry array (tiny, MRU-temporal)",
        program,
    }
}

/// `bsort100` — bubble sort of 100 integers.
///
/// Original: a 99×99 triangular nest of compare-and-swap iterations over
/// a compact kernel. Modelled as a full rectangular nest (the analysis
/// uses rectangular bounds anyway) with a swap branch in the body.
pub fn bsort100() -> Benchmark {
    let program = Program::new("bsort100").with_function(
        "main",
        stmt::seq([
            stmt::compute(24), // array initialization prologue
            stmt::loop_(
                99,
                stmt::seq([
                    stmt::compute(10),
                    stmt::loop_(
                        99,
                        stmt::seq([
                            stmt::compute(16),                                  // load pair, compare
                            stmt::if_else(stmt::compute(14), stmt::compute(3)), // swap or not
                        ]),
                    ),
                ]),
            ),
        ]),
    );
    Benchmark {
        name: "bsort100",
        description: "bubble sort of 100 integers (tight doubly-nested kernel)",
        program,
    }
}

/// `cnt` — counts non-negative values in a 10×10 matrix.
///
/// Original: two 10-bounded nested loops around a sum/count kernel with a
/// sign test, plus separate initialization loops.
pub fn cnt() -> Benchmark {
    let program = Program::new("cnt")
        .with_function(
            "main",
            stmt::seq([
                stmt::call("init_matrix"),
                stmt::loop_(
                    10,
                    stmt::loop_(
                        10,
                        stmt::seq([
                            stmt::compute(18),
                            stmt::if_else(stmt::compute(12), stmt::compute(9)),
                        ]),
                    ),
                ),
                stmt::compute(14),
            ]),
        )
        .with_function(
            "init_matrix",
            stmt::loop_(10, stmt::loop_(10, stmt::compute(13))),
        );
    Benchmark {
        name: "cnt",
        description: "count/sum of positives in a 10x10 matrix (nested loops + helper)",
        program,
    }
}

/// `fibcall` — iterative Fibonacci(30).
///
/// Original: one 30-iteration loop over a ~10-instruction body; the whole
/// program is a few cache blocks.
pub fn fibcall() -> Benchmark {
    let program = Program::new("fibcall").with_function(
        "main",
        stmt::seq([
            stmt::compute(8),
            stmt::loop_(30, stmt::compute(17)),
            stmt::compute(5),
        ]),
    );
    Benchmark {
        name: "fibcall",
        description: "iterative Fibonacci(30) (tiny single loop)",
        program,
    }
}

/// `insertsort` — insertion sort of 10 integers.
///
/// Original: outer loop over 9 elements, data-dependent inner
/// shift loop (bounded by the element index; modelled with the worst
/// rectangular bound).
pub fn insertsort() -> Benchmark {
    let program = Program::new("insertsort").with_function(
        "main",
        stmt::seq([
            stmt::compute(14),
            stmt::loop_(
                9,
                stmt::seq([
                    stmt::compute(11),
                    stmt::loop_(9, stmt::if_else(stmt::compute(12), stmt::compute(4))),
                ]),
            ),
        ]),
    );
    Benchmark {
        name: "insertsort",
        description: "insertion sort of 10 integers (small nest, branchy inner loop)",
        program,
    }
}

/// `matmult` — 20×20 integer matrix multiplication.
///
/// Original: a perfect triple nest (20³ multiply-accumulate iterations)
/// over a compact kernel plus initialization helpers. The paper uses
/// `matmult` to illustrate reading Figure 4 (category 4: mixed locality).
pub fn matmult() -> Benchmark {
    let program = Program::new("matmult")
        .with_function(
            "main",
            stmt::seq([
                stmt::call("initialize"),
                stmt::call("initialize"),
                stmt::loop_(
                    20,
                    stmt::seq([
                        stmt::compute(9),
                        stmt::loop_(
                            20,
                            stmt::seq([
                                stmt::compute(20),                  // result element setup
                                stmt::loop_(20, stmt::compute(34)), // MAC kernel
                                stmt::compute(12),                  // store element
                            ]),
                        ),
                    ]),
                ),
            ]),
        )
        .with_function(
            "initialize",
            stmt::loop_(20, stmt::loop_(20, stmt::compute(15))),
        );
    Benchmark {
        name: "matmult",
        description: "20x20 matrix multiply (triple nest + init helpers; Figure 4's example)",
        program,
    }
}

/// `ns` — search in a 4-dimensional 5×5×5×5 array.
///
/// Original: four nested loops of bound 5 with an early-exit test;
/// modelled with the worst-case full traversal and the test as a branch.
pub fn ns() -> Benchmark {
    let program = Program::new("ns").with_function(
        "main",
        stmt::seq([
            stmt::compute(12),
            stmt::loop_(
                5,
                stmt::loop_(
                    5,
                    stmt::loop_(
                        5,
                        stmt::loop_(
                            5,
                            stmt::seq([
                                stmt::compute(26), // 4-level index arithmetic + load
                                stmt::if_else(stmt::compute(6), stmt::compute(8)),
                            ]),
                        ),
                    ),
                ),
            ),
        ]),
    );
    Benchmark {
        name: "ns",
        description: "search in a 5^4 table (four-deep loop nest)",
        program,
    }
}
