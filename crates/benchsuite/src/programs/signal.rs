//! Signal-processing kernels.

use pwcet_progen::{stmt, Program};

use crate::Benchmark;

/// `edn` — vector/filter kernel collection (FIR, dot products, …).
///
/// Original: a sequence of independent medium loops over distinct code
/// regions (~1.4 KB total), each with moderate bounds — mixed locality.
pub fn edn() -> Benchmark {
    let program = Program::new("edn").with_function(
        "main",
        stmt::seq([
            stmt::compute(10),
            // vec_mpy-style kernel.
            stmt::loop_(150, stmt::compute(24)),
            // mac-style kernel with a saturation branch.
            stmt::loop_(
                100,
                stmt::seq([
                    stmt::compute(28),
                    stmt::if_else(stmt::compute(8), stmt::compute(10)),
                ]),
            ),
            // fir-style doubly nested kernel.
            stmt::loop_(
                36,
                stmt::seq([stmt::compute(15), stmt::loop_(32, stmt::compute(19))]),
            ),
            // latsynth-style kernel.
            stmt::loop_(64, stmt::compute(32)),
            stmt::compute(8),
        ]),
    );
    Benchmark {
        name: "edn",
        description: "collection of DSP kernels run back to back (mixed locality)",
        program,
    }
}

/// `fdct` — fast discrete cosine transform of an 8×8 block.
///
/// Original: two sequential 8-iteration loops (rows then columns), each
/// with a long straight-line butterfly body (~100 instructions).
pub fn fdct() -> Benchmark {
    let program = Program::new("fdct").with_function(
        "main",
        stmt::seq([
            stmt::compute(8),
            stmt::loop_(8, stmt::compute(104)), // row pass
            stmt::loop_(8, stmt::compute(112)), // column pass
            stmt::compute(6),
        ]),
    );
    Benchmark {
        name: "fdct",
        description: "8x8 forward DCT: two 8-iteration loops with long butterfly bodies",
        program,
    }
}

/// `fft` — 1024-point complex FFT (radix-2, iterative).
///
/// Original: log₂(n) outer stages over butterfly loops plus a
/// trigonometric helper called per butterfly group. The paper reports
/// `fft` as the benchmark with the *minimum* RW gain (26%).
pub fn fft() -> Benchmark {
    let program = Program::new("fft")
        .with_function(
            "main",
            stmt::seq([
                stmt::compute(12),                  // bit-reversal setup
                stmt::loop_(64, stmt::compute(21)), // bit-reversal permutation
                stmt::loop_(
                    10, // log2(1024) stages
                    stmt::seq([
                        stmt::compute(8),
                        stmt::loop_(
                            32, // butterfly groups per stage (model)
                            stmt::seq([
                                stmt::call("twiddle"),
                                stmt::loop_(16, stmt::compute(42)), // butterflies
                            ]),
                        ),
                    ]),
                ),
                stmt::compute(6),
            ]),
        )
        .with_function(
            "twiddle",
            stmt::seq([
                stmt::compute(22),
                stmt::loop_(6, stmt::compute(18)), // sine series terms
            ]),
        );
    Benchmark {
        name: "fft",
        description: "iterative radix-2 FFT with a trigonometric helper (deep temporal reuse)",
        program,
    }
}

/// `fir` — finite impulse response filter over 700 samples.
///
/// Original: outer sample loop (700) with an inner accumulation loop over
/// the filter order (~35 taps in the analyzed window).
pub fn fir() -> Benchmark {
    let program = Program::new("fir").with_function(
        "main",
        stmt::seq([
            stmt::compute(20),
            stmt::loop_(
                700,
                stmt::seq([
                    stmt::compute(12),
                    stmt::loop_(35, stmt::compute(16)),
                    stmt::compute(10), // store output sample
                ]),
            ),
        ]),
    );
    Benchmark {
        name: "fir",
        description: "FIR filter: 700-sample outer loop, 35-tap inner accumulation",
        program,
    }
}

/// `jfdctint` — JPEG integer forward DCT.
///
/// Original: like `fdct` but with wider integer arithmetic: two
/// 8-iteration passes with even longer straight-line bodies, exceeding
/// the 1 KB cache when combined.
pub fn jfdctint() -> Benchmark {
    let program = Program::new("jfdctint").with_function(
        "main",
        stmt::seq([
            stmt::compute(10),
            stmt::loop_(8, stmt::compute(130)), // row pass
            stmt::loop_(8, stmt::compute(138)), // column pass with descaling
            stmt::compute(8),
        ]),
    );
    Benchmark {
        name: "jfdctint",
        description: "JPEG integer 8x8 DCT: two long-bodied 8-iteration loops",
        program,
    }
}
