//! Deterministic fork–join parallelism for the analysis pipeline.
//!
//! The build image cannot fetch rayon, so this crate provides the small
//! fork–join slice the pipeline needs on plain `std::thread::scope`: a
//! work-stealing-free shared-counter [`par_map`] whose output is
//! **bit-identical** to the sequential map (results land in input order,
//! and the mapped function runs exactly once per item).
//!
//! [`Parallelism`] is the user-facing knob carried in the analysis
//! configuration: `Sequential` (the reference mode), `Auto` (one worker
//! per available core, overridable with the `PWCET_THREADS` environment
//! variable), or an explicit thread count.
//!
//! # Example
//!
//! ```
//! use pwcet_par::{par_map, Parallelism};
//!
//! let squares = par_map(Parallelism::threads(4), &[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! let same = par_map(Parallelism::Sequential, &[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, same);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// How a fan-out stage schedules its work items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Run items in order on the calling thread (the reference mode the
    /// property tests compare against).
    Sequential,
    /// One worker per available core; the `PWCET_THREADS` environment
    /// variable overrides the count when set to a positive integer.
    Auto,
    /// Exactly this many workers.
    Threads(NonZeroUsize),
}

impl Parallelism {
    /// An explicit thread count (`Sequential` when `threads` is 0 or 1).
    pub fn threads(threads: usize) -> Self {
        match NonZeroUsize::new(threads) {
            Some(n) if n.get() > 1 => Self::Threads(n),
            _ => Self::Sequential,
        }
    }

    /// The number of workers a stage with `items` work items will use.
    pub fn worker_count(self, items: usize) -> usize {
        let configured = match self {
            Self::Sequential => 1,
            Self::Auto => std::env::var("PWCET_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
                }),
            Self::Threads(n) => n.get(),
        };
        configured.min(items).max(1)
    }
}

impl Default for Parallelism {
    /// [`Parallelism::Auto`].
    fn default() -> Self {
        Self::Auto
    }
}

/// Maps `f` over `items`, fanning out across worker threads.
///
/// The result vector is in input order and bit-identical to
/// `items.iter().map(f).collect()` whenever `f` is deterministic: every
/// item is processed exactly once and its output is stored at the item's
/// index. A panic in `f` propagates to the caller.
pub fn par_map<T, U, F>(parallelism: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = parallelism.worker_count(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else {
                    break;
                };
                let output = f(item);
                *slots[index].lock().expect("no poisoned slot") = Some(output);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned slot")
                .expect("every index was claimed exactly once")
        })
        .collect()
}

/// Runs two heterogeneous jobs, concurrently when `parallelism` allows.
///
/// The building block for pipeline stages with exactly two independent
/// tasks of different shapes — e.g. the incremental classification chain
/// and the SRB fixpoint of `AnalysisContext::prewarm`, where the chain is
/// inherently sequential (each level seeds the next) but independent of
/// the SRB analysis. Results are returned in argument order, so the
/// output is identical in every mode.
pub fn par_join<A, B, FA, FB>(parallelism: Parallelism, fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if parallelism.worker_count(2) <= 1 {
        return (fa(), fb());
    }
    std::thread::scope(|scope| {
        let b = scope.spawn(fb);
        let a = fa();
        let b = b
            .join()
            .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        (a, b)
    })
}

/// Runs `f` for every index in `0..count` in parallel, discarding outputs.
pub fn par_for_each_index<F>(parallelism: Parallelism, count: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let indices: Vec<usize> = (0..count).collect();
    par_map(parallelism, &indices, |&i| f(i));
}

/// Drains a dynamically growing work pool across worker threads.
///
/// Unlike [`par_map`], the work list is not fixed up front: handling one
/// item may produce follow-up items (`f` pushes them into its out
/// parameter), which land back in the shared pool — the shape of
/// branch-and-bound subtree exploration, where every node may spawn two
/// children. Each worker owns a mutable state built once by `init`
/// (e.g. a cloned solver basis), so items never contend on shared
/// scratch.
///
/// The pool is drained LIFO; with one worker the traversal is exactly
/// the depth-first order of a sequential loop. The first `Err` returned
/// by `f` stops the drain: queued items are discarded, in-flight items
/// finish, and that error is returned.
pub fn par_drain<S, T, E, FI, F>(
    parallelism: Parallelism,
    seed: Vec<T>,
    init: FI,
    f: F,
) -> Result<(), E>
where
    T: Send,
    E: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, T, &mut Vec<T>) -> Result<(), E> + Sync,
{
    // The pool grows dynamically, so size the crew by the configured
    // parallelism rather than the seed length; idle workers park on the
    // condvar until items (or the end) arrive.
    let workers = parallelism.worker_count(usize::MAX);
    if workers <= 1 {
        let mut state = init();
        let mut stack = seed;
        let mut out = Vec::new();
        while let Some(item) = stack.pop() {
            f(&mut state, item, &mut out)?;
            stack.append(&mut out);
        }
        return Ok(());
    }

    struct Pool<T, E> {
        queue: Vec<T>,
        active: usize,
        stopped: bool,
        error: Option<E>,
    }
    let pool = Mutex::new(Pool {
        queue: seed,
        active: 0,
        stopped: false,
        error: None,
    });
    let idle = Condvar::new();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Lazy: a worker that never dequeues (small trees, many
                // cores) never pays for `init` — in the branch-and-bound
                // case that is a clone of a dense basis inverse.
                let mut state: Option<S> = None;
                let mut out = Vec::new();
                loop {
                    let item = {
                        let mut guard = pool.lock().expect("pool lock");
                        loop {
                            if guard.stopped || (guard.queue.is_empty() && guard.active == 0) {
                                return;
                            }
                            if let Some(item) = guard.queue.pop() {
                                guard.active += 1;
                                break item;
                            }
                            guard = idle.wait(guard).expect("pool lock");
                        }
                    };
                    // A panic in `f` must not strand peers parked on the
                    // condvar behind a stale `active` count: catch it,
                    // mark the pool stopped, wake everyone, and resume
                    // unwinding so the scope propagates the panic.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        f(state.get_or_insert_with(&init), item, &mut out)
                    }));
                    let mut guard = pool.lock().expect("pool lock");
                    guard.active -= 1;
                    match result {
                        Ok(Ok(())) => guard.queue.append(&mut out),
                        Ok(Err(e)) => {
                            if guard.error.is_none() {
                                guard.error = Some(e);
                            }
                            guard.stopped = true;
                        }
                        Err(payload) => {
                            guard.stopped = true;
                            drop(guard);
                            idle.notify_all();
                            std::panic::resume_unwind(payload);
                        }
                    }
                    drop(guard);
                    idle.notify_all();
                }
            });
        }
    });
    let pool = pool.into_inner().expect("pool lock");
    pool.error.map_or(Ok(()), Err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..257).collect();
        let sequential: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for parallelism in [
            Parallelism::Sequential,
            Parallelism::Auto,
            Parallelism::threads(2),
            Parallelism::threads(7),
        ] {
            assert_eq!(par_map(parallelism, &items, |&x| x * x + 1), sequential);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(Parallelism::threads(4), &[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_is_clamped_to_items() {
        assert_eq!(Parallelism::threads(8).worker_count(3), 3);
        assert_eq!(Parallelism::threads(8).worker_count(0), 1);
        assert_eq!(Parallelism::Sequential.worker_count(100), 1);
        assert!(Parallelism::Auto.worker_count(100) >= 1);
    }

    #[test]
    fn threads_normalizes_degenerate_counts() {
        assert_eq!(Parallelism::threads(0), Parallelism::Sequential);
        assert_eq!(Parallelism::threads(1), Parallelism::Sequential);
        assert_ne!(Parallelism::threads(2), Parallelism::Sequential);
    }

    #[test]
    fn for_each_index_visits_all() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        par_for_each_index(Parallelism::threads(4), hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn join_runs_both_jobs_in_every_mode() {
        for parallelism in [
            Parallelism::Sequential,
            Parallelism::Auto,
            Parallelism::threads(2),
        ] {
            let (a, b) = par_join(parallelism, || 6 * 7, || "done".to_string());
            assert_eq!(a, 42);
            assert_eq!(b, "done");
        }
    }

    #[test]
    fn join_propagates_panics_from_either_side() {
        let left =
            std::panic::catch_unwind(|| par_join(Parallelism::threads(2), || panic!("left"), || 1));
        assert!(left.is_err());
        let right = std::panic::catch_unwind(|| {
            par_join(Parallelism::threads(2), || 1, || panic!("right"))
        });
        assert!(right.is_err());
    }

    #[test]
    fn drain_visits_generated_work_in_every_mode() {
        // Each item n < 16 spawns 2n+1 and 2n+2: a complete binary tree
        // of 31 nodes whatever the schedule.
        for parallelism in [
            Parallelism::Sequential,
            Parallelism::threads(3),
            Parallelism::threads(8),
        ] {
            let visited: Vec<AtomicUsize> = (0..31).map(|_| AtomicUsize::new(0)).collect();
            let result: Result<(), ()> = par_drain(
                parallelism,
                vec![0usize],
                || (),
                |(), n, out| {
                    visited[n].fetch_add(1, Ordering::Relaxed);
                    if 2 * n + 2 < 31 {
                        out.push(2 * n + 1);
                        out.push(2 * n + 2);
                    }
                    Ok(())
                },
            );
            assert!(result.is_ok());
            assert!(
                visited.iter().all(|v| v.load(Ordering::Relaxed) == 1),
                "{parallelism:?}: every generated item is processed exactly once"
            );
        }
    }

    #[test]
    fn drain_sequential_order_is_depth_first() {
        let order = Mutex::new(Vec::new());
        let result: Result<(), ()> = par_drain(
            Parallelism::Sequential,
            vec![0usize],
            || (),
            |(), n, out| {
                order.lock().unwrap().push(n);
                if n == 0 {
                    out.push(1); // pushed first, popped last
                    out.push(2); // popped first
                }
                if n == 2 {
                    out.push(3);
                }
                Ok(())
            },
        );
        assert!(result.is_ok());
        assert_eq!(*order.lock().unwrap(), vec![0, 2, 3, 1]);
    }

    #[test]
    fn drain_stops_on_error_and_returns_it() {
        for parallelism in [Parallelism::Sequential, Parallelism::threads(4)] {
            let result = par_drain(
                parallelism,
                vec![0u32],
                || (),
                |(), n, out| {
                    if n >= 5 {
                        return Err(format!("hit {n}"));
                    }
                    out.push(n + 1);
                    Ok(())
                },
            );
            assert_eq!(result, Err("hit 5".to_string()), "{parallelism:?}");
        }
    }

    #[test]
    fn drain_propagates_panics_without_hanging_peers() {
        // A panicking worker must wake parked peers and re-raise, not
        // leave them waiting on a stale active count forever.
        for parallelism in [Parallelism::Sequential, Parallelism::threads(4)] {
            let result = std::panic::catch_unwind(|| {
                let _: Result<(), ()> = par_drain(
                    parallelism,
                    vec![0u32],
                    || (),
                    |(), n, out| {
                        if n >= 3 {
                            panic!("boom at {n}");
                        }
                        out.push(n + 1);
                        Ok(())
                    },
                );
            });
            assert!(result.is_err(), "{parallelism:?}: panic must propagate");
        }
    }

    #[test]
    fn drain_with_empty_seed_returns_immediately() {
        let result: Result<(), ()> = par_drain(
            Parallelism::threads(4),
            Vec::<u8>::new(),
            || (),
            |_, _, _| Ok(()),
        );
        assert!(result.is_ok());
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            par_map(Parallelism::threads(2), &[1, 2, 3], |&x| {
                assert!(x < 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
