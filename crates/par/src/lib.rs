//! Deterministic fork–join parallelism for the analysis pipeline.
//!
//! The build image cannot fetch rayon, so this crate provides the small
//! fork–join slice the pipeline needs on plain `std::thread::scope`: a
//! work-stealing-free shared-counter [`par_map`] whose output is
//! **bit-identical** to the sequential map (results land in input order,
//! and the mapped function runs exactly once per item).
//!
//! [`Parallelism`] is the user-facing knob carried in the analysis
//! configuration: `Sequential` (the reference mode), `Auto` (one worker
//! per available core, overridable with the `PWCET_THREADS` environment
//! variable), or an explicit thread count.
//!
//! # Example
//!
//! ```
//! use pwcet_par::{par_map, Parallelism};
//!
//! let squares = par_map(Parallelism::threads(4), &[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! let same = par_map(Parallelism::Sequential, &[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, same);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a fan-out stage schedules its work items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Run items in order on the calling thread (the reference mode the
    /// property tests compare against).
    Sequential,
    /// One worker per available core; the `PWCET_THREADS` environment
    /// variable overrides the count when set to a positive integer.
    Auto,
    /// Exactly this many workers.
    Threads(NonZeroUsize),
}

impl Parallelism {
    /// An explicit thread count (`Sequential` when `threads` is 0 or 1).
    pub fn threads(threads: usize) -> Self {
        match NonZeroUsize::new(threads) {
            Some(n) if n.get() > 1 => Self::Threads(n),
            _ => Self::Sequential,
        }
    }

    /// The number of workers a stage with `items` work items will use.
    pub fn worker_count(self, items: usize) -> usize {
        let configured = match self {
            Self::Sequential => 1,
            Self::Auto => std::env::var("PWCET_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
                }),
            Self::Threads(n) => n.get(),
        };
        configured.min(items).max(1)
    }
}

impl Default for Parallelism {
    /// [`Parallelism::Auto`].
    fn default() -> Self {
        Self::Auto
    }
}

/// Maps `f` over `items`, fanning out across worker threads.
///
/// The result vector is in input order and bit-identical to
/// `items.iter().map(f).collect()` whenever `f` is deterministic: every
/// item is processed exactly once and its output is stored at the item's
/// index. A panic in `f` propagates to the caller.
pub fn par_map<T, U, F>(parallelism: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = parallelism.worker_count(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else {
                    break;
                };
                let output = f(item);
                *slots[index].lock().expect("no poisoned slot") = Some(output);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned slot")
                .expect("every index was claimed exactly once")
        })
        .collect()
}

/// Runs two heterogeneous jobs, concurrently when `parallelism` allows.
///
/// The building block for pipeline stages with exactly two independent
/// tasks of different shapes — e.g. the incremental classification chain
/// and the SRB fixpoint of `AnalysisContext::prewarm`, where the chain is
/// inherently sequential (each level seeds the next) but independent of
/// the SRB analysis. Results are returned in argument order, so the
/// output is identical in every mode.
pub fn par_join<A, B, FA, FB>(parallelism: Parallelism, fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if parallelism.worker_count(2) <= 1 {
        return (fa(), fb());
    }
    std::thread::scope(|scope| {
        let b = scope.spawn(fb);
        let a = fa();
        let b = b
            .join()
            .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        (a, b)
    })
}

/// Runs `f` for every index in `0..count` in parallel, discarding outputs.
pub fn par_for_each_index<F>(parallelism: Parallelism, count: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let indices: Vec<usize> = (0..count).collect();
    par_map(parallelism, &indices, |&i| f(i));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..257).collect();
        let sequential: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for parallelism in [
            Parallelism::Sequential,
            Parallelism::Auto,
            Parallelism::threads(2),
            Parallelism::threads(7),
        ] {
            assert_eq!(par_map(parallelism, &items, |&x| x * x + 1), sequential);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(Parallelism::threads(4), &[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_is_clamped_to_items() {
        assert_eq!(Parallelism::threads(8).worker_count(3), 3);
        assert_eq!(Parallelism::threads(8).worker_count(0), 1);
        assert_eq!(Parallelism::Sequential.worker_count(100), 1);
        assert!(Parallelism::Auto.worker_count(100) >= 1);
    }

    #[test]
    fn threads_normalizes_degenerate_counts() {
        assert_eq!(Parallelism::threads(0), Parallelism::Sequential);
        assert_eq!(Parallelism::threads(1), Parallelism::Sequential);
        assert_ne!(Parallelism::threads(2), Parallelism::Sequential);
    }

    #[test]
    fn for_each_index_visits_all() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        par_for_each_index(Parallelism::threads(4), hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn join_runs_both_jobs_in_every_mode() {
        for parallelism in [
            Parallelism::Sequential,
            Parallelism::Auto,
            Parallelism::threads(2),
        ] {
            let (a, b) = par_join(parallelism, || 6 * 7, || "done".to_string());
            assert_eq!(a, 42);
            assert_eq!(b, "done");
        }
    }

    #[test]
    fn join_propagates_panics_from_either_side() {
        let left =
            std::panic::catch_unwind(|| par_join(Parallelism::threads(2), || panic!("left"), || 1));
        assert!(left.is_err());
        let right = std::panic::catch_unwind(|| {
            par_join(Parallelism::threads(2), || 1, || panic!("right"))
        });
        assert!(right.is_err());
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            par_map(Parallelism::threads(2), &[1, 2, 3], |&x| {
                assert!(x < 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
