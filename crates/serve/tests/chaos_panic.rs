//! Regression: an injected panic inside a shard job is contained — the
//! client gets an error *response* (not a dropped connection), the
//! panic is counted, and the very same shard serves the next request.
//!
//! Separate test binary from the chaos suite because a fault plan is
//! process-global and install-once; this one fires only the
//! `shard_panic` point.

#![cfg(feature = "chaos")]

use std::sync::Arc;

use pwcet_chaos::{FaultPlan, FaultPoint};
use pwcet_progen::{stmt, Program};
use pwcet_serve::{Client, ErrorCode, Response, Server, ServerConfig};

/// Panic on the first shard job, then stay quiet for a comfortable run
/// of follow-ups. The firing stream is deterministic in (seed, call
/// index), so the seed is *searched* rather than hoped for — any rate
/// would do, the pattern is what's pinned.
const PANIC_RATE: u32 = 2_500;
const QUIET_CALLS: u64 = 8;

fn probe(seed: u64) -> bool {
    let plan = FaultPlan::new(seed).with_rate(FaultPoint::ShardPanic, PANIC_RATE);
    if plan.roll(FaultPoint::ShardPanic).is_none() {
        return false; // call 0 must fire
    }
    (1..=QUIET_CALLS).all(|_| plan.roll(FaultPoint::ShardPanic).is_none())
}

#[test]
fn injected_shard_panic_answers_an_error_and_the_shard_survives() {
    let seed = (0..20_000u64)
        .find(|&s| probe(s))
        .expect("a fire-then-quiet seed exists well inside 20k candidates");
    let plan = Arc::new(FaultPlan::new(seed).with_rate(FaultPoint::ShardPanic, PANIC_RATE));
    assert!(
        pwcet_chaos::install(Arc::clone(&plan)),
        "this binary must own the process-global plan"
    );

    // One shard: whatever panics and whatever comes next share a worker.
    let config = ServerConfig {
        shards: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let program = Program::new("panic-probe").with_function(
        "main",
        stmt::seq(vec![
            stmt::loop_(24, stmt::compute(10)),
            stmt::if_else(stmt::compute(6), stmt::loop_(8, stmt::compute(4))),
        ]),
    );

    // First job: the worker panics mid-analysis. The contract is a
    // clean error response on the same connection — the panic never
    // escapes the shard, never kills the worker thread pool, never
    // tears the socket.
    let first = client
        .analyze(program.clone(), 1e-4, 1e-15)
        .expect("transport survives the panic");
    match first {
        Response::Error { code, message, .. } => {
            assert_eq!(code, ErrorCode::Analysis, "panic surfaces as {message:?}");
            assert!(
                message.contains("panic"),
                "the refusal should say what happened: {message:?}"
            );
        }
        other => panic!("expected an error response, got {other:?}"),
    }
    assert_eq!(plan.fired(FaultPoint::ShardPanic), 1, "exactly one fire");

    // Same connection, same shard, quiet seed window: the next requests
    // all succeed, and repeats agree bit-for-bit (the panicked job left
    // no partial state behind).
    let mut rows = Vec::new();
    for _ in 0..3 {
        match client
            .analyze(program.clone(), 1e-4, 1e-15)
            .expect("transport ok")
        {
            Response::Analysis { row, .. } => rows.push(row),
            other => panic!("expected analysis after the panic, got {other:?}"),
        }
    }
    assert!(
        rows.windows(2).all(|w| {
            let normalized = pwcet_serve::AnalysisRow {
                served_from: w[0].served_from,
                ..w[1].clone()
            };
            w[0] == normalized
        }),
        "post-panic repeats must agree: {rows:?}"
    );

    // The panic is a first-class counter, visible over the wire.
    let metrics = client.metrics().expect("metrics");
    let worker_panics = metrics
        .iter()
        .find(|(name, _)| name == "worker_panics")
        .map(|(_, value)| *value)
        .expect("worker_panics row");
    assert_eq!(worker_panics, 1);

    let stats = server.shutdown();
    assert_eq!(stats.queued, 0, "clean drain");
    assert!(stats.served >= 3, "the shard kept serving after the panic");
}
