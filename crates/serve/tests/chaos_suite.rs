//! The chaos suite: a two-node fleet under a seeded fault storm.
//!
//! The contract under test is *never a wrong answer*: with every fault
//! point firing — torn reads, delayed writes and mid-frame disconnects
//! on the wire, bit flips, short writes and write errors on the disk
//! store, timeouts, corrupt entries, dropped offers and refused dials in
//! the fleet, and injected panics inside shard jobs — every response
//! that completes is bit-identical to a fault-free oracle run, the storm
//! finishes in bounded wall-clock time, every node drains cleanly, and
//! the per-point fired counters reconcile against the degradation
//! counters the faults are supposed to land in.
//!
//! Three phases after the oracle run:
//!
//! 1. **Storm** — client threads hammer a two-node fleet through the
//!    failover client; wire, shard, offer and write-path faults fire.
//! 2. **Peer replay** — a fresh node ringed to the warm node re-analyzes
//!    everything, so its fetches return real entries and the
//!    `peer_corrupt_entry` point gets bytes to mangle.
//! 3. **Disk replay** — a fresh node reopens the warm node's store
//!    directory, so every analysis starts with a disk read and the
//!    `disk_bit_flip` point gets entries to corrupt.
//!
//! The storm is reproducible: one u64 seed drives every fault decision.
//! `CHAOS_SEED` (decimal or `0x…` hex) overrides the pinned seed, and
//! the seed is printed up front so any failure names the storm to
//! replay.
//!
//! Run with `cargo test -p pwcet-serve --features chaos --test
//! chaos_suite`; the file compiles to nothing without the feature.

#![cfg(feature = "chaos")]

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pwcet_chaos::{FaultPlan, FaultPoint};
use pwcet_obs::TraceId;
use pwcet_progen::{stmt, Program};
use pwcet_serve::{
    AnalysisRow, Client, ClientConfig, ErrorCode, FleetClient, FleetConfig, Response, RetryPolicy,
    Server, ServerConfig,
};

/// The CI-pinned storm seed; any u64 must pass, this one provably does.
const PINNED_SEED: u64 = 0xC0FF_EE20_26A5_EED5;

/// Per-point firing rates for the storm, in events per 10 000 calls.
/// High enough that the traffic below exercises every layer, low enough
/// that most requests still complete end to end.
const STORM_RATES: &[(FaultPoint, u32)] = &[
    (FaultPoint::WireTornRead, 300),
    (FaultPoint::WireDelayedWrite, 800),
    (FaultPoint::WireDisconnect, 300),
    (FaultPoint::DiskShortWrite, 500),
    (FaultPoint::DiskBitFlip, 4000),
    (FaultPoint::DiskWriteError, 500),
    (FaultPoint::PeerTimeout, 600),
    (FaultPoint::PeerCorruptEntry, 8000),
    (FaultPoint::PeerOfferDrop, 1500),
    (FaultPoint::PeerDialRefusal, 600),
    (FaultPoint::ShardPanic, 250),
];

/// Client threads × requests per thread for the storm phase.
const STORM_THREADS: usize = 3;
const REQUESTS_PER_THREAD: usize = 20;
const DISTINCT_PROGRAMS: usize = 10;

/// Hard ceiling on the faulted phases (steady-state they run in well
/// under a second; the bound is the "no fault may hang the service"
/// assertion).
const WALL_CLOCK: Duration = Duration::from_secs(120);

fn storm_seed() -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(raw) => {
            let raw = raw.trim();
            let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => raw.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("CHAOS_SEED {raw:?} is not a u64"))
        }
        Err(_) => PINNED_SEED,
    }
}

/// The storm's program population. Distinct shapes so requests spread
/// over shards and reuse-plane keys; each is cheap to analyze.
fn program(index: usize) -> Program {
    let i = index % DISTINCT_PROGRAMS;
    Program::new(format!("chaos-{i}")).with_function(
        "main",
        stmt::seq(vec![
            stmt::loop_(16 + (i as u32) * 7, stmt::compute(8 + i as u32)),
            stmt::if_else(
                stmt::compute(5 + i as u32),
                stmt::loop_(6 + (i as u32) * 2, stmt::compute(4)),
            ),
        ]),
    )
}

fn temp_dir(tag: &str, seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pwcet-chaos-{tag}-{}-{seed:016x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Fault-free reference rows, computed before the plan is installed so
/// no injection can touch them.
fn oracle_rows() -> Vec<AnalysisRow> {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind oracle");
    let mut client = Client::connect(server.local_addr()).expect("connect oracle");
    let rows: Vec<AnalysisRow> = (0..DISTINCT_PROGRAMS)
        .map(|i| {
            match client
                .analyze(program(i), 1e-4, 1e-15)
                .expect("oracle analyze")
            {
                Response::Analysis { row, .. } => row,
                other => panic!("oracle: expected analysis, got {other:?}"),
            }
        })
        .collect();
    server.shutdown();
    rows
}

/// One storm request: a completed analysis must be bit-identical to the
/// oracle (`served_from` aside — provenance legitimately varies under
/// faults); a refusal or exhausted transport is counted degradation.
/// Returns whether the request completed.
fn assert_never_wrong(
    client: &mut FleetClient,
    index: usize,
    oracle: &[AnalysisRow],
    seed: u64,
    context: &str,
) -> bool {
    match client.analyze_traced(program(index), 1e-4, 1e-15, TraceId::mint().0) {
        Ok(Response::Analysis { row, .. }) => {
            let reference = AnalysisRow {
                served_from: row.served_from,
                ..oracle[index % DISTINCT_PROGRAMS].clone()
            };
            assert_eq!(
                row, reference,
                "completed response differs from the fault-free oracle \
                 (seed {seed:#018x}, {context})"
            );
            true
        }
        Ok(Response::Error { code, message, .. }) => {
            // A refusal is honest degradation — but only the codes
            // faults can cause; the requests themselves are always
            // valid.
            assert!(
                matches!(
                    code,
                    ErrorCode::Overloaded
                        | ErrorCode::Analysis
                        | ErrorCode::Malformed
                        | ErrorCode::ShuttingDown
                ),
                "unexpected refusal {code:?}: {message} (seed {seed:#018x}, {context})"
            );
            false
        }
        Ok(other) => panic!("unexpected response {other:?} (seed {seed:#018x}, {context})"),
        Err(_) => false, // transport lost even after retries
    }
}

/// Scrapes one node's metrics table over the (still chaotic) wire, with
/// enough attempts that the scrape itself rides out the fault rates.
fn scrape(addr: &str, seed: u64) -> BTreeMap<String, u64> {
    let policy = RetryPolicy {
        max_attempts: 12,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(100),
        seed,
    };
    let mut client = FleetClient::with([addr], ClientConfig::default(), policy);
    client
        .metrics()
        .unwrap_or_else(|e| panic!("metrics scrape of {addr} failed: {e} (seed {seed:#018x})"))
        .into_iter()
        .collect()
}

/// Sums the named row over every table (0 when a node does not expose
/// it — e.g. `fleet_*` rows on a fleetless node).
fn summed(tables: &[&BTreeMap<String, u64>], name: &str) -> u64 {
    tables
        .iter()
        .map(|t| t.get(name).copied().unwrap_or(0))
        .sum()
}

#[test]
fn storm_never_produces_a_wrong_answer() {
    let seed = storm_seed();
    // Printed up front: a failing run names the storm to replay
    // (`CHAOS_SEED=0x… cargo test --features chaos --test chaos_suite`).
    println!("chaos storm seed: {seed:#018x}");

    let oracle = oracle_rows();

    // Install the global plan. From here on every fault point in the
    // process is live; the oracle above is already computed.
    let mut plan = FaultPlan::new(seed);
    for &(point, rate) in STORM_RATES {
        plan = plan.with_rate(point, rate);
    }
    let plan = Arc::new(plan);
    assert!(
        pwcet_chaos::install(Arc::clone(&plan)),
        "the suite must be the first to install a plan (seed {seed:#018x})"
    );
    let started = Instant::now();

    // Two nodes, both disk-backed so the write-path disk points fire;
    // B's ring names A, so B's local misses fetch from A and B's cold
    // builds offer back to A.
    let dir_a = temp_dir("a", seed);
    let dir_b = temp_dir("b", seed);
    let node_a =
        Server::bind("127.0.0.1:0", ServerConfig::default().with_disk_dir(&dir_a)).expect("bind A");
    // Millisecond-scale peer backoff: at the test's timescale the
    // default 250ms floor would blank out every fetch after the first
    // injected timeout, leaving the corrupt-entry point nothing to do.
    let ringed_to_a = |addrs: [String; 1]| {
        let mut fleet = FleetConfig::new(
            "127.0.0.1:1", // placeholder self entry, never dialed
            addrs,
        );
        fleet.backoff_base = Duration::from_millis(1);
        fleet.backoff_max = Duration::from_millis(10);
        fleet
    };
    let config_b = ServerConfig {
        fleet: Some(ringed_to_a([node_a.local_addr().to_string()])),
        ..ServerConfig::default().with_disk_dir(&dir_b)
    };
    let node_b = Server::bind("127.0.0.1:0", config_b).expect("bind B");
    let addr_a = node_a.local_addr().to_string();
    let addr_b = node_b.local_addr().to_string();

    // Phase 1, the storm: client threads hammer both nodes through the
    // failover client, so wire faults surface as retries/failovers, not
    // test errors. Completed rows are checked against the oracle.
    let outcomes: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..STORM_THREADS)
            .map(|thread| {
                let endpoints = [addr_b.clone(), addr_a.clone()];
                let oracle = &oracle;
                scope.spawn(move || {
                    let policy = RetryPolicy {
                        max_attempts: 4,
                        base_backoff: Duration::from_millis(10),
                        max_backoff: Duration::from_millis(250),
                        seed: seed ^ thread as u64,
                    };
                    let mut client = FleetClient::with(endpoints, ClientConfig::default(), policy);
                    let mut completed = 0usize;
                    for request in 0..REQUESTS_PER_THREAD {
                        let context = format!("storm thread {thread} request {request}");
                        let index = (thread + request) % DISTINCT_PROGRAMS;
                        if assert_never_wrong(&mut client, index, oracle, seed, &context) {
                            completed += 1;
                        }
                    }
                    (completed, REQUESTS_PER_THREAD - completed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let completed: usize = outcomes.iter().map(|(c, _)| c).sum();
    let degraded: usize = outcomes.iter().map(|(_, d)| d).sum();
    assert_eq!(
        completed + degraded,
        STORM_THREADS * REQUESTS_PER_THREAD,
        "every request must resolve (seed {seed:#018x})"
    );
    assert!(
        completed > 0,
        "the storm rates must leave most requests completing \
         ({completed} completed / {degraded} degraded, seed {seed:#018x})"
    );

    // Let B's async offer worker finish the storm's write-backs, then
    // snapshot the fired counters. The snapshot orders the inequality:
    // faults fired *before* it are visible in tables scraped *after*
    // it, and later fires only push the observed side higher.
    std::thread::sleep(Duration::from_millis(200));
    let storm_fired: Vec<u64> = FaultPoint::ALL
        .iter()
        .map(|&point| plan.fired(point))
        .collect();
    let fired = |point: FaultPoint| storm_fired[point.index()];

    let table_a = scrape(&addr_a, seed);
    let table_b = scrape(&addr_b, seed);
    let storm_tables = [&table_a, &table_b];

    // Reconciliation: every fired fault must show up in the degradation
    // counter it is designed to land in. All `>=` — the real world may
    // add failures of its own on top of the injected ones, never fewer.
    let reconcile: &[(&str, u64, u64)] = &[
        (
            "torn reads -> protocol_errors",
            summed(&storm_tables, "protocol_errors"),
            fired(FaultPoint::WireTornRead),
        ),
        (
            "disconnects -> response_write_failures",
            summed(&storm_tables, "response_write_failures"),
            fired(FaultPoint::WireDisconnect),
        ),
        (
            "shard panics -> worker_panics",
            summed(&storm_tables, "worker_panics"),
            fired(FaultPoint::ShardPanic),
        ),
        (
            "disk bit flips -> disk_corrupt",
            summed(&storm_tables, "disk_corrupt"),
            fired(FaultPoint::DiskBitFlip),
        ),
        (
            "corrupt peer entries -> network_corrupt",
            summed(&storm_tables, "network_corrupt"),
            fired(FaultPoint::PeerCorruptEntry),
        ),
        (
            "peer timeouts + refused dials -> fleet transport failures",
            summed(&storm_tables, "fleet_fetch_errors")
                + summed(&storm_tables, "fleet_offers_failed"),
            fired(FaultPoint::PeerTimeout) + fired(FaultPoint::PeerDialRefusal),
        ),
        (
            "dropped offers -> fleet_offers_dropped",
            summed(&storm_tables, "fleet_offers_dropped"),
            fired(FaultPoint::PeerOfferDrop),
        ),
    ];
    for &(what, observed, injected) in reconcile {
        assert!(
            observed >= injected,
            "{what}: observed {observed} < injected {injected} (seed {seed:#018x})"
        );
    }

    // The metrics verb itself must carry the per-point fired counters,
    // and the live plan can only be ahead of what a table recorded.
    for &point in FaultPoint::ALL.iter() {
        let row = format!("chaos_fired_{}", point.name());
        let scraped = storm_tables
            .iter()
            .filter_map(|t| t.get(&row).copied())
            .max()
            .unwrap_or_else(|| panic!("metrics table lacks {row} (seed {seed:#018x})"));
        assert!(
            plan.fired(point) >= scraped,
            "{row}: plan says {} but a table said {scraped} (seed {seed:#018x})",
            plan.fired(point)
        );
    }

    // B is done; drain it cleanly under the still-active plan.
    let stats_b = node_b.shutdown();
    assert_eq!(stats_b.queued, 0, "B drained dirty (seed {seed:#018x})");

    // Phase 2, peer replay: a fresh node ringed to A re-analyzes the
    // whole population. Its local misses fetch real entries from A's
    // warm tiers, so `peer_corrupt_entry` finally has bytes to mangle —
    // and every mangled fetch must degrade to a correct cold build.
    let corrupt_baseline = plan.fired(FaultPoint::PeerCorruptEntry);
    let dir_c = temp_dir("c", seed);
    let config_c = ServerConfig {
        fleet: Some(ringed_to_a([addr_a.clone()])),
        ..ServerConfig::default().with_disk_dir(&dir_c)
    };
    let node_c = Server::bind("127.0.0.1:0", config_c).expect("bind C");
    let addr_c = node_c.local_addr().to_string();
    let mut client_c = FleetClient::with(
        [addr_c.clone()],
        ClientConfig::default(),
        RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            seed: seed ^ 0xC,
        },
    );
    for index in 0..DISTINCT_PROGRAMS {
        let context = format!("peer replay program {index}");
        assert_never_wrong(&mut client_c, index, &oracle, seed, &context);
    }
    let corrupt_injected = plan.fired(FaultPoint::PeerCorruptEntry) - corrupt_baseline;
    let table_c = scrape(&addr_c, seed);
    assert!(
        summed(&[&table_c], "network_corrupt") >= corrupt_injected,
        "peer replay: {corrupt_injected} corrupt fetches injected but only {} counted \
         (seed {seed:#018x})",
        summed(&[&table_c], "network_corrupt")
    );
    let stats_c = node_c.shutdown();
    assert_eq!(stats_c.queued, 0, "C drained dirty (seed {seed:#018x})");
    let stats_a = node_a.shutdown();
    assert_eq!(stats_a.queued, 0, "A drained dirty (seed {seed:#018x})");

    // Phase 3, disk replay: reopen A's store. Every analysis now starts
    // with a disk read, so `disk_bit_flip` finally has entries to
    // corrupt — and every corrupted read must degrade to a correct
    // cold rebuild (the flipped entry is deleted, never trusted).
    let flip_baseline = plan.fired(FaultPoint::DiskBitFlip);
    let node_d =
        Server::bind("127.0.0.1:0", ServerConfig::default().with_disk_dir(&dir_a)).expect("bind D");
    let addr_d = node_d.local_addr().to_string();
    let mut client_d = FleetClient::with(
        [addr_d.clone()],
        ClientConfig::default(),
        RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            seed: seed ^ 0xD,
        },
    );
    for index in 0..DISTINCT_PROGRAMS {
        let context = format!("disk replay program {index}");
        assert_never_wrong(&mut client_d, index, &oracle, seed, &context);
    }
    let flips_injected = plan.fired(FaultPoint::DiskBitFlip) - flip_baseline;
    let table_d = scrape(&addr_d, seed);
    assert!(
        summed(&[&table_d], "disk_corrupt") >= flips_injected,
        "disk replay: {flips_injected} bit flips injected but only {} counted \
         (seed {seed:#018x})",
        summed(&[&table_d], "disk_corrupt")
    );
    let stats_d = node_d.shutdown();
    assert_eq!(stats_d.queued, 0, "D drained dirty (seed {seed:#018x})");

    // Bounded wall clock over every faulted phase, and an activity
    // floor: a storm that fires nothing is a broken storm.
    let elapsed = started.elapsed();
    assert!(
        elapsed < WALL_CLOCK,
        "faulted phases took {elapsed:?}, bound is {WALL_CLOCK:?} (seed {seed:#018x})"
    );
    assert!(
        stats_a.served + stats_b.served >= completed as u64,
        "served counters lost requests (seed {seed:#018x})"
    );
    assert!(
        plan.total_fired() > 0,
        "the storm fired nothing — rates or seed stream broken (seed {seed:#018x})"
    );
    println!(
        "storm summary: {completed} completed, {degraded} degraded, {} faults fired in {elapsed:?}",
        plan.total_fired()
    );
    for &point in FaultPoint::ALL.iter() {
        println!(
            "  {:<20} calls {:>5}  fired {:>4}",
            point.name(),
            plan.calls(point),
            plan.fired(point)
        );
    }

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    let _ = std::fs::remove_dir_all(&dir_c);
}
