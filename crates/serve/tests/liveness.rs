//! Liveness under misbehaving endpoints: a slow-loris client cannot pin
//! a connection thread past the frame deadline, and a client facing an
//! unresponsive server gets a timeout error instead of hanging.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use pwcet_serve::protocol::Request;
use pwcet_serve::{Client, ClientConfig, Server, ServerConfig, WireError};

/// A drip-feeding connection — one header byte per poll interval, so
/// every server-side `read` succeeds with `Ok(1)` — must still be cut
/// off close to the frame deadline. Before the fix the deadline was only
/// checked when a poll *timed out*, which a dripper never lets happen.
#[test]
fn drip_fed_half_frame_is_cut_off_near_the_deadline() {
    let deadline = Duration::from_millis(400);
    let config = ServerConfig {
        poll: Duration::from_millis(10),
        frame_deadline: deadline,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("ephemeral bind");

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .expect("read timeout");
    // Valid-looking frame start ("PWCQ"…), fed one byte at a time and
    // never completing the 24-byte header within the deadline.
    let header_start = *b"PWCQ";

    let started = Instant::now();
    let hard_stop = started + 10 * deadline;
    let mut dripped = 0usize;
    let cut_after = loop {
        assert!(
            Instant::now() < hard_stop,
            "server never cut the drip-fed connection (dripped {dripped} bytes)"
        );
        let byte = [header_start[dripped % header_start.len()]];
        if stream.write_all(&byte).is_err() {
            break started.elapsed();
        }
        dripped += 1;
        // Detect the server-side close promptly: a successful 0-byte
        // read is EOF; an error response frame also counts as the cut.
        let mut sink = [0u8; 256];
        match stream.read(&mut sink) {
            Ok(0) => break started.elapsed(),
            Ok(_) => break started.elapsed(),
            Err(_) => {} // poll timeout — keep dripping
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(
        cut_after <= 2 * deadline,
        "drip-fed connection survived {cut_after:?} (deadline {deadline:?})"
    );
    assert!(
        cut_after >= deadline / 2,
        "connection cut suspiciously early at {cut_after:?} (deadline {deadline:?})"
    );
    server.shutdown();
}

/// A server that accepts and then never answers must surface as
/// [`WireError::Timeout`] within the configured deadline, not hang the
/// client forever.
#[test]
fn client_request_against_a_silent_server_times_out() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().expect("local addr");
    let accept = std::thread::spawn(move || {
        // Hold the accepted connection open, read nothing, answer
        // nothing, until the client gives up and the socket drops.
        let (stream, _) = listener.accept().expect("accept");
        let mut stream = stream;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let mut sink = [0u8; 1024];
        while let Ok(n) = stream.read(&mut sink) {
            if n == 0 {
                break;
            }
        }
    });

    let deadline = Duration::from_millis(250);
    let mut client =
        Client::connect_with(addr, ClientConfig::with_deadline(deadline)).expect("connect");
    let started = Instant::now();
    let result = client.request(&Request::Stats);
    let elapsed = started.elapsed();
    assert!(
        matches!(result, Err(WireError::Timeout)),
        "expected a timeout error, got {result:?}"
    );
    assert!(
        elapsed < 10 * deadline,
        "timeout took {elapsed:?} with a {deadline:?} deadline"
    );
    drop(client);
    accept.join().expect("accept thread");
}

/// The timeout also applies to connecting: an address that does not
/// answer the handshake fails within the connect deadline. (An
/// unroutable TEST-NET address never SYN-ACKs; if some middlebox answers
/// it anyway the assertion still holds — any outcome within the bound
/// passes, a hang fails.)
#[test]
fn connect_respects_its_deadline() {
    let deadline = Duration::from_millis(300);
    let started = Instant::now();
    let result = Client::connect_with("192.0.2.1:7463", ClientConfig::with_deadline(deadline));
    let elapsed = started.elapsed();
    assert!(
        elapsed < 5 * deadline,
        "connect attempt took {elapsed:?} with a {deadline:?} deadline"
    );
    drop(result);
}
