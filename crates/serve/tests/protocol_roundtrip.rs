//! Property: `decode(encode(m)) == m` for every request and response
//! variant of the `PWCQ` protocol, over randomly generated programs,
//! sweeps, rows, and stats — the wire format loses nothing and invents
//! nothing.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::BoxedStrategy;

use pwcet_core::ReuseTier;
use pwcet_obs::Stage;
use pwcet_progen::{stmt, Program, Stmt};
use pwcet_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, AnalysisRow, GeometryRow,
    PfailRow, Request, Response, ServedFrom, ServiceStats, StageTiming,
};
use pwcet_serve::ErrorCode;

fn name_strategy() -> BoxedStrategy<String> {
    vec(0usize..26, 1..10)
        .prop_map(|letters| {
            letters
                .into_iter()
                .map(|l| (b'a' + l as u8) as char)
                .collect()
        })
        .boxed()
}

fn stmt_strategy(depth: u32) -> BoxedStrategy<Stmt> {
    if depth == 0 {
        prop_oneof![
            (1u32..200).prop_map(stmt::compute),
            name_strategy().prop_map(stmt::call),
        ]
        .boxed()
    } else {
        prop_oneof![
            (1u32..200).prop_map(stmt::compute),
            name_strategy().prop_map(stmt::call),
            (1u32..50, stmt_strategy(depth - 1)).prop_map(|(bound, body)| stmt::loop_(bound, body)),
            (stmt_strategy(depth - 1), stmt_strategy(depth - 1))
                .prop_map(|(a, b)| stmt::if_else(a, b)),
            vec(stmt_strategy(depth - 1), 0..4).prop_map(stmt::seq),
        ]
        .boxed()
    }
}

fn program_strategy() -> BoxedStrategy<Program> {
    (
        name_strategy(),
        vec((name_strategy(), stmt_strategy(3)), 1..4),
    )
        .prop_map(|(name, functions)| {
            let mut program = Program::new(name);
            for (fn_name, body) in functions {
                program = program.with_function(fn_name, body);
            }
            program
        })
        .boxed()
}

/// Finite, non-NaN probabilities (NaN breaks `==`, and the protocol
/// round-trips bit patterns, not semantics).
fn probability_strategy() -> BoxedStrategy<f64> {
    (1u64..=1_000_000)
        .prop_map(|n| n as f64 / 1_000_000.0)
        .boxed()
}

fn tier_strategy() -> BoxedStrategy<ServedFrom> {
    prop_oneof![
        Just(ReuseTier::Memory),
        Just(ReuseTier::Disk),
        Just(ReuseTier::Derived),
        Just(ReuseTier::Network),
        Just(ReuseTier::Cold),
    ]
    .boxed()
}

fn error_code_strategy() -> BoxedStrategy<ErrorCode> {
    prop_oneof![
        Just(ErrorCode::Malformed),
        Just(ErrorCode::InvalidRequest),
        Just(ErrorCode::Overloaded),
        Just(ErrorCode::Analysis),
        Just(ErrorCode::ShuttingDown),
    ]
    .boxed()
}

fn request_strategy() -> BoxedStrategy<Request> {
    prop_oneof![
        (
            program_strategy(),
            probability_strategy(),
            probability_strategy(),
            any::<u64>()
        )
            .prop_map(|(program, pfail, target_p, trace)| Request::Analyze {
                program,
                pfail,
                target_p,
                trace,
            }),
        (
            vec(program_strategy(), 0..4),
            probability_strategy(),
            probability_strategy(),
            any::<u64>()
        )
            .prop_map(|(programs, pfail, target_p, trace)| Request::Batch {
                programs,
                pfail,
                target_p,
                trace,
            }),
        (
            program_strategy(),
            vec(probability_strategy(), 0..6),
            probability_strategy(),
            any::<u64>()
        )
            .prop_map(|(program, pfails, target_p, trace)| Request::SweepPfail {
                program,
                pfails,
                target_p,
                trace,
            }),
        (
            program_strategy(),
            (0u32..12).prop_map(|s| 1 << s),
            (2u32..10).prop_map(|b| 1 << b),
            vec(1u32..64, 0..5),
            probability_strategy(),
            any::<u64>()
        )
            .prop_map(
                |(program, sets, block_bytes, way_counts, target_p, trace)| {
                    Request::SweepGeometry {
                        program,
                        sets,
                        block_bytes,
                        way_counts,
                        target_p,
                        trace,
                    }
                }
            ),
        (any::<u64>(), any::<u64>()).prop_map(|(key, trace)| Request::FetchEntry { key, trace }),
        (any::<u64>(), vec(any::<u8>(), 0..512))
            .prop_map(|(key, entry)| Request::OfferEntry { key, entry }),
        Just(Request::Stats),
        Just(Request::Shutdown),
        Just(Request::Metrics),
    ]
    .boxed()
}

fn stage_strategy() -> BoxedStrategy<Stage> {
    prop_oneof![
        Just(Stage::CfgExpand),
        Just(Stage::Classify),
        Just(Stage::IlpSolve),
        Just(Stage::Convolve),
        Just(Stage::CodecDecode),
        Just(Stage::PeerFetch),
        Just(Stage::QueueWait),
        Just(Stage::Service),
        Just(Stage::PeerServe),
    ]
    .boxed()
}

fn stages_strategy() -> BoxedStrategy<Vec<StageTiming>> {
    vec(
        (stage_strategy(), any::<u64>(), any::<u32>()).prop_map(|(stage, micros, count)| {
            StageTiming {
                stage,
                micros,
                count,
            }
        }),
        0..6,
    )
    .boxed()
}

fn analysis_row_strategy() -> BoxedStrategy<AnalysisRow> {
    (
        name_strategy(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        tier_strategy(),
    )
        .prop_map(
            |(name, fault_free_wcet, pwcet_none, pwcet_srb, pwcet_rw, served_from)| AnalysisRow {
                name,
                fault_free_wcet,
                pwcet_none,
                pwcet_srb,
                pwcet_rw,
                served_from,
            },
        )
        .boxed()
}

fn stats_strategy() -> BoxedStrategy<ServiceStats> {
    (
        (
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            (
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                any::<u32>(),
                any::<u32>(),
            ),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        ),
    )
        .prop_map(|(a, b, c, d, e, (f, g))| ServiceStats {
            shards: a.0,
            queue_capacity: a.1,
            queued: a.2,
            connections: a.3,
            served: a.4,
            overloads: a.5,
            protocol_errors: b.0,
            served_memory: b.1,
            served_disk: b.2,
            served_derived: b.3,
            served_network: b.4,
            served_cold: b.5,
            memory_hits: c.0,
            memory_misses: c.1,
            disk_hits: c.2,
            disk_writes: c.3,
            disk_corrupt: c.4,
            derived: c.5,
            cold_builds: d.0,
            network_hits: d.1,
            network_misses: d.2,
            network_corrupt: d.3,
            network_offers: d.4,
            ilp_pivots: d.5,
            ilp_dual_pivots: e.0,
            ilp_bb_nodes: e.1,
            ilp_warm_starts: e.2,
            ilp_trivial_prunes: e.3,
            classify_passes: e.4,
            classify_words_touched: e.5,
            classify_sets_skipped: f.0,
            store_bytes: f.1,
            peer_fetches_served: f.2,
            peer_offers_stored: f.3,
            peers: f.4,
            peers_unhealthy: f.5,
            template_hits: g.0,
            basis_restores: g.1,
            basis_rejects: g.2,
            ilp_cold_starts: g.3,
        })
        .boxed()
}

fn response_strategy() -> BoxedStrategy<Response> {
    prop_oneof![
        (
            analysis_row_strategy(),
            any::<u64>(),
            any::<u64>(),
            stages_strategy()
        )
            .prop_map(|(row, micros, trace, stages)| Response::Analysis {
                row,
                micros,
                trace,
                stages,
            }),
        (
            vec(analysis_row_strategy(), 0..5),
            any::<u64>(),
            any::<u64>(),
            stages_strategy()
        )
            .prop_map(|(rows, micros, trace, stages)| Response::Batch {
                rows,
                micros,
                trace,
                stages,
            }),
        (
            name_strategy(),
            tier_strategy(),
            vec(
                (
                    probability_strategy(),
                    any::<u64>(),
                    any::<u64>(),
                    any::<u64>()
                )
                    .prop_map(|(pfail, pwcet_none, pwcet_srb, pwcet_rw)| {
                        PfailRow {
                            pfail,
                            pwcet_none,
                            pwcet_srb,
                            pwcet_rw,
                        }
                    }),
                0..6
            ),
            any::<u64>(),
            any::<u64>(),
            stages_strategy()
        )
            .prop_map(|(name, served_from, rows, micros, trace, stages)| {
                Response::PfailSweep {
                    name,
                    served_from,
                    rows,
                    micros,
                    trace,
                    stages,
                }
            }),
        (
            name_strategy(),
            tier_strategy(),
            vec(
                (1u32..64, any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
                    |(ways, pwcet_none, pwcet_srb, pwcet_rw)| GeometryRow {
                        ways,
                        pwcet_none,
                        pwcet_srb,
                        pwcet_rw,
                    }
                ),
                0..6
            ),
            any::<u64>(),
            any::<u64>(),
            stages_strategy()
        )
            .prop_map(|(name, served_from, rows, micros, trace, stages)| {
                Response::GeometrySweep {
                    name,
                    served_from,
                    rows,
                    micros,
                    trace,
                    stages,
                }
            }),
        stats_strategy().prop_map(|s| Response::Stats(Box::new(s))),
        vec((name_strategy(), any::<u64>()), 0..12)
            .prop_map(|entries| Response::Metrics { entries }),
        (any::<u64>(), proptest::option::of(vec(any::<u8>(), 0..512)))
            .prop_map(|(key, entry)| Response::Entry { key, entry }),
        any::<bool>().prop_map(|stored| Response::OfferAck { stored }),
        (
            error_code_strategy(),
            name_strategy(),
            proptest::option::of(any::<u64>())
        )
            .prop_map(|(code, message, retry_after_ms)| Response::Error {
                code,
                message,
                retry_after_ms,
            }),
        Just(Response::ShutdownStarted),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn requests_round_trip(request in request_strategy()) {
        let bytes = encode_request(&request);
        prop_assert_eq!(decode_request(&bytes).unwrap(), request);
    }

    #[test]
    fn responses_round_trip(response in response_strategy()) {
        let bytes = encode_response(&response);
        prop_assert_eq!(decode_response(&bytes).unwrap(), response);
    }

    #[test]
    fn frames_declare_their_exact_length(request in request_strategy()) {
        let bytes = encode_request(&request);
        let declared = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        prop_assert_eq!(declared as usize, bytes.len() - pwcet_serve::protocol::HEADER_LEN);
    }
}
