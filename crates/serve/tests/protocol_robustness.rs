//! Protocol-robustness suite: every corruption class fired at a **live**
//! server must yield a clean error response or a connection close —
//! never a panic, a hang, or a poisoned server.
//!
//! Mirrors the corruption taxonomy of `crates/core/tests/reuse_plane.rs`
//! (the disk-tier version of the same codec conventions): truncation,
//! bad magic, version skew, checksum mismatch, oversized length prefix,
//! and mid-frame disconnect. After each abuse the server must still
//! answer a well-formed request on a fresh connection and shut down
//! gracefully at the end.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use pwcet_serve::protocol::{
    self, ErrorCode, Request, Response, HEADER_LEN, MAGIC, MAX_PAYLOAD_BYTES, VERSION,
};
use pwcet_serve::{Client, Server, ServerConfig};

/// Generous guard so a regression shows up as a test failure, not a CI
/// timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

fn test_server() -> Server {
    let config = ServerConfig {
        shards: 2,
        queue_capacity: 8,
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", config).expect("ephemeral bind")
}

fn raw_connection(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .expect("read timeout");
    stream
}

/// Reads one response frame, if the server sends one before closing.
fn read_response(stream: &mut TcpStream) -> Option<Response> {
    match protocol::read_frame(stream) {
        Ok(Some(payload)) => Some(protocol::decode_response_payload(&payload).expect("response")),
        _ => None,
    }
}

fn expect_malformed_error(stream: &mut TcpStream, what: &str) {
    match read_response(stream) {
        Some(Response::Error { code, message, .. }) => {
            assert_eq!(code, ErrorCode::Malformed, "{what}: {message}");
        }
        other => panic!("{what}: expected a malformed-error response, got {other:?}"),
    }
    // The server closes after a protocol error: the next read is EOF.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0, "{what}");
}

/// A valid header with attacker-chosen fields.
fn header(magic: [u8; 4], version: u32, len: u64, checksum: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// The server answers a fresh well-formed request — the acid test that
/// earlier abuse poisoned nothing.
fn assert_still_serving(server: &Server) {
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let stats = client.stats().expect("stats after abuse");
    assert!(stats.shards > 0);
}

#[test]
fn corruption_classes_degrade_cleanly() {
    let server = test_server();

    // --- bad magic -------------------------------------------------------
    {
        let mut stream = raw_connection(&server);
        stream
            .write_all(&header(*b"NOPE", VERSION, 4, 0))
            .expect("write");
        stream.write_all(&[0u8; 4]).expect("write");
        expect_malformed_error(&mut stream, "bad magic");
    }
    assert_still_serving(&server);

    // --- wrong version ---------------------------------------------------
    {
        let mut stream = raw_connection(&server);
        stream
            .write_all(&header(MAGIC, VERSION + 7, 4, 0))
            .expect("write");
        stream.write_all(&[0u8; 4]).expect("write");
        expect_malformed_error(&mut stream, "wrong version");
    }
    assert_still_serving(&server);

    // --- oversized length prefix ----------------------------------------
    {
        let mut stream = raw_connection(&server);
        stream
            .write_all(&header(MAGIC, VERSION, MAX_PAYLOAD_BYTES + 1, 0))
            .expect("write");
        // No payload follows; the server must refuse from the header
        // alone instead of trying to allocate or read 16 MiB + 1.
        expect_malformed_error(&mut stream, "oversized length prefix");
    }
    assert_still_serving(&server);

    // --- checksum mismatch (payload bit flip) ----------------------------
    {
        let mut frame = protocol::encode_request(&Request::Stats);
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        let mut stream = raw_connection(&server);
        stream.write_all(&frame).expect("write");
        expect_malformed_error(&mut stream, "checksum mismatch");
    }
    assert_still_serving(&server);

    // --- garbage payload (valid frame, unknown request tag) --------------
    {
        let payload = [0xEEu8, 1, 2, 3];
        let sum = pwcet_core::fnv1a_checksum(&payload);
        let mut stream = raw_connection(&server);
        stream
            .write_all(&header(MAGIC, VERSION, payload.len() as u64, sum))
            .expect("write");
        stream.write_all(&payload).expect("write");
        expect_malformed_error(&mut stream, "unknown tag");
    }
    assert_still_serving(&server);

    // --- truncated frame: header promises more than ever arrives ---------
    {
        let mut stream = raw_connection(&server);
        stream
            .write_all(&header(MAGIC, VERSION, 100, 0))
            .expect("write");
        stream.write_all(&[1u8; 10]).expect("write");
        // Close while the server still expects 90 bytes.
        drop(stream);
    }
    assert_still_serving(&server);

    // --- mid-header disconnect -------------------------------------------
    {
        let mut stream = raw_connection(&server);
        stream.write_all(&MAGIC[..2]).expect("write");
        drop(stream);
    }
    assert_still_serving(&server);

    // --- mid-frame disconnect of a previously valid stream ---------------
    {
        let frame = protocol::encode_request(&Request::Stats);
        let mut stream = raw_connection(&server);
        // One complete request…
        stream.write_all(&frame).expect("write");
        assert!(matches!(
            read_response(&mut stream),
            Some(Response::Stats(_))
        ));
        // …then half a second one, then vanish.
        stream.write_all(&frame[..frame.len() / 2]).expect("write");
        drop(stream);
    }
    assert_still_serving(&server);

    // The abused server still drains and shuts down cleanly, counting
    // the protocol errors it answered.
    let stats = server.shutdown();
    assert!(
        stats.protocol_errors >= 5,
        "expected ≥ 5 counted protocol errors, got {}",
        stats.protocol_errors
    );
}

#[test]
fn half_frame_then_silence_does_not_pin_the_connection_forever() {
    // A client that starts a frame and stalls is cut off by the frame
    // deadline; shutdown is never blocked on it. We cannot wait out the
    // 30 s deadline in a unit test, but we can assert that shutdown with
    // a stalled half-frame connection completes promptly (the polled
    // reader aborts started frames once the server is draining).
    let server = test_server();
    let mut stream = raw_connection(&server);
    stream.write_all(&MAGIC).expect("write");
    stream.write_all(&VERSION.to_le_bytes()).expect("write");

    let started = std::time::Instant::now();
    let stats = server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "shutdown must not wait for the stalled frame"
    );
    assert_eq!(stats.queued, 0);
    drop(stream);
}
