//! End-to-end service tests: tier provenance across clients and
//! restarts, bit-identical warm answers, deterministic backpressure, and
//! draining shutdown.

use std::thread;

use pwcet_core::{AnalysisConfig, Protection, PwcetAnalyzer, ReuseTier};
use pwcet_progen::{stmt, Program};
use pwcet_serve::protocol::{ErrorCode, Request, Response};
use pwcet_serve::{AnalysisRow, Client, Server, ServerConfig};

fn bench(name: &str) -> Program {
    pwcet_benchsuite::by_name(name)
        .expect("benchmark exists")
        .program
}

fn server_with(shards: usize, queue: usize) -> Server {
    let config = ServerConfig {
        shards,
        queue_capacity: queue,
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", config).expect("ephemeral bind")
}

fn analyze(client: &mut Client, program: Program) -> (AnalysisRow, u64) {
    match client
        .analyze(program, 1e-4, 1e-15)
        .expect("request succeeds")
    {
        Response::Analysis { row, micros, .. } => (row, micros),
        other => panic!("expected an analysis response, got {other:?}"),
    }
}

#[test]
fn second_client_is_served_bit_identically_from_the_memory_tier() {
    let server = server_with(2, 16);

    let mut first = Client::connect(server.local_addr()).expect("connect");
    let (cold_row, _) = analyze(&mut first, bench("crc"));
    assert_eq!(cold_row.served_from, ReuseTier::Cold);

    // A *different* client connection requesting the same program must be
    // answered from the reuse plane's memory tier, bit-identically.
    let mut second = Client::connect(server.local_addr()).expect("connect");
    let (warm_row, _) = analyze(&mut second, bench("crc"));
    assert_eq!(warm_row.served_from, ReuseTier::Memory);
    assert_eq!(
        warm_row,
        AnalysisRow {
            served_from: ReuseTier::Memory,
            ..cold_row.clone()
        }
    );

    // And the rows match a direct in-process analysis exactly.
    let analysis = PwcetAnalyzer::new(AnalysisConfig::paper_default())
        .analyze(&bench("crc"))
        .expect("direct analysis");
    assert_eq!(warm_row.fault_free_wcet, analysis.fault_free_wcet());
    assert_eq!(
        warm_row.pwcet_none,
        analysis.estimate(Protection::None).pwcet_at(1e-15)
    );
    assert_eq!(
        warm_row.pwcet_rw,
        analysis.estimate(Protection::ReliableWay).pwcet_at(1e-15)
    );

    let stats = server.shutdown();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.served_cold, 1);
    assert_eq!(stats.served_memory, 1);
    // The cold analysis ran the ILP stage through the plane, so the
    // stats response reports solver behavior; the memory-tier duplicate
    // reused its memoized artifacts and added nothing.
    assert!(stats.ilp_bb_nodes > 0, "solver counters reach the service");
    assert!(
        stats.ilp_warm_starts > 0,
        "the per-(set, fault) fan-out reuses the factored template basis"
    );
    assert!(stats.ilp_pivots > 0);
}

#[test]
fn concurrent_duplicates_serialize_on_one_shard() {
    // Two clients race the same program: whatever the interleaving, the
    // shard serializes them — exactly one cold build, the other answered
    // from the memory tier, both bit-identical.
    let server = server_with(4, 16);
    let addr = server.local_addr();
    let rows: Vec<AnalysisRow> = thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    analyze(&mut client, bench("fir")).0
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let tiers: Vec<ReuseTier> = rows.iter().map(|r| r.served_from).collect();
    assert!(
        tiers.contains(&ReuseTier::Cold) && tiers.contains(&ReuseTier::Memory),
        "expected one cold and one memory-tier answer, got {tiers:?}"
    );
    assert_eq!(rows[0].pwcet_none, rows[1].pwcet_none);
    assert_eq!(rows[0].fault_free_wcet, rows[1].fault_free_wcet);
    server.shutdown();
}

#[test]
fn restarted_server_answers_from_the_disk_tier() {
    let dir = std::env::temp_dir().join(format!("pwcet-serve-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = ServerConfig {
        shards: 1,
        ..ServerConfig::default()
    }
    .with_disk_dir(&dir);
    let server = Server::bind("127.0.0.1:0", config.clone()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let (cold_row, _) = analyze(&mut client, bench("bs"));
    assert_eq!(cold_row.served_from, ReuseTier::Cold);
    drop(client);
    let stats = server.shutdown();
    assert!(
        stats.disk_writes > 0,
        "write-through must persist the context"
    );

    // A brand-new server over the same store answers without a cold
    // build — the disk tier survives the restart.
    let reborn = Server::bind("127.0.0.1:0", config).expect("rebind");
    let mut client = Client::connect(reborn.local_addr()).expect("connect");
    let (warm_row, _) = analyze(&mut client, bench("bs"));
    assert_eq!(warm_row.served_from, ReuseTier::Disk);
    assert_eq!(
        warm_row,
        AnalysisRow {
            served_from: ReuseTier::Disk,
            ..cold_row
        }
    );
    drop(client);
    reborn.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_and_sweeps_answer_with_provenance() {
    let server = server_with(2, 16);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let programs = vec![bench("bs"), bench("fibcall"), bench("bs")];
    let response = client
        .request(&Request::Batch {
            programs,
            pfail: 1e-4,
            target_p: 1e-15,
            trace: 0,
        })
        .expect("batch");
    let Response::Batch { rows, .. } = response else {
        panic!("expected a batch response, got {response:?}");
    };
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].name, "bs");
    assert_eq!(rows[1].name, "fibcall");
    // The duplicate inside the batch serializes behind the first copy on
    // its shard and is answered from the memory tier.
    assert_eq!(rows[2].served_from, ReuseTier::Memory);
    assert_eq!(rows[2].pwcet_none, rows[0].pwcet_none);

    // A pfail sweep over an already-analyzed program reuses its context.
    let response = client
        .request(&Request::SweepPfail {
            program: bench("bs"),
            pfails: vec![1e-5, 1e-4, 1e-3],
            target_p: 1e-15,
            trace: 0,
        })
        .expect("sweep");
    let Response::PfailSweep {
        served_from, rows, ..
    } = response
    else {
        panic!("expected a pfail sweep, got {response:?}");
    };
    assert_eq!(served_from, ReuseTier::Memory);
    assert_eq!(rows.len(), 3);
    assert!(
        rows[0].pwcet_none <= rows[2].pwcet_none,
        "pWCET grows with pfail"
    );

    // A geometry sweep derives narrower points from the widest.
    let response = client
        .request(&Request::SweepGeometry {
            program: bench("bs"),
            sets: 16,
            block_bytes: 16,
            way_counts: vec![4, 2, 1],
            target_p: 1e-15,
            trace: 0,
        })
        .expect("geometry sweep");
    let Response::GeometrySweep { rows, .. } = response else {
        panic!("expected a geometry sweep, got {response:?}");
    };
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].ways, 4, "widest first");
    assert!(
        rows[2].pwcet_none >= rows[0].pwcet_none,
        "fewer ways never shrink pWCET"
    );

    let plane_stats = server.reuse_plane().stats();
    assert!(
        plane_stats.derived >= 2,
        "narrow points are derived, not rebuilt"
    );
    server.shutdown();
}

#[test]
fn invalid_requests_are_refused_not_crashed() {
    let server = server_with(1, 4);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // A program with no main does not build.
    let bad = Program::new("nomain").with_function("helper", stmt::compute(4));
    let response = client.analyze(bad, 1e-4, 1e-15).expect("transport ok");
    let Response::Error { code, .. } = response else {
        panic!("expected a refusal, got {response:?}");
    };
    assert_eq!(code, ErrorCode::InvalidRequest);

    // Out-of-range probabilities.
    let response = client
        .analyze(bench("bs"), 2.0, 1e-15)
        .expect("transport ok");
    assert!(matches!(
        response,
        Response::Error {
            code: ErrorCode::InvalidRequest,
            ..
        }
    ));
    let response = client
        .analyze(bench("bs"), 1e-4, 0.0)
        .expect("transport ok");
    assert!(matches!(
        response,
        Response::Error {
            code: ErrorCode::InvalidRequest,
            ..
        }
    ));

    // An empty sweep and a non-power-of-two set count.
    let response = client
        .request(&Request::SweepPfail {
            program: bench("bs"),
            pfails: vec![],
            target_p: 1e-15,
            trace: 0,
        })
        .expect("transport ok");
    assert!(matches!(
        response,
        Response::Error {
            code: ErrorCode::InvalidRequest,
            ..
        }
    ));
    let response = client
        .request(&Request::SweepGeometry {
            program: bench("bs"),
            sets: 15,
            block_bytes: 16,
            way_counts: vec![4],
            target_p: 1e-15,
            trace: 0,
        })
        .expect("transport ok");
    assert!(matches!(
        response,
        Response::Error {
            code: ErrorCode::InvalidRequest,
            ..
        }
    ));

    // The connection survived every refusal; a valid request still works.
    let (row, _) = analyze(&mut client, bench("bs"));
    assert_eq!(row.served_from, ReuseTier::Cold);
    server.shutdown();
}

#[test]
fn full_shard_queue_answers_overloaded() {
    // One shard, queue capacity 1, and a burst of six concurrent heavy
    // requests: at most one runs and one queues, so at least one client
    // must be told to back off — and every client gets *some* answer.
    let server = server_with(1, 1);
    let addr = server.local_addr();
    let programs = ["adpcm", "compress", "edn", "ndes", "statemate", "ud"];
    let outcomes: Vec<Response> = thread::scope(|scope| {
        let handles: Vec<_> = programs
            .iter()
            .map(|name| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client
                        .analyze(bench(name), 1e-4, 1e-15)
                        .expect("transport ok")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let overloaded = outcomes
        .iter()
        .filter(|r| {
            matches!(
                r,
                Response::Error {
                    code: ErrorCode::Overloaded,
                    ..
                }
            )
        })
        .count();
    let answered = outcomes
        .iter()
        .filter(|r| matches!(r, Response::Analysis { .. }))
        .count();
    assert_eq!(overloaded + answered, programs.len(), "no request vanished");
    assert!(
        overloaded >= 1,
        "a 1-deep queue under a 6-burst must shed load"
    );
    assert!(answered >= 1, "the worker still made progress");

    let stats = server.shutdown();
    assert_eq!(stats.overloads as usize, overloaded);
}

#[test]
fn shutdown_drains_in_flight_work() {
    // Fire a heavy request, wait until the server has demonstrably
    // started on it (its context-cache miss is visible in the stats),
    // then ask for shutdown from another client: the in-flight request
    // must still get its real answer.
    let server = server_with(2, 16);
    let addr = server.local_addr();
    let worker = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .analyze(bench("nsichneu"), 1e-4, 1e-15)
            .expect("transport")
    });

    let mut controller = Client::connect(addr).expect("connect");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let stats = controller.stats().expect("stats");
        if stats.memory_misses > 0 || stats.queued > 0 || stats.served > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "request never started"
        );
        thread::sleep(std::time::Duration::from_millis(2));
    }
    controller.shutdown_server().expect("shutdown ack");

    match worker.join().expect("worker finished cleanly") {
        Response::Analysis { row, .. } => assert_eq!(row.name, "nsichneu"),
        other => panic!("in-flight request lost to shutdown: {other:?}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.queued, 0, "nothing left behind");
    assert!(stats.served >= 1);
}

#[test]
fn metrics_table_covers_legacy_stats_and_exact_quantiles() {
    let server = server_with(2, 8);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Two traced requests: one cold, one warm — both feed the latency
    // and queue/service histograms.
    let trace = pwcet_obs::TraceId::mint();
    let response = client
        .analyze_traced(bench("fibcall"), 1e-4, 1e-15, trace.0)
        .expect("traced analyze");
    let Response::Analysis {
        micros,
        trace: echoed,
        stages,
        ..
    } = response
    else {
        panic!("expected an analysis response");
    };
    assert_eq!(echoed, trace.0);
    analyze(&mut client, bench("fibcall"));

    // For a single Analyze, the leaf stages plus queue wait are
    // disjoint slices of the request, so their sum is bounded by the
    // wall-clock latency; `service` is their parent, not a sibling.
    assert!(!stages.is_empty(), "cold analyze must report stages");
    let leaf_sum: u64 = stages
        .iter()
        .filter(|t| t.stage != pwcet_obs::Stage::Service)
        .map(|t| t.micros)
        .sum();
    assert!(
        leaf_sum <= micros,
        "stage sum {leaf_sum}us exceeds latency {micros}us: {stages:?}"
    );
    // The shard layer splits waiting from working.
    assert!(stages
        .iter()
        .any(|t| t.stage == pwcet_obs::Stage::QueueWait));
    assert!(stages.iter().any(|t| t.stage == pwcet_obs::Stage::Service));

    let table = client.metrics().expect("metrics verb");
    let names: std::collections::BTreeMap<&str, u64> =
        table.iter().map(|(n, v)| (n.as_str(), *v)).collect();

    // Every legacy ServiceStats counter appears under its frozen name —
    // scrapers built against the struct keep working off the table.
    for (legacy, _) in pwcet_serve::ServiceStats::default().entries() {
        assert!(
            names.contains_key(legacy),
            "metrics table is missing legacy counter {legacy:?}"
        );
    }
    assert_eq!(names["served"], 2);

    // Histogram-backed instruments expose exact quantile rows, and two
    // requests really landed in them.
    for instrument in ["request_latency_us", "queue_wait_us", "service_us"] {
        for suffix in ["count", "sum", "mean", "p50", "p95", "p99", "max"] {
            assert!(
                names.contains_key(format!("{instrument}_{suffix}").as_str()),
                "missing histogram row {instrument}_{suffix}"
            );
        }
    }
    assert_eq!(names["request_latency_us_count"], 2);
    assert_eq!(names["queue_wait_us_count"], 2);
    assert_eq!(names["service_us_count"], 2);
    assert!(names["request_latency_us_p99"] >= names["request_latency_us_p50"]);
    assert!(names["request_latency_us_max"] >= names["request_latency_us_p99"]);

    server.shutdown();
}

#[test]
fn stats_expose_tier_hit_counts() {
    let server = server_with(2, 8);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let before = client.stats().expect("stats");
    assert_eq!(before.served, 0);
    analyze(&mut client, bench("fibcall"));
    analyze(&mut client, bench("fibcall"));
    let after = client.stats().expect("stats");
    assert_eq!(after.served, 2);
    assert_eq!(after.served_cold, 1);
    assert_eq!(after.served_memory, 1);
    assert!(after.memory_hits >= 1);
    assert_eq!(after.shards, 2);
    assert_eq!(after.queue_capacity, 8);
    assert!(after.connections >= 1);
    server.shutdown();
}
