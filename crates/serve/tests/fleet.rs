//! Two-node fleet tests: the network tier answers across nodes, offers
//! write back to the key's owner, and a poisoned peer entry degrades to
//! a counted cold rebuild — never a wrong answer.

use std::io::Write;
use std::net::TcpListener;
use std::time::{Duration, Instant};

use pwcet_core::ReuseTier;
use pwcet_obs::{Stage, TraceId};
use pwcet_progen::{stmt, Program};
use pwcet_serve::protocol::{self, Request, Response};
use pwcet_serve::{AnalysisRow, Client, FleetConfig, Server, ServerConfig};

fn program() -> Program {
    Program::new("fleet-demo").with_function(
        "main",
        stmt::seq(vec![
            stmt::loop_(40, stmt::compute(16)),
            stmt::if_else(stmt::compute(9), stmt::loop_(12, stmt::compute(5))),
        ]),
    )
}

fn analyze(client: &mut Client, program: Program) -> AnalysisRow {
    match client
        .analyze(program, 1e-4, 1e-15)
        .expect("request succeeds")
    {
        Response::Analysis { row, .. } => row,
        other => panic!("expected an analysis response, got {other:?}"),
    }
}

/// Node B, configured with node A as a peer, answers the duplicate of a
/// program A already analyzed from its *network* tier — same rows, no
/// cold build on B.
#[test]
fn peer_answers_the_duplicate_from_the_network_tier() {
    let node_a = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind A");
    let mut client_a = Client::connect(node_a.local_addr()).expect("connect A");
    let cold_row = analyze(&mut client_a, program());
    assert_eq!(cold_row.served_from, ReuseTier::Cold);

    // B's membership names only A, so A owns every key and every local
    // miss on B is a fetch from A.
    let config_b = ServerConfig {
        fleet: Some(FleetConfig::new(
            "127.0.0.1:1", // placeholder self entry, never dialed
            [node_a.local_addr().to_string()],
        )),
        ..ServerConfig::default()
    };
    let node_b = Server::bind("127.0.0.1:0", config_b).expect("bind B");
    let mut client_b = Client::connect(node_b.local_addr()).expect("connect B");
    let fetched_row = analyze(&mut client_b, program());
    assert_eq!(fetched_row.served_from, ReuseTier::Network);
    assert_eq!(
        fetched_row,
        AnalysisRow {
            served_from: ReuseTier::Network,
            ..cold_row
        }
    );

    let stats_b = node_b.shutdown();
    assert_eq!(stats_b.served_network, 1);
    assert_eq!(stats_b.network_hits, 1);
    assert_eq!(stats_b.cold_builds, 0, "B must not recompute");
    assert_eq!(stats_b.peers, 1);

    let stats_a = node_a.shutdown();
    assert_eq!(stats_a.peer_fetches_served, 1, "A served B's fetch");
}

/// One client-minted trace ID covers both sides of a peer-fetch hop:
/// the requesting node's ring holds the request's `peer_fetch` (and
/// pipeline) spans under the ID, and the *serving* node's ring holds a
/// `peer_serve` span under the very same ID — the wire carried it
/// across the fleet.
#[test]
fn one_trace_id_spans_both_nodes_of_a_peer_fetch() {
    let node_a = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind A");
    let mut client_a = Client::connect(node_a.local_addr()).expect("connect A");
    let cold_row = analyze(&mut client_a, program());
    assert_eq!(cold_row.served_from, ReuseTier::Cold);

    let config_b = ServerConfig {
        fleet: Some(FleetConfig::new(
            "127.0.0.1:1", // placeholder self entry, never dialed
            [node_a.local_addr().to_string()],
        )),
        ..ServerConfig::default()
    };
    let node_b = Server::bind("127.0.0.1:0", config_b).expect("bind B");
    let mut client_b = Client::connect(node_b.local_addr()).expect("connect B");

    let trace = TraceId::mint();
    let response = client_b
        .analyze_traced(program(), 1e-4, 1e-15, trace.0)
        .expect("traced analyze");
    let Response::Analysis {
        row,
        trace: echoed,
        stages,
        micros,
        ..
    } = response
    else {
        panic!("expected an analysis response");
    };
    assert_eq!(row.served_from, ReuseTier::Network);
    assert_eq!(echoed, trace.0, "the response echoes the minted trace");

    // The breakdown names the hop, and the leaf stages plus queue wait
    // are disjoint slices of the request, so their sum is bounded by
    // the wall-clock latency.
    assert!(
        stages.iter().any(|t| t.stage == Stage::PeerFetch),
        "breakdown must contain the peer fetch: {stages:?}"
    );
    let leaf_sum: u64 = stages
        .iter()
        .filter(|t| t.stage != Stage::Service)
        .map(|t| t.micros)
        .sum();
    assert!(
        leaf_sum <= micros,
        "disjoint stage sum {leaf_sum}us exceeds request latency {micros}us"
    );

    // Requesting side: pipeline spans under the minted trace.
    let ring_b = node_b.tracer().ring_snapshot();
    assert!(
        ring_b
            .iter()
            .any(|s| s.trace == trace && s.stage == Stage::PeerFetch),
        "B's ring must hold the peer_fetch span under the trace"
    );
    // Serving side: the same ID, carried in the FetchEntry frame.
    let ring_a = node_a.tracer().ring_snapshot();
    assert!(
        ring_a
            .iter()
            .any(|s| s.trace == trace && s.stage == Stage::PeerServe),
        "A's ring must hold a peer_serve span under the same trace"
    );

    node_b.shutdown();
    node_a.shutdown();
}

/// After a cold build, the owning peer receives the entry via the async
/// write-back offer and serves it from its own staged store.
#[test]
fn cold_build_offers_the_entry_back_to_the_owner() {
    // B is the owner (standalone); A runs the cold build and offers.
    let node_b = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind B");
    let config_a = ServerConfig {
        fleet: Some(FleetConfig::new(
            "127.0.0.1:1", // placeholder self entry, never dialed
            [node_b.local_addr().to_string()],
        )),
        ..ServerConfig::default()
    };
    let node_a = Server::bind("127.0.0.1:0", config_a).expect("bind A");

    let mut client_a = Client::connect(node_a.local_addr()).expect("connect A");
    let cold_row = analyze(&mut client_a, program());
    assert_eq!(cold_row.served_from, ReuseTier::Cold);

    // The offer travels on A's worker thread; poll B until it lands.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut client_b = Client::connect(node_b.local_addr()).expect("connect B");
    loop {
        let stats = client_b.stats().expect("stats");
        if stats.peer_offers_stored >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "offer never reached the owner: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // B now answers the same program without a cold build, from the
    // entry the fleet pushed to it.
    let offered_row = analyze(&mut client_b, program());
    assert_eq!(offered_row.served_from, ReuseTier::Network);
    assert_eq!(
        offered_row,
        AnalysisRow {
            served_from: ReuseTier::Network,
            ..cold_row
        }
    );
    let stats_b = node_b.shutdown();
    assert_eq!(stats_b.peer_offers_stored, 1);
    assert_eq!(stats_b.cold_builds, 0);
    node_a.shutdown();
}

/// A peer that answers fetches with garbage costs the requester time,
/// never correctness: the entry fails validation, is counted as corrupt,
/// and the request degrades to a counted cold rebuild with the same
/// rows a standalone node computes.
#[test]
fn poisoned_peer_entry_degrades_to_a_counted_cold_build() {
    // A fake peer speaking raw PWCQ: every fetch is answered with bytes
    // that are not a valid PWCX entry.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake peer");
    let fake_addr = listener.local_addr().expect("local addr");
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let poison_stop = std::sync::Arc::clone(&stop);
    let poison = std::thread::spawn(move || {
        while !poison_stop.load(std::sync::atomic::Ordering::Relaxed) {
            let Ok((mut stream, _)) = listener.accept() else {
                break;
            };
            while let Ok(Some(payload)) = protocol::read_frame(&mut stream) {
                let Ok(request) = protocol::decode_request_payload(&payload) else {
                    break;
                };
                let response = match request {
                    Request::FetchEntry { key, .. } => Response::Entry {
                        key,
                        entry: Some(b"definitely not a PWCX entry".to_vec()),
                    },
                    _ => Response::OfferAck { stored: false },
                };
                if protocol::write_frame(&mut stream, &protocol::encode_response(&response))
                    .is_err()
                {
                    break;
                }
                let _ = stream.flush();
            }
        }
    });

    let config = ServerConfig {
        fleet: Some(FleetConfig::new(
            "127.0.0.1:1", // placeholder self entry, never dialed
            [fake_addr.to_string()],
        )),
        ..ServerConfig::default()
    };
    let node = Server::bind("127.0.0.1:0", config).expect("bind node");
    let mut client = Client::connect(node.local_addr()).expect("connect");
    let row = analyze(&mut client, program());
    assert_eq!(row.served_from, ReuseTier::Cold, "poison must not serve");

    // Same numbers a standalone node computes for this program.
    let standalone = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind ref");
    let mut reference = Client::connect(standalone.local_addr()).expect("connect ref");
    let reference_row = analyze(&mut reference, program());
    assert_eq!(
        row,
        AnalysisRow {
            served_from: ReuseTier::Cold,
            ..reference_row
        }
    );
    standalone.shutdown();

    let stats = node.shutdown();
    assert_eq!(stats.cold_builds, 1);
    assert!(
        stats.network_corrupt >= 1,
        "corrupt fetch must be counted: {stats:?}"
    );
    assert_eq!(stats.network_hits, 0);
    // Unblock the fake peer's accept loop and join it.
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    drop(std::net::TcpStream::connect(fake_addr));
    poison.join().expect("fake peer thread");
}
