//! The fleet layer: a consistent-hash ring of peer nodes backing the
//! reuse plane's *network* tier.
//!
//! A fleet of `pwcet-serve` nodes shares one warm store with no shared
//! filesystem: every node knows the full membership, context keys hash
//! onto a [`PeerRing`] (consistent hashing with virtual nodes — the
//! fleet-wide generalization of the in-process `key % shards` routing in
//! [`ShardPool`](crate::ShardPool)), and each key has one *owner* node.
//!
//! * **Read-through**: on a local miss (memory, disk, derived) the plane
//!   asks the fleet ([`PeerFleet::fetch`]); the fleet asks the key's ring
//!   owners in ring order, skipping itself and backed-off peers. The
//!   first peer that *answers* is authoritative — `Some` is a hit,
//!   `None` a miss; only transport failures fall through to the next
//!   owner.
//! * **Write-back**: after a cold build persists, the plane offers the
//!   encoded entry to the fleet ([`PeerFleet::offer`]); offers to the
//!   key's owner are enqueued and sent by one background worker so the
//!   analysis path never blocks on a peer's socket.
//! * **Health**: a peer that fails transport gets an exponential backoff
//!   (doubling from [`FleetConfig::backoff_base`], capped at
//!   [`FleetConfig::backoff_max`]) and is skipped until it expires; any
//!   successful exchange resets it.
//! * **Correctness**: fetched bytes are decoded and validated by the
//!   plane against the live CFG before use — a corrupt or malicious
//!   peer degrades the request to a counted cold rebuild, never a wrong
//!   answer. The fleet itself only moves opaque bytes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pwcet_core::{fnv1a_checksum, NetworkTier};

use crate::client::{Client, ClientConfig};

/// Virtual nodes per peer on the ring. Enough that four peers land
/// within ~2× of a uniform split (see the property tests below) while
/// keeping ring construction trivial.
pub const DEFAULT_VNODES: usize = 64;

/// Default per-phase deadline for peer sockets. Deliberately much
/// shorter than the server's frame deadline: a dead peer costs the
/// request a couple of seconds once (then backoff makes it free), and
/// the cold rebuild is always available as the fallback.
pub const DEFAULT_PEER_DEADLINE: Duration = Duration::from_secs(2);

/// First backoff step after a peer failure; doubles per consecutive
/// failure up to [`FleetConfig::backoff_max`].
pub const DEFAULT_BACKOFF_BASE: Duration = Duration::from_millis(250);

/// Backoff ceiling — a down peer is re-probed at least this often.
pub const DEFAULT_BACKOFF_MAX: Duration = Duration::from_secs(30);

/// Bound on queued write-back offers; beyond it new offers are dropped
/// (and counted) rather than blocking the analysis path.
pub const DEFAULT_OFFER_QUEUE: usize = 256;

/// A consistent-hash ring over peer addresses.
///
/// Each peer contributes `vnodes` points at
/// `fnv1a(addr_bytes ++ vnode_index_le)`; a key hashes to a point and is
/// owned by the next peer point clockwise (wrapping). Adding or removing
/// one peer therefore remaps only the arcs adjacent to its points —
/// about `1/N` of the key space — where the modulo routing the shards
/// use in-process would reshuffle nearly everything.
#[derive(Debug, Clone)]
pub struct PeerRing {
    addrs: Vec<String>,
    /// Sorted `(point, peer index)` pairs.
    points: Vec<(u64, usize)>,
}

/// Finalizes a hash into a well-avalanched ring position (the 64-bit
/// mixer from splitmix64). FNV-1a alone is too weak here: the vnode
/// seeds differ in a few bytes, and ring ordering keys on the *high*
/// bits, exactly where FNV's avalanche is poorest — unmixed points
/// cluster and peers end up owning wildly uneven arcs.
fn mix_point(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl PeerRing {
    /// Builds the ring. Order of `addrs` is irrelevant to ownership
    /// (only the hashed points matter); duplicates are kept verbatim and
    /// simply double that peer's share.
    pub fn new(addrs: impl IntoIterator<Item = impl Into<String>>, vnodes: usize) -> Self {
        let addrs: Vec<String> = addrs.into_iter().map(Into::into).collect();
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(addrs.len() * vnodes);
        for (index, addr) in addrs.iter().enumerate() {
            let mut seed = Vec::with_capacity(addr.len() + 8);
            seed.extend_from_slice(addr.as_bytes());
            for vnode in 0..vnodes {
                seed.truncate(addr.len());
                seed.extend_from_slice(&(vnode as u64).to_le_bytes());
                points.push((mix_point(fnv1a_checksum(&seed)), index));
            }
        }
        points.sort_unstable();
        Self { addrs, points }
    }

    /// Number of peers (not points) on the ring.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the ring has no peers at all.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The address of peer `index`.
    pub fn addr(&self, index: usize) -> &str {
        &self.addrs[index]
    }

    /// The ring position a key lands on. Keys are content fingerprints
    /// and already well-mixed, but re-hashing decouples ring placement
    /// from whatever structure the fingerprint has.
    fn point_of(key: u64) -> u64 {
        mix_point(fnv1a_checksum(&key.to_le_bytes()))
    }

    /// The owning peer of `key`, or `None` on an empty ring.
    pub fn owner(&self, key: u64) -> Option<usize> {
        self.owners(key).next()
    }

    /// All peers in ring order starting from `key`'s owner, each peer
    /// once. The order is the fetch fallback order: owner first, then
    /// the successor peers that would inherit the key if the owner left.
    pub fn owners(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let start = self
            .points
            .partition_point(|&(point, _)| point < Self::point_of(key));
        let n = self.points.len();
        let mut seen = vec![false; self.addrs.len()];
        (0..n).filter_map(move |step| {
            let (_, index) = self.points[(start + step) % n];
            if std::mem::replace(&mut seen[index], true) {
                None
            } else {
                Some(index)
            }
        })
    }
}

/// Fleet membership and tuning for one node.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Full fleet membership (typically including this node itself) —
    /// every node must be configured with the same list for the ring to
    /// agree on owners.
    pub peers: Vec<String>,
    /// This node's own address as it appears in `peers`, so the fleet
    /// never fetches from or offers to itself.
    pub self_addr: String,
    /// Virtual nodes per peer ([`DEFAULT_VNODES`]).
    pub vnodes: usize,
    /// Socket deadlines for peer exchanges
    /// ([`DEFAULT_PEER_DEADLINE`] for every phase).
    pub client: ClientConfig,
    /// First backoff step after a peer failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Bound on queued write-back offers.
    pub offer_queue: usize,
}

impl FleetConfig {
    /// The default tuning for a node at `self_addr` in fleet `peers`.
    pub fn new(
        self_addr: impl Into<String>,
        peers: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Self {
            peers: peers.into_iter().map(Into::into).collect(),
            self_addr: self_addr.into(),
            vnodes: DEFAULT_VNODES,
            client: ClientConfig::with_deadline(DEFAULT_PEER_DEADLINE),
            backoff_base: DEFAULT_BACKOFF_BASE,
            backoff_max: DEFAULT_BACKOFF_MAX,
            offer_queue: DEFAULT_OFFER_QUEUE,
        }
    }

    /// Whether the configuration names at least one peer other than this
    /// node — a fleet of one is just single-node mode.
    pub fn has_peers(&self) -> bool {
        self.peers.iter().any(|p| *p != self.self_addr)
    }
}

/// Per-peer transport health. Failures back the peer off exponentially;
/// any success resets it.
#[derive(Debug, Default)]
struct Health {
    failures: u32,
    down_until: Option<Instant>,
}

/// Fleet counters (monotonic).
#[derive(Debug, Default)]
struct FleetCounters {
    fetch_hits: AtomicU64,
    fetch_misses: AtomicU64,
    fetch_errors: AtomicU64,
    offers_sent: AtomicU64,
    offers_failed: AtomicU64,
    offers_dropped: AtomicU64,
}

/// A snapshot of [`PeerFleet`] activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetStats {
    /// Peers on the ring other than this node.
    pub peers: usize,
    /// Of those, how many are currently backed off.
    pub unhealthy: usize,
    /// Fetches answered `Some` by a peer.
    pub fetch_hits: u64,
    /// Fetches answered `None` (authoritative miss) or with every
    /// candidate peer skipped.
    pub fetch_misses: u64,
    /// Transport failures during fetches.
    pub fetch_errors: u64,
    /// Write-back offers delivered (whether or not the peer stored).
    pub offers_sent: u64,
    /// Write-back offers that failed transport.
    pub offers_failed: u64,
    /// Write-back offers dropped because the queue was full.
    pub offers_dropped: u64,
}

struct FleetInner {
    ring: PeerRing,
    /// This node's index on the ring, when it is a member.
    self_index: Option<usize>,
    client: ClientConfig,
    backoff_base: Duration,
    backoff_max: Duration,
    health: Vec<Mutex<Health>>,
    /// One cached connection per peer, reused across exchanges (a
    /// connect per fetch would pay the peer's accept path every time).
    /// The lock doubles as per-peer serialization of exchanges.
    conns: Vec<Mutex<Option<Client>>>,
    counters: FleetCounters,
}

impl FleetInner {
    fn is_self(&self, index: usize) -> bool {
        self.self_index == Some(index) || self.ring.addr(index) == self.self_addr()
    }

    fn self_addr(&self) -> &str {
        self.self_index.map_or("", |i| self.ring.addr(i))
    }

    fn backed_off(&self, index: usize) -> bool {
        let health = self.health[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        health.down_until.is_some_and(|t| Instant::now() < t)
    }

    fn mark_failure(&self, index: usize) {
        let mut health = self.health[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        health.failures = health.failures.saturating_add(1);
        let exp = health.failures.saturating_sub(1).min(20);
        let delay = self
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_max);
        health.down_until = Some(Instant::now() + delay);
    }

    fn mark_healthy(&self, index: usize) {
        let mut health = self.health[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        health.failures = 0;
        health.down_until = None;
    }

    /// One peer exchange over the cached connection (dialing a fresh one
    /// when there is none), classifying the transport outcome into the
    /// health tracker. A failure on a *cached* connection gets one
    /// fresh-connection retry — the peer may simply have restarted and
    /// closed its old sockets. Returns `Err(())` on transport failure.
    fn exchange<T>(
        &self,
        index: usize,
        run: impl Fn(&mut Client) -> Result<T, crate::protocol::WireError>,
    ) -> Result<T, ()> {
        #[cfg(feature = "chaos")]
        {
            use pwcet_chaos::FaultPoint;
            // A refused dial and a timed-out exchange look identical to
            // the caller (a transport failure that backs the peer off);
            // both are injected here, before any socket is touched, so
            // the storm never actually burns a peer deadline waiting.
            if pwcet_chaos::should_fire(FaultPoint::PeerDialRefusal)
                || pwcet_chaos::should_fire(FaultPoint::PeerTimeout)
            {
                self.mark_failure(index);
                return Err(());
            }
        }
        let mut slot = self.conns[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let cached = slot.take();
        let had_cached = cached.is_some();
        let mut client = match cached {
            Some(client) => client,
            None => match Client::connect_with(self.ring.addr(index), self.client) {
                Ok(client) => client,
                Err(_) => {
                    self.mark_failure(index);
                    return Err(());
                }
            },
        };
        match run(&mut client) {
            Ok(value) => {
                *slot = Some(client);
                self.mark_healthy(index);
                return Ok(value);
            }
            Err(_) if had_cached => {
                drop(client);
                if let Ok(mut fresh) = Client::connect_with(self.ring.addr(index), self.client) {
                    if let Ok(value) = run(&mut fresh) {
                        *slot = Some(fresh);
                        self.mark_healthy(index);
                        return Ok(value);
                    }
                }
            }
            Err(_) => {}
        }
        self.mark_failure(index);
        Err(())
    }

    fn fetch_from_peers(&self, key: u64) -> Option<Vec<u8>> {
        // The fetch runs on a traced shard-worker thread (inside its
        // `trace_scope`), so the requester's trace ID is one TLS read
        // away — stamped into the frame, the serving node records its
        // `peer_serve` span under the *same* trace and the hop shows up
        // on both nodes' rings.
        let trace = pwcet_obs::current_trace().map_or(0, |t| t.0);
        for index in self.ring.owners(key) {
            if self.is_self(index) || self.backed_off(index) {
                continue;
            }
            match self.exchange(index, |client| client.fetch_entry(key, trace)) {
                Ok(Some(bytes)) => {
                    #[cfg(feature = "chaos")]
                    let bytes = {
                        let mut bytes = bytes;
                        if let Some(entropy) =
                            pwcet_chaos::roll(pwcet_chaos::FaultPoint::PeerCorruptEntry)
                        {
                            if !bytes.is_empty() {
                                let at = (entropy as usize) % bytes.len();
                                bytes[at] ^= 0xff;
                            }
                        }
                        bytes
                    };
                    self.counters.fetch_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(bytes);
                }
                Ok(None) => {
                    // The peer that answers is authoritative for the
                    // key; an explicit miss means the fleet does not
                    // have it and the cold build should start now.
                    self.counters.fetch_misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                Err(()) => {
                    self.counters.fetch_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.counters.fetch_misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn send_offer(&self, key: u64, bytes: &[u8]) {
        for index in self.ring.owners(key) {
            if self.is_self(index) {
                // This node *is* the key's owner (or next in line) —
                // its local tiers already hold the entry.
                return;
            }
            if self.backed_off(index) {
                continue;
            }
            match self.exchange(index, |client| client.offer_entry(key, bytes)) {
                Ok(_stored) => {
                    self.counters.offers_sent.fetch_add(1, Ordering::Relaxed);
                }
                Err(()) => {
                    self.counters.offers_failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            // One delivery attempt to the best reachable owner; the
            // entry is still on this node (and re-derivable), so a lost
            // offer only costs a future peer fetch miss.
            return;
        }
    }
}

/// A queued write-back offer: the entry's content key plus its encoded
/// `PWCX` payload.
type OfferMsg = (u64, Vec<u8>);

/// The running fleet client of one node. Implements
/// [`NetworkTier`](pwcet_core::NetworkTier) so the reuse plane can be
/// pointed at it directly.
pub struct PeerFleet {
    inner: Arc<FleetInner>,
    offer_tx: Mutex<Option<mpsc::SyncSender<OfferMsg>>>,
    offer_worker: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for PeerFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerFleet")
            .field("peers", &self.inner.ring.len())
            .field("self_index", &self.inner.self_index)
            .finish_non_exhaustive()
    }
}

impl PeerFleet {
    /// Builds the ring and starts the offer worker.
    pub fn start(config: FleetConfig) -> Self {
        let ring = PeerRing::new(config.peers.iter().cloned(), config.vnodes);
        let self_index = config.peers.iter().position(|p| *p == config.self_addr);
        let health = (0..ring.len())
            .map(|_| Mutex::new(Health::default()))
            .collect();
        let conns = (0..ring.len()).map(|_| Mutex::new(None)).collect();
        let inner = Arc::new(FleetInner {
            ring,
            self_index,
            client: config.client,
            backoff_base: config.backoff_base,
            backoff_max: config.backoff_max,
            health,
            conns,
            counters: FleetCounters::default(),
        });
        let (tx, rx) = mpsc::sync_channel::<(u64, Vec<u8>)>(config.offer_queue.max(1));
        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name("pwcq-offer".into())
            .spawn(move || {
                while let Ok((key, bytes)) = rx.recv() {
                    worker_inner.send_offer(key, &bytes);
                }
            })
            .expect("spawn offer worker");
        Self {
            inner,
            offer_tx: Mutex::new(Some(tx)),
            offer_worker: Mutex::new(Some(worker)),
        }
    }

    /// Peers on the ring other than this node.
    pub fn peer_count(&self) -> usize {
        self.inner.ring.len() - usize::from(self.inner.self_index.is_some())
    }

    /// How many remote peers are currently backed off.
    pub fn unhealthy_count(&self) -> usize {
        (0..self.inner.ring.len())
            .filter(|&i| !self.inner.is_self(i) && self.inner.backed_off(i))
            .count()
    }

    /// A snapshot of the fleet counters.
    pub fn stats(&self) -> FleetStats {
        let c = &self.inner.counters;
        FleetStats {
            peers: self.peer_count(),
            unhealthy: self.unhealthy_count(),
            fetch_hits: c.fetch_hits.load(Ordering::Relaxed),
            fetch_misses: c.fetch_misses.load(Ordering::Relaxed),
            fetch_errors: c.fetch_errors.load(Ordering::Relaxed),
            offers_sent: c.offers_sent.load(Ordering::Relaxed),
            offers_failed: c.offers_failed.load(Ordering::Relaxed),
            offers_dropped: c.offers_dropped.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting offers, drains the queued ones, and joins the
    /// worker. Idempotent; also run by drop.
    pub fn shutdown(&self) {
        drop(
            self.offer_tx
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take(),
        );
        let worker = self
            .offer_worker
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(worker) = worker {
            let _ = worker.join();
        }
    }
}

impl Drop for PeerFleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl NetworkTier for PeerFleet {
    fn fetch(&self, key: u64) -> Option<Vec<u8>> {
        self.inner.fetch_from_peers(key)
    }

    fn offer(&self, key: u64, bytes: &[u8]) {
        #[cfg(feature = "chaos")]
        if pwcet_chaos::should_fire(pwcet_chaos::FaultPoint::PeerOfferDrop) {
            // A dropped offer is the same degradation a full queue
            // causes: the entry stays local and a future peer fetch
            // misses. Count it in the same place.
            self.inner
                .counters
                .offers_dropped
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        let guard = self.offer_tx.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(tx) = guard.as_ref() else { return };
        if tx.try_send((key, bytes.to_vec())).is_err() {
            // Queue full (or worker gone): drop rather than block the
            // analysis path — the entry stays available locally.
            self.inner
                .counters
                .offers_dropped
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::collections::HashMap;

    use proptest::prelude::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{}:7411", i + 1)).collect()
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = PeerRing::new(Vec::<String>::new(), DEFAULT_VNODES);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(42), None);
        assert_eq!(ring.owners(42).count(), 0);
    }

    #[test]
    fn owners_cover_every_peer_exactly_once() {
        let ring = PeerRing::new(addrs(5), DEFAULT_VNODES);
        for key in [0u64, 1, 0xdead_beef, u64::MAX] {
            let mut order: Vec<usize> = ring.owners(key).collect();
            assert_eq!(order.len(), 5);
            order.sort_unstable();
            assert_eq!(order, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn ownership_is_stable_under_membership_order() {
        // The ring hashes addresses, so two nodes configured with the
        // same membership in different order agree on every owner.
        let forward = PeerRing::new(addrs(4), DEFAULT_VNODES);
        let mut reversed_addrs = addrs(4);
        reversed_addrs.reverse();
        let reversed = PeerRing::new(reversed_addrs, DEFAULT_VNODES);
        for key in 0..512u64 {
            let a = forward.addr(forward.owner(key).unwrap());
            let b = reversed.addr(reversed.owner(key).unwrap());
            assert_eq!(a, b, "owner disagreement for key {key}");
        }
    }

    proptest! {
        /// Every peer's share of a large key sample stays within 2× of
        /// the uniform share — the balance the vnode count buys.
        #[test]
        fn ring_balance_within_2x_of_uniform(
            peers in 2usize..8,
            seed in any::<u64>(),
        ) {
            let ring = PeerRing::new(addrs(peers), DEFAULT_VNODES);
            let samples = 4096u64;
            let mut counts: HashMap<usize, u64> = HashMap::new();
            for i in 0..samples {
                // A cheap splitmix-style scramble keyed by the seed, so
                // different cases probe different key populations.
                let key = (seed ^ i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                *counts.entry(ring.owner(key).unwrap()).or_default() += 1;
            }
            let uniform = samples as f64 / peers as f64;
            for index in 0..peers {
                let share = counts.get(&index).copied().unwrap_or(0) as f64;
                prop_assert!(
                    share <= 2.0 * uniform,
                    "peer {index} owns {share} of {samples} keys (uniform {uniform:.0})"
                );
                prop_assert!(
                    share >= uniform / 2.0,
                    "peer {index} owns only {share} of {samples} keys (uniform {uniform:.0})"
                );
            }
        }

        /// Removing one peer remaps only the keys it owned (~1/N), and
        /// every key it owned moves while no other key does — the
        /// property modulo routing does not have.
        #[test]
        fn removing_a_peer_remaps_about_one_nth(
            peers in 3usize..8,
            removed in 0usize..8,
            seed in any::<u64>(),
        ) {
            let removed = removed % peers;
            let full_addrs = addrs(peers);
            let mut reduced_addrs = full_addrs.clone();
            reduced_addrs.remove(removed);
            let full = PeerRing::new(full_addrs.clone(), DEFAULT_VNODES);
            let reduced = PeerRing::new(reduced_addrs, DEFAULT_VNODES);

            let samples = 2048u64;
            let mut moved = 0u64;
            for i in 0..samples {
                let key = (seed ^ i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                // Compare by address — indices shift when a peer leaves.
                let before = full.addr(full.owner(key).unwrap()).to_string();
                let after = reduced.addr(reduced.owner(key).unwrap()).to_string();
                if before == after {
                    continue;
                }
                moved += 1;
                // Only keys the removed peer owned may move.
                prop_assert_eq!(
                    &before,
                    &full_addrs[removed],
                    "key {} moved away from a surviving peer", key
                );
            }
            // The removed peer's share is ~1/N; with 2× balance slack on
            // either side, strictly fewer than half the keys may move
            // even at N = 3.
            let limit = (samples as f64) * 2.0 / (peers as f64);
            prop_assert!(
                (moved as f64) <= limit,
                "removing one of {peers} peers remapped {moved}/{samples} keys (limit {limit:.0})"
            );
        }
    }
}
