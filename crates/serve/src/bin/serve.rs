//! `pwcet-serve` — run the analysis service until a client asks it to
//! shut down.
//!
//! ```text
//! pwcet-serve [--addr HOST:PORT] [--shards N] [--queue CAP] [--disk DIR] [--pfail P]
//!             [--peers ADDR,ADDR,…] [--self-addr HOST:PORT] [--trace-out FILE]
//! ```
//!
//! `--trace-out` appends every completed stage span as one JSONL line
//! (`{"trace":"…","stage":"ilp_solve","start_us":N,"dur_us":N}`) and,
//! when the server drains, a final `{"record":"final_metrics",…}` line
//! with the full metrics table.
//!
//! `--peers` names the full fleet membership (comma-separated, the same
//! list on every node) and turns on the reuse plane's network tier;
//! `--self-addr` is this node's own entry in that list when it differs
//! from `--addr` (e.g. bound to `0.0.0.0` but advertised by hostname).
//!
//! Prints one `listening` line once the socket is bound (machine-
//! readable; the CI smoke waits for it), serves until a client sends a
//! shutdown request, drains in-flight work, and prints a final summary.

use std::process::ExitCode;

use pwcet_core::AnalysisConfig;
use pwcet_serve::{FleetConfig, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: pwcet-serve [--addr HOST:PORT] [--shards N] [--queue CAP] [--disk DIR] [--pfail P] \
         [--peers ADDR,ADDR,…] [--self-addr HOST:PORT] [--trace-out FILE]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7463".to_string();
    let mut config = ServerConfig::default();
    let mut peers: Vec<String> = Vec::new();
    let mut self_addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = value(),
            "--peers" => {
                peers = value()
                    .split(',')
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                    .map(String::from)
                    .collect();
                if peers.is_empty() {
                    eprintln!("pwcet-serve: --peers needs at least one address");
                    return ExitCode::from(2);
                }
            }
            "--self-addr" => self_addr = Some(value()),
            "--shards" => match value().parse() {
                Ok(n) => config.shards = n,
                Err(_) => usage(),
            },
            "--queue" => match value().parse() {
                Ok(n) if n > 0 => config.queue_capacity = n,
                _ => usage(),
            },
            "--disk" => {
                match value() {
                    dir if dir.is_empty() => {
                        eprintln!("pwcet-serve: --disk needs a non-empty directory (unset shell variable?)");
                        return ExitCode::from(2);
                    }
                    dir => config.disk_dir = Some(dir.into()),
                }
            }
            "--trace-out" => match value() {
                file if file.is_empty() => {
                    eprintln!("pwcet-serve: --trace-out needs a non-empty file path");
                    return ExitCode::from(2);
                }
                file => config.trace_out = Some(file.into()),
            },
            "--pfail" => match value().parse() {
                Ok(p) => match AnalysisConfig::paper_default().with_pfail(p) {
                    Ok(analysis) => config.analysis = analysis,
                    Err(e) => {
                        eprintln!("pwcet-serve: bad --pfail: {e}");
                        return ExitCode::from(2);
                    }
                },
                Err(_) => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    if !peers.is_empty() {
        let self_addr = self_addr.unwrap_or_else(|| addr.clone());
        config.fleet = Some(FleetConfig::new(self_addr, peers));
    }

    let disk = config
        .disk_dir
        .as_ref()
        .map(|d| d.display().to_string())
        .unwrap_or_else(|| "none".to_string());
    let fleet_peers = config
        .fleet
        .as_ref()
        .map_or(0, |f| f.peers.iter().filter(|p| **p != f.self_addr).count());
    let server = match Server::bind(addr.as_str(), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("pwcet-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = server.stats();
    println!(
        "pwcet-serve listening on {} shards={} queue={} disk={} peers={}",
        server.local_addr(),
        stats.shards,
        stats.queue_capacity,
        disk,
        fleet_peers,
    );

    server.wait_for_shutdown_request();
    println!("pwcet-serve draining…");
    let final_stats = server.shutdown();
    println!(
        "pwcet-serve drained and shut down cleanly: served={} overloads={} protocol_errors={} \
         served_from memory/disk/derived/network/cold = {}/{}/{}/{}/{}",
        final_stats.served,
        final_stats.overloads,
        final_stats.protocol_errors,
        final_stats.served_memory,
        final_stats.served_disk,
        final_stats.served_derived,
        final_stats.served_network,
        final_stats.served_cold,
    );
    ExitCode::SUCCESS
}
