//! `pwcet-client` — submit analysis requests to a running `pwcet-serve`.
//!
//! ```text
//! pwcet-client <SERVERS> suite [NAME…]         analyze benchsuite programs (default: all 25)
//! pwcet-client <SERVERS> analyze NAME [-n K]   analyze one benchmark K times (default 1)
//! pwcet-client <SERVERS> program FILE          submit a request frame exported to FILE
//! pwcet-client <SERVERS> export NAME FILE      write NAME's analyze-request frame to FILE
//! pwcet-client <SERVERS> stats [--json]        print the service counters
//! pwcet-client <SERVERS> metrics [--json]      print the full metrics table (exact quantiles)
//! pwcet-client <SERVERS> shutdown              ask the server to drain and exit
//! ```
//!
//! `<SERVERS>` is either a single `HOST:PORT` or `--servers a,b,…` — a
//! comma-separated endpoint list the client fails over across: an
//! idempotent request that times out or is refused at the connection
//! level retries on the next endpoint (with jittered exponential
//! backoff), and an `Overloaded` refusal is retried after the server's
//! own `retry_after_ms` hint. `shutdown` never fails over — it would
//! drain a second, healthy server.
//!
//! Analysis rows report the server's `served_from` tier provenance and
//! the client-measured round-trip latency; multi-request commands end
//! with latency percentiles. Every `suite`/`analyze` request carries a
//! client-minted trace ID, echoed back with the server's per-stage
//! timing breakdown. `metrics` dumps the self-describing name→value
//! table in Prometheus text exposition style (or, with `--json`, as the
//! flat one-pair-per-line JSON object the bench tooling uses — with the
//! client's own attempt counters appended as `client_*` rows).

use std::process::ExitCode;
use std::time::Instant;

use pwcet_obs::TraceId;
use pwcet_serve::{FleetClient, Request, Response, RetryStats, StageTiming};

const DEFAULT_PFAIL: f64 = 1e-4;
const DEFAULT_TARGET_P: f64 = 1e-15;

fn usage() -> ! {
    eprintln!(
        "usage: pwcet-client <HOST:PORT | --servers A,B,…> <suite [NAME…] | analyze NAME [-n K] | \
         program FILE | export NAME FILE | stats [--json] | metrics [--json] | shutdown>"
    );
    std::process::exit(2);
}

/// One `trace=… stages: …` line under an analysis row: the server-side
/// breakdown of where the request's time went (durations in
/// microseconds, `×N` marking stages that ran more than once).
fn print_stages(trace: u64, stages: &[StageTiming]) {
    if trace == 0 && stages.is_empty() {
        return;
    }
    let mut parts = String::new();
    for timing in stages {
        use std::fmt::Write as _;
        let _ = write!(parts, " {}={}us", timing.stage.label(), timing.micros);
        if timing.count > 1 {
            let _ = write!(parts, "(\u{d7}{})", timing.count);
        }
    }
    println!("  trace={} stages:{parts}", TraceId(trace));
}

/// Prints a name→value table as flat JSON: one `"key": value` pair per
/// line, no nesting — the same restricted shape `BENCH_pipeline.json`
/// uses, so the output pipes straight into the bench tooling.
fn print_json(entries: &[(String, u64)]) {
    println!("{{");
    for (index, (name, value)) in entries.iter().enumerate() {
        let comma = if index + 1 == entries.len() { "" } else { "," };
        println!("  \"{name}\": {value}{comma}");
    }
    println!("}}");
}

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("pwcet-client: {message}");
    ExitCode::FAILURE
}

fn print_header() {
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12} {:>9} {:>12}",
        "benchmark", "wcet_ff", "none", "srb", "rw", "tier", "latency_us"
    );
}

fn print_row(row: &pwcet_serve::AnalysisRow, latency_us: u64) {
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12} {:>9} {:>12}",
        row.name,
        row.fault_free_wcet,
        row.pwcet_none,
        row.pwcet_srb,
        row.pwcet_rw,
        row.served_from.label(),
        latency_us,
    );
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let index = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[index.min(sorted.len() - 1)]
}

fn print_percentiles(mut latencies: Vec<u64>) {
    if latencies.is_empty() {
        return;
    }
    latencies.sort_unstable();
    let mean = latencies.iter().sum::<u64>() / latencies.len() as u64;
    println!(
        "latency_us: n={} min={} p50={} p90={} p99={} max={} mean={}",
        latencies.len(),
        latencies[0],
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
        latencies[latencies.len() - 1],
        mean,
    );
}

/// The client's own attempt accounting as `client_*` rows, appended to
/// `--json` tables so a chaos or failover run shows how hard the client
/// had to work alongside what the server saw.
fn attempt_entries(stats: RetryStats) -> Vec<(String, u64)> {
    vec![
        ("client_attempts".to_string(), stats.attempts),
        ("client_retries".to_string(), stats.retries),
        ("client_failovers".to_string(), stats.failovers),
    ]
}

/// Sends one request, prints its rows, and records the round trip.
/// Returns `false` when the server answered with an error.
fn submit(
    client: &mut FleetClient,
    request: &Request,
    latencies: &mut Vec<u64>,
) -> Result<bool, ExitCode> {
    let started = Instant::now();
    let response = client
        .request(request)
        .map_err(|e| fail(format!("request failed: {e}")))?;
    let elapsed = started.elapsed().as_micros() as u64;
    match response {
        Response::Analysis {
            row, trace, stages, ..
        } => {
            latencies.push(elapsed);
            print_row(&row, elapsed);
            print_stages(trace, &stages);
            Ok(true)
        }
        Response::Batch {
            rows,
            trace,
            stages,
            ..
        } => {
            latencies.push(elapsed);
            for row in rows {
                print_row(&row, elapsed);
            }
            print_stages(trace, &stages);
            Ok(true)
        }
        Response::PfailSweep {
            name,
            served_from,
            rows,
            trace,
            stages,
            ..
        } => {
            latencies.push(elapsed);
            for row in rows {
                println!(
                    "{:>12} pfail={:<9e} {:>12} {:>12} {:>12} {:>9} {:>12}",
                    name,
                    row.pfail,
                    row.pwcet_none,
                    row.pwcet_srb,
                    row.pwcet_rw,
                    served_from.label(),
                    elapsed,
                );
            }
            print_stages(trace, &stages);
            Ok(true)
        }
        Response::GeometrySweep {
            name,
            served_from,
            rows,
            trace,
            stages,
            ..
        } => {
            latencies.push(elapsed);
            for row in rows {
                println!(
                    "{:>12} ways={:<4} {:>12} {:>12} {:>12} {:>9} {:>12}",
                    name,
                    row.ways,
                    row.pwcet_none,
                    row.pwcet_srb,
                    row.pwcet_rw,
                    served_from.label(),
                    elapsed,
                );
            }
            print_stages(trace, &stages);
            Ok(true)
        }
        Response::Stats(stats) => {
            println!("{stats:#?}");
            // Solver behavior at a glance, next to the reuse-tier
            // counters above.
            if stats.ilp_bb_nodes > 0 {
                println!(
                    "ilp: {} pivots ({} dual), {} B&B nodes, {} warm starts, \
                     {} cold starts, {} trivial prunes",
                    stats.ilp_pivots,
                    stats.ilp_dual_pivots,
                    stats.ilp_bb_nodes,
                    stats.ilp_warm_starts,
                    stats.ilp_cold_starts,
                    stats.ilp_trivial_prunes,
                );
            }
            if stats.template_hits + stats.basis_restores + stats.basis_rejects > 0 {
                println!(
                    "templates: {} registry hits, {} bases restored, {} bases rejected",
                    stats.template_hits, stats.basis_restores, stats.basis_rejects,
                );
            }
            if stats.classify_passes > 0 {
                println!(
                    "classify: {} passes, {} words touched, {} sets skipped",
                    stats.classify_passes,
                    stats.classify_words_touched,
                    stats.classify_sets_skipped,
                );
            }
            if stats.store_bytes > 0 {
                println!("store: {} bytes on disk", stats.store_bytes);
            }
            if stats.peers > 0 {
                println!(
                    "fleet: {} peers ({} unhealthy), network hits/misses/corrupt = {}/{}/{}, \
                     {} offers out, {} peer fetches served, {} peer offers stored",
                    stats.peers,
                    stats.peers_unhealthy,
                    stats.network_hits,
                    stats.network_misses,
                    stats.network_corrupt,
                    stats.network_offers,
                    stats.peer_fetches_served,
                    stats.peer_offers_stored,
                );
            }
            Ok(true)
        }
        Response::Entry { key, entry } => {
            // Fleet verbs are normally peer-to-peer; answering them here
            // keeps `program` usable with exported fetch frames.
            match entry {
                Some(bytes) => println!("entry {key:016x}: {} bytes", bytes.len()),
                None => println!("entry {key:016x}: miss"),
            }
            Ok(true)
        }
        Response::OfferAck { stored } => {
            println!("offer {}", if stored { "stored" } else { "declined" });
            Ok(true)
        }
        Response::Metrics { entries } => {
            for (name, value) in &entries {
                println!("{name} {value}");
            }
            Ok(true)
        }
        Response::ShutdownStarted => {
            println!("server acknowledged shutdown; draining");
            Ok(true)
        }
        Response::Error {
            code,
            message,
            retry_after_ms,
        } => {
            match retry_after_ms {
                Some(ms) => eprintln!(
                    "pwcet-client: server refused ({code}): {message} (retry after {ms}ms)"
                ),
                None => eprintln!("pwcet-client: server refused ({code}): {message}"),
            }
            Ok(false)
        }
    }
}

fn bench_program(name: &str) -> Result<pwcet_progen::Program, ExitCode> {
    pwcet_benchsuite::by_name(name)
        .map(|b| b.program)
        .ok_or_else(|| {
            fail(format!(
                "unknown benchmark {name:?} (see `suite` for names)"
            ))
        })
}

fn run() -> Result<ExitCode, ExitCode> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--servers a,b,…` replaces the positional address with an explicit
    // failover list; a bare HOST:PORT is the one-endpoint special case.
    let endpoints: Vec<String> = if args.first().map(String::as_str) == Some("--servers") {
        if args.len() < 2 {
            usage();
        }
        let list = args[1].clone();
        args.drain(..2);
        list.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect()
    } else {
        if args.is_empty() {
            usage();
        }
        vec![args.remove(0)]
    };
    if endpoints.is_empty() || args.is_empty() {
        usage();
    }
    let command = args[0].clone();
    let command = command.as_str(); // `args[1..]` are the command operands

    // `export` needs no connection.
    if command == "export" {
        let [name, file] = &args[1..] else { usage() };
        let program = bench_program(name)?;
        let frame = pwcet_serve::protocol::encode_request(&Request::Analyze {
            program,
            pfail: DEFAULT_PFAIL,
            target_p: DEFAULT_TARGET_P,
            trace: 0,
        });
        std::fs::write(file, frame).map_err(|e| fail(format!("cannot write {file}: {e}")))?;
        println!("wrote request frame for {name} to {file}");
        return Ok(ExitCode::SUCCESS);
    }

    // Connections are dialed lazily by the fleet client; a dead first
    // endpoint surfaces as a failover on the first request, not here.
    let mut client = FleetClient::new(endpoints);
    let mut latencies = Vec::new();
    let mut all_ok = true;

    match command {
        "suite" => {
            let names: Vec<String> = if args.len() > 1 {
                args[1..].to_vec()
            } else {
                pwcet_benchsuite::names()
                    .into_iter()
                    .map(String::from)
                    .collect()
            };
            print_header();
            for name in &names {
                let program = bench_program(name)?;
                let request = Request::Analyze {
                    program,
                    pfail: DEFAULT_PFAIL,
                    target_p: DEFAULT_TARGET_P,
                    trace: TraceId::mint().0,
                };
                all_ok &= submit(&mut client, &request, &mut latencies)?;
            }
            print_percentiles(latencies);
        }
        "analyze" => {
            if args.len() < 2 {
                usage();
            }
            let name = &args[1];
            let repeats = match args.get(2).map(String::as_str) {
                Some("-n") => args
                    .get(3)
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| usage()),
                Some(_) => usage(),
                None => 1,
            };
            let program = bench_program(name)?;
            print_header();
            for _ in 0..repeats {
                let request = Request::Analyze {
                    program: program.clone(),
                    pfail: DEFAULT_PFAIL,
                    target_p: DEFAULT_TARGET_P,
                    trace: TraceId::mint().0,
                };
                all_ok &= submit(&mut client, &request, &mut latencies)?;
            }
            print_percentiles(latencies);
        }
        "program" => {
            let [file] = &args[1..] else { usage() };
            let bytes =
                std::fs::read(file).map_err(|e| fail(format!("cannot read {file}: {e}")))?;
            let request = pwcet_serve::protocol::decode_request(&bytes)
                .map_err(|e| fail(format!("{file} is not a valid request frame: {e}")))?;
            print_header();
            all_ok &= submit(&mut client, &request, &mut latencies)?;
        }
        "stats" => {
            if args.get(1).map(String::as_str) == Some("--json") {
                let stats = client
                    .stats()
                    .map_err(|e| fail(format!("request failed: {e}")))?;
                let mut entries: Vec<(String, u64)> = stats
                    .entries()
                    .into_iter()
                    .map(|(name, value)| (name.to_string(), value))
                    .collect();
                entries.extend(attempt_entries(client.retry_stats()));
                print_json(&entries);
            } else {
                all_ok &= submit(&mut client, &Request::Stats, &mut latencies)?;
            }
        }
        "metrics" => {
            let mut entries = client
                .metrics()
                .map_err(|e| fail(format!("request failed: {e}")))?;
            if args.get(1).map(String::as_str) == Some("--json") {
                entries.extend(attempt_entries(client.retry_stats()));
                print_json(&entries);
            } else {
                // Prometheus text exposition: one `name value` sample
                // per line (all instruments are untyped u64 gauges from
                // the scraper's point of view).
                for (name, value) in &entries {
                    println!("{name} {value}");
                }
            }
        }
        "shutdown" => {
            all_ok &= submit(&mut client, &Request::Shutdown, &mut latencies)?;
        }
        _ => usage(),
    }
    let retry = client.retry_stats();
    if retry.retries > 0 || retry.failovers > 0 {
        eprintln!(
            "pwcet-client: attempts={} retries={} failovers={}",
            retry.attempts, retry.retries, retry.failovers
        );
    }
    Ok(if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) | Err(code) => code,
    }
}
