//! The long-lived analysis server.
//!
//! ```text
//!                        ┌───────────────────────────────────────────┐
//!  TCP accept loop ────▶ │ connection threads (frame decode/encode)  │
//!                        └───────┬───────────────────────────────────┘
//!                                │ submit(key = content fingerprint)
//!                        ┌───────▼───────────────────────────────────┐
//!                        │ ShardPool: key % N shards, one worker and │
//!                        │ a bounded queue each (overload ⇒ refusal) │
//!                        └───────┬───────────────────────────────────┘
//!                                │ analyze_compiled_traced
//!                        ┌───────▼───────────────────────────────────┐
//!                        │ shared Arc<ReusePlane>: memory / disk /   │
//!                        │ derivation tiers + write-through persist  │
//!                        └───────────────────────────────────────────┘
//! ```
//!
//! **Shard hashing rule**: analysis work is routed by
//! [`ContextCache::key_of`] — the content fingerprint of the compiled
//! image, CFG metadata, cache geometry, and classification mode (for
//! geometry sweeps, the widest requested geometry). Identical programs
//! therefore always land on the same single-worker shard and are
//! serialized: the first request runs the cold fixpoint, every queued
//! duplicate is answered from the plane's memory tier. Distinct programs
//! hash across shards and proceed concurrently, each worker using its
//! slice of the machine's threads for the intra-analysis fan-out.
//!
//! **Backpressure**: queues are bounded; a submission to a full shard is
//! answered immediately with [`ErrorCode::Overloaded`] (connection stays
//! open — retry later) instead of queueing unboundedly or blocking the
//! accept path.
//!
//! **Shutdown** drains: after [`Request::Shutdown`] (or
//! [`Server::shutdown`]) no new work is accepted, every queued job still
//! runs to completion and its response is delivered, then workers,
//! connections, and the accept loop are joined and the reuse plane is
//! flushed to its disk tier.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pwcet_cache::GeometryLattice;
use pwcet_core::{
    AnalysisConfig, ContextCache, NetworkTier, Parallelism, ProgramAnalysis, Protection,
    PwcetAnalyzer, ReusePlane, ReuseTier,
};
use pwcet_obs::{
    trace_scope, Counter, Histogram, Registry, SpanRecord, Stage, TraceId, Tracer,
    DEFAULT_RING_CAPACITY,
};
use pwcet_progen::{CompiledProgram, Program};

use crate::peer::{FleetConfig, PeerFleet};
use crate::protocol::{
    self, AnalysisRow, ErrorCode, GeometryRow, PfailRow, ProtocolError, Request, Response,
    ServiceStats, StageTiming, WireError,
};
use crate::shard::{ShardPool, SubmitError};

/// Default bound on how long a started frame may take to arrive
/// completely before the connection is dropped — keeps a stalled or
/// malicious half-frame from pinning a connection thread forever.
/// Configurable per server via [`ServerConfig::frame_deadline`]; the
/// client's [`ClientConfig`](crate::ClientConfig) defaults mirror it.
pub const FRAME_DEADLINE: Duration = Duration::from_secs(30);

/// Service-side bounds on sweep requests (a request beyond them is
/// refused as invalid, not attempted).
const MAX_SWEEP_POINTS: usize = 64;
const MAX_WAYS: u32 = 64;
const MAX_SETS: u32 = 4096;
const MAX_BLOCK_BYTES: u32 = 1024;
const MAX_BATCH_PROGRAMS: usize = 256;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The analysis configuration every request runs under (requests
    /// override the fault model per call; geometry sweeps override the
    /// geometry).
    pub analysis: AnalysisConfig,
    /// Worker shard count; `0` picks `min(available cores, 4)`.
    pub shards: usize,
    /// Bounded queue capacity per shard.
    pub queue_capacity: usize,
    /// Disk tier directory of the reuse plane; `None` keeps the plane
    /// memory-only (no cross-restart warmth).
    pub disk_dir: Option<PathBuf>,
    /// Poll interval of the accept loop and idle connections — bounds
    /// how fast a shutdown is observed.
    pub poll: Duration,
    /// Bound on how long a started frame may take to arrive completely
    /// before the connection is dropped ([`FRAME_DEADLINE`] by default;
    /// liveness tests shrink it to exercise the cutoff quickly).
    pub frame_deadline: Duration,
    /// Fleet membership for the reuse plane's network tier; `None` (or
    /// an empty peer list) runs single-node.
    pub fleet: Option<FleetConfig>,
    /// Append-only JSONL span sink (`--trace-out`); every completed
    /// stage span becomes one line, and the drained server's final
    /// metrics table is appended as a last `"final_metrics"` record.
    /// `None` keeps spans in the in-memory ring only.
    pub trace_out: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            analysis: AnalysisConfig::paper_default(),
            shards: 0,
            queue_capacity: 64,
            disk_dir: None,
            poll: Duration::from_millis(25),
            frame_deadline: FRAME_DEADLINE,
            fleet: None,
            trace_out: None,
        }
    }
}

impl ServerConfig {
    /// The same configuration with a disk-backed reuse plane rooted at
    /// `dir` — a restarted server then answers from the disk tier.
    #[must_use]
    pub fn with_disk_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.disk_dir = Some(dir.into());
        self
    }

    fn effective_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4)
    }
}

/// What the shard workers execute.
enum Work {
    Analyze {
        compiled: CompiledProgram,
        pfail: f64,
        target_p: f64,
    },
    SweepPfail {
        compiled: CompiledProgram,
        pfails: Vec<f64>,
        target_p: f64,
    },
    SweepGeometry {
        compiled: CompiledProgram,
        lattice: GeometryLattice,
        target_p: f64,
    },
}

/// A worker's answer, before the connection thread wraps it in a
/// [`Response`] with the request latency.
enum Outcome {
    Row(AnalysisRow),
    Pfail {
        name: String,
        served_from: ReuseTier,
        rows: Vec<PfailRow>,
    },
    Geometry {
        name: String,
        served_from: ReuseTier,
        rows: Vec<GeometryRow>,
    },
}

/// What a shard worker sends back: the outcome plus the `(stage,
/// dur_us)` spans its trace scope collected (queue wait and service
/// time included), from which the connection thread builds the
/// response's stage-timing breakdown.
type Reply = (Result<Outcome, String>, Vec<(Stage, u64)>);

struct Job {
    work: Work,
    /// Client-minted trace ID carried from the request frame.
    trace: TraceId,
    /// When the connection thread enqueued the job — the worker turns
    /// this into the `queue_wait` span and histogram sample.
    submitted: Instant,
    reply: mpsc::Sender<Reply>,
}

/// The server's telemetry plane: the span collector shared with every
/// layer below (core pipeline, reuse plane, peer fleet) plus the
/// metrics registry with the hot-path instruments resolved once.
struct Telemetry {
    tracer: Arc<Tracer>,
    registry: Registry,
    requests: Arc<Counter>,
    request_latency_us: Arc<Histogram>,
    queue_wait_us: Arc<Histogram>,
    service_us: Arc<Histogram>,
    /// Analysis jobs whose worker panicked and was caught — the job
    /// answers an error response and the shard keeps serving.
    worker_panics: Arc<Counter>,
    /// Responses whose frame write failed (peer gone, kernel buffer
    /// stalled past the deadline, or an injected disconnect) — the
    /// work was done but the answer never made it out.
    response_write_failures: Arc<Counter>,
}

impl Telemetry {
    fn new(trace_out: Option<&PathBuf>) -> std::io::Result<Self> {
        let tracer = Arc::new(match trace_out {
            Some(path) => Tracer::with_sink(DEFAULT_RING_CAPACITY, path)?,
            None => Tracer::new(DEFAULT_RING_CAPACITY),
        });
        let registry = Registry::new();
        let requests = registry.counter("requests");
        let request_latency_us = registry.histogram("request_latency_us");
        let queue_wait_us = registry.histogram("queue_wait_us");
        let service_us = registry.histogram("service_us");
        let worker_panics = registry.counter("worker_panics");
        let response_write_failures = registry.counter("response_write_failures");
        Ok(Self {
            tracer,
            registry,
            requests,
            request_latency_us,
            queue_wait_us,
            service_us,
            worker_panics,
            response_write_failures,
        })
    }

    /// Records a span that was timed outside any [`trace_scope`] (queue
    /// wait, worker service time, peer serves) straight into the ring
    /// and sink.
    fn record_span(&self, trace: TraceId, stage: Stage, dur_us: u64) {
        self.tracer.record(SpanRecord {
            trace,
            stage,
            start_us: self.tracer.now_us().saturating_sub(dur_us),
            dur_us,
        });
        // `service` and `peer_serve` are the last spans of their
        // request, so flushing here keeps the JSONL sink live — a
        // tailing reader sees each request's spans as it completes
        // rather than at drain.
        self.tracer.flush();
    }
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    served: AtomicU64,
    overloads: AtomicU64,
    protocol_errors: AtomicU64,
    served_memory: AtomicU64,
    served_disk: AtomicU64,
    served_derived: AtomicU64,
    served_network: AtomicU64,
    served_cold: AtomicU64,
    peer_fetches_served: AtomicU64,
    peer_offers_stored: AtomicU64,
}

impl Counters {
    fn count_tier(&self, tier: ReuseTier) {
        let counter = match tier {
            ReuseTier::Memory => &self.served_memory,
            ReuseTier::Disk => &self.served_disk,
            ReuseTier::Derived => &self.served_derived,
            ReuseTier::Network => &self.served_network,
            ReuseTier::Cold => &self.served_cold,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Everything a shard worker touches: the shared plane, the per-shard
/// analysis configuration, and the service counters.
struct Engine {
    plane: Arc<ReusePlane>,
    config: AnalysisConfig,
    counters: Arc<Counters>,
}

impl Engine {
    fn analyzer(&self, config: AnalysisConfig) -> PwcetAnalyzer {
        PwcetAnalyzer::new(config).with_reuse_plane(Arc::clone(&self.plane))
    }

    fn execute(&self, work: Work) -> Result<Outcome, String> {
        match work {
            Work::Analyze {
                compiled,
                pfail,
                target_p,
            } => {
                let config = self.config.with_pfail(pfail).map_err(|e| e.to_string())?;
                let (analysis, tier) = self
                    .analyzer(config)
                    .analyze_compiled_traced(&compiled)
                    .map_err(|e| e.to_string())?;
                self.counters.count_tier(tier);
                Ok(Outcome::Row(row_of(&analysis, tier, target_p)))
            }
            Work::SweepPfail {
                compiled,
                pfails,
                target_p,
            } => {
                let mut rows = Vec::with_capacity(pfails.len());
                let mut served = None;
                for pfail in pfails {
                    let config = self.config.with_pfail(pfail).map_err(|e| e.to_string())?;
                    let (analysis, tier) = self
                        .analyzer(config)
                        .analyze_compiled_traced(&compiled)
                        .map_err(|e| e.to_string())?;
                    served.get_or_insert(tier);
                    rows.push(PfailRow {
                        pfail,
                        pwcet_none: pwcet_at(&analysis, Protection::None, target_p),
                        pwcet_srb: pwcet_at(&analysis, Protection::SharedReliableBuffer, target_p),
                        pwcet_rw: pwcet_at(&analysis, Protection::ReliableWay, target_p),
                    });
                }
                let served_from = served.expect("sweeps are validated non-empty");
                self.counters.count_tier(served_from);
                Ok(Outcome::Pfail {
                    name: compiled.name().to_string(),
                    served_from,
                    rows,
                })
            }
            Work::SweepGeometry {
                compiled,
                lattice,
                target_p,
            } => {
                let mut rows = Vec::with_capacity(lattice.len());
                let mut served = None;
                for geometry in lattice.members() {
                    let mut config = self.config;
                    config.geometry = geometry;
                    let (analysis, tier) = self
                        .analyzer(config)
                        .analyze_compiled_traced(&compiled)
                        .map_err(|e| e.to_string())?;
                    served.get_or_insert(tier);
                    rows.push(GeometryRow {
                        ways: geometry.ways(),
                        pwcet_none: pwcet_at(&analysis, Protection::None, target_p),
                        pwcet_srb: pwcet_at(&analysis, Protection::SharedReliableBuffer, target_p),
                        pwcet_rw: pwcet_at(&analysis, Protection::ReliableWay, target_p),
                    });
                }
                let served_from = served.expect("lattices are validated non-empty");
                self.counters.count_tier(served_from);
                Ok(Outcome::Geometry {
                    name: compiled.name().to_string(),
                    served_from,
                    rows,
                })
            }
        }
    }
}

fn pwcet_at(analysis: &ProgramAnalysis, protection: Protection, target_p: f64) -> u64 {
    analysis.estimate(protection).pwcet_at(target_p)
}

fn row_of(analysis: &ProgramAnalysis, tier: ReuseTier, target_p: f64) -> AnalysisRow {
    AnalysisRow {
        name: analysis.name().to_string(),
        fault_free_wcet: analysis.fault_free_wcet(),
        pwcet_none: pwcet_at(analysis, Protection::None, target_p),
        pwcet_srb: pwcet_at(analysis, Protection::SharedReliableBuffer, target_p),
        pwcet_rw: pwcet_at(analysis, Protection::ReliableWay, target_p),
        served_from: tier,
    }
}

struct Shared {
    pool: ShardPool<Job>,
    engine: Arc<Engine>,
    stop: AtomicBool,
    counters: Arc<Counters>,
    connections: Mutex<Vec<JoinHandle<()>>>,
    poll: Duration,
    queue_capacity: usize,
    deadline: Duration,
    fleet: Option<Arc<PeerFleet>>,
    telemetry: Arc<Telemetry>,
}

impl Shared {
    fn stats(&self) -> ServiceStats {
        let plane = self.engine.plane.stats();
        let ilp = self.engine.plane.ilp_stats();
        let kernel = self.engine.plane.kernel_stats();
        ServiceStats {
            shards: self.pool.shard_count() as u32,
            queue_capacity: self.queue_capacity as u32,
            queued: self.pool.queued() as u64,
            connections: self.counters.connections.load(Ordering::Relaxed),
            served: self.counters.served.load(Ordering::Relaxed),
            overloads: self.counters.overloads.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            served_memory: self.counters.served_memory.load(Ordering::Relaxed),
            served_disk: self.counters.served_disk.load(Ordering::Relaxed),
            served_derived: self.counters.served_derived.load(Ordering::Relaxed),
            served_network: self.counters.served_network.load(Ordering::Relaxed),
            served_cold: self.counters.served_cold.load(Ordering::Relaxed),
            memory_hits: plane.memory.hits,
            memory_misses: plane.memory.misses,
            disk_hits: plane.disk_hits,
            disk_writes: plane.disk_writes,
            disk_corrupt: plane.disk_corrupt,
            derived: plane.derived,
            cold_builds: plane.cold_builds,
            network_hits: plane.network_hits,
            network_misses: plane.network_misses,
            network_corrupt: plane.network_corrupt,
            network_offers: plane.network_offers,
            peer_fetches_served: self.counters.peer_fetches_served.load(Ordering::Relaxed),
            peer_offers_stored: self.counters.peer_offers_stored.load(Ordering::Relaxed),
            peers: self.fleet.as_ref().map_or(0, |f| f.peer_count() as u32),
            peers_unhealthy: self
                .fleet
                .as_ref()
                .map_or(0, |f| f.unhealthy_count() as u32),
            ilp_pivots: ilp.pivots,
            ilp_dual_pivots: ilp.dual_pivots,
            ilp_bb_nodes: ilp.bb_nodes,
            ilp_warm_starts: ilp.warm_starts,
            ilp_trivial_prunes: ilp.trivial_prunes,
            ilp_cold_starts: ilp.cold_starts,
            template_hits: plane.template_hits,
            basis_restores: plane.basis_restores,
            basis_rejects: plane.basis_rejects,
            classify_passes: kernel.passes,
            classify_words_touched: kernel.words_touched,
            classify_sets_skipped: kernel.sets_skipped,
            store_bytes: self.engine.plane.disk_store_bytes().unwrap_or(0),
        }
    }

    /// The full self-describing metrics table answered by
    /// [`Request::Metrics`]: every legacy [`ServiceStats`] counter by
    /// its frozen name, the lower layers' own `entries()` enumerations
    /// (which may grow without protocol changes), tracer health, and
    /// the registry's instruments — histograms expanded to exact
    /// `_count/_sum/_mean/_p50/_p95/_p99/_max` rows.
    fn metrics_table(&self) -> Vec<(String, u64)> {
        let mut table: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for (name, value) in self.stats().entries() {
            table.insert(name.to_string(), value);
        }
        // Lower-layer enumerators: overlapping names carry the same
        // values as the legacy rows (both read the same counters);
        // names only they know (eviction counts, bound flips, template
        // builds…) are the growth path.
        for (name, value) in self.engine.plane.stats().entries() {
            table.insert(name.to_string(), value);
        }
        for (name, value) in self.engine.plane.ilp_stats().entries() {
            table.insert(format!("ilp_{name}"), value);
        }
        for (name, value) in self.engine.plane.kernel_stats().entries() {
            table.insert(format!("classify_{name}"), value);
        }
        for (name, value) in self.engine.plane.template_registry().counters().entries() {
            table.insert(name.to_string(), value);
        }
        table.insert(
            "trace_spans_dropped".to_string(),
            self.telemetry.tracer.dropped(),
        );
        for (name, value) in self.telemetry.registry.snapshot().table() {
            table.insert(name, value);
        }
        // Fleet transport counters under a `fleet_` prefix — the legacy
        // stats rows carry hits/misses/corrupt, these add the failure
        // half (errors, failed and dropped offers) the chaos suite
        // reconciles injected peer faults against.
        if let Some(fleet) = &self.fleet {
            let fleet_stats = fleet.stats();
            for (name, value) in [
                ("fleet_fetch_hits", fleet_stats.fetch_hits),
                ("fleet_fetch_misses", fleet_stats.fetch_misses),
                ("fleet_fetch_errors", fleet_stats.fetch_errors),
                ("fleet_offers_sent", fleet_stats.offers_sent),
                ("fleet_offers_failed", fleet_stats.offers_failed),
                ("fleet_offers_dropped", fleet_stats.offers_dropped),
            ] {
                table.insert(name.to_string(), value);
            }
        }
        // The active fault plan's per-point fired counters
        // (`chaos_fired_*`), so chaos tests reconcile injected faults
        // against the degradation counters above over one scrape.
        #[cfg(feature = "chaos")]
        if let Some(plan) = pwcet_chaos::active() {
            for (name, value) in plan.entries() {
                table.insert(name, value);
            }
        }
        table.into_iter().collect()
    }
}

/// A running analysis server. Dropping it performs the same graceful
/// drain as [`shutdown`](Self::shutdown) (minus the returned stats), so
/// an early-return error path never leaks the accept thread or the
/// bound port.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections.
    ///
    /// # Errors
    ///
    /// Propagates socket-bind and disk-tier-creation failures.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Self> {
        // The accept loop blocks (zero accept latency — a sleep-polled
        // loop taxed every new connection, and the fleet's peer fetches
        // with it); `drain_and_join` wakes it with a dummy connection.
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;

        let plane = match &config.disk_dir {
            Some(dir) if dir.as_os_str().is_empty() => {
                // An empty path "succeeds" at create_dir_all and then
                // scatters store files into the CWD — refuse it instead
                // (the classic cause is an unset shell variable).
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "disk tier directory must not be empty",
                ));
            }
            Some(dir) => Arc::new(ReusePlane::in_memory().with_disk_tier(dir)?),
            None => Arc::new(ReusePlane::in_memory()),
        };
        let shards = config.effective_shards();
        // Each shard's worker gets an equal slice of the machine for the
        // intra-analysis fan-out; an explicit (non-Auto) parallelism in
        // the analysis config is honored as-is.
        let mut shard_analysis = config.analysis;
        if shard_analysis.parallelism == Parallelism::Auto {
            let total = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            shard_analysis.parallelism = Parallelism::threads((total / shards).max(1));
        }
        let counters = Arc::new(Counters::default());
        let telemetry = Arc::new(Telemetry::new(config.trace_out.as_ref())?);
        let engine = Arc::new(Engine {
            plane,
            config: shard_analysis,
            counters: Arc::clone(&counters),
        });
        let worker_engine = Arc::clone(&engine);
        let worker_counters = Arc::clone(&counters);
        let worker_telemetry = Arc::clone(&telemetry);
        let pool = ShardPool::new(shards, config.queue_capacity, move |_, job: Job| {
            let Job {
                work,
                trace,
                submitted,
                reply,
            } = job;
            // Queue wait ends the moment the worker picks the job up;
            // it is disjoint from every span the trace scope collects.
            let queue_us = submitted.elapsed().as_micros() as u64;
            worker_telemetry.queue_wait_us.record(queue_us);
            worker_telemetry.record_span(trace, Stage::QueueWait, queue_us);
            let service_started = Instant::now();
            // The scope collects the pipeline's stage spans (classify,
            // ILP, convolution, decode, peer fetch) recorded on this
            // thread and arms `current_trace()` for the peer layer.
            let (result, mut spans) = trace_scope(&worker_telemetry.tracer, trace, || {
                catch_unwind(AssertUnwindSafe(|| {
                    // Chaos shard fault: blow up inside the job exactly
                    // where a pipeline bug would, upstream of the
                    // catch_unwind recovery below.
                    #[cfg(feature = "chaos")]
                    if pwcet_chaos::should_fire(pwcet_chaos::FaultPoint::ShardPanic) {
                        panic!("chaos: injected shard panic");
                    }
                    worker_engine.execute(work)
                }))
                .unwrap_or_else(|_| {
                    worker_telemetry.worker_panics.inc();
                    Err("internal panic during analysis".to_string())
                })
            });
            let service_us = service_started.elapsed().as_micros() as u64;
            worker_telemetry.service_us.record(service_us);
            worker_telemetry.record_span(trace, Stage::Service, service_us);
            spans.insert(0, (Stage::QueueWait, queue_us));
            spans.push((Stage::Service, service_us));
            worker_counters.served.fetch_add(1, Ordering::Relaxed);
            // The requester may have given up (connection died); a failed
            // send is not an error.
            let _ = reply.send((result, spans));
        });

        // The fleet is attached after the plane exists (it needs the
        // plane only implicitly, through offers enqueued by persists)
        // and before any connection can run, so every request sees the
        // network tier or none do.
        let fleet = match &config.fleet {
            Some(fleet_config) if fleet_config.has_peers() => {
                let fleet = Arc::new(PeerFleet::start(fleet_config.clone()));
                engine
                    .plane
                    .set_network_tier(Arc::clone(&fleet) as Arc<dyn NetworkTier>);
                Some(fleet)
            }
            _ => None,
        };

        let shared = Arc::new(Shared {
            pool,
            engine,
            stop: AtomicBool::new(false),
            counters,
            connections: Mutex::new(Vec::new()),
            poll: config.poll,
            queue_capacity: config.queue_capacity,
            deadline: config.frame_deadline,
            fleet,
            telemetry,
        });

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(Self {
            shared,
            accept: Some(accept),
            addr,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared reuse plane behind all shards.
    pub fn reuse_plane(&self) -> &Arc<ReusePlane> {
        &self.shared.engine.plane
    }

    /// Current service counters (what [`Request::Stats`] answers).
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// The full self-describing metrics table (what [`Request::Metrics`]
    /// answers): legacy counters by their frozen names plus every
    /// registry instrument, histograms expanded to exact quantile rows.
    pub fn metrics_table(&self) -> Vec<(String, u64)> {
        self.shared.metrics_table()
    }

    /// The span collector: ring snapshots for tests and tooling.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.shared.telemetry.tracer
    }

    /// Whether a shutdown was requested (locally or by a client).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.stop.load(Ordering::Relaxed)
    }

    /// Blocks until some client sends [`Request::Shutdown`] (or
    /// [`request_shutdown`](Self::request_shutdown) is called), polling
    /// at the configured interval.
    pub fn wait_for_shutdown_request(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(self.shared.poll);
        }
    }

    /// Marks the server as draining without blocking (what a client's
    /// [`Request::Shutdown`] does). Call [`shutdown`](Self::shutdown) to
    /// actually drain and join.
    pub fn request_shutdown(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
    }

    /// Gracefully stops the server: no new connections or submissions,
    /// every queued job drains and answers, then all threads are joined
    /// and the reuse plane is flushed through to its disk tier. Returns
    /// the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.drain_and_join();
        self.shared.stats()
    }

    /// The drain sequence shared by [`shutdown`](Self::shutdown) and
    /// drop; idempotent (the taken accept handle gates the
    /// once-per-server steps).
    fn drain_and_join(&mut self) {
        self.request_shutdown();
        let first_drain = self.accept.is_some();
        if let Some(accept) = self.accept.take() {
            // Wake the blocking accept so it observes the stop flag.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
            let _ = accept.join();
        }
        // Join connections while the workers are still alive, so every
        // already-submitted job still gets its reply delivered.
        let connections = std::mem::take(&mut *self.shared.connections.lock().expect("conn list"));
        for connection in connections {
            let _ = connection.join();
        }
        self.shared.pool.shutdown();
        // Flush before the fleet stops: the flush's persists may enqueue
        // final offers, and the fleet drains its offer queue on shutdown.
        self.shared.engine.plane.flush();
        if let Some(fleet) = &self.shared.fleet {
            fleet.shutdown();
        }
        if first_drain {
            // The final table survives the process: one JSONL record in
            // the span sink (when configured) and a log line, not only
            // the value returned to whoever called `shutdown`.
            let table = self.shared.metrics_table();
            let mut json = String::from("{\"record\":\"final_metrics\"");
            for (name, value) in &table {
                use std::fmt::Write as _;
                let _ = write!(json, ",\"{name}\":{value}");
            }
            json.push('}');
            self.shared.telemetry.tracer.sink_line(&json);
            self.shared.telemetry.tracer.flush();
            let stats = self.shared.stats();
            eprintln!(
                "pwcet-serve: drained; served={} overloads={} protocol_errors={} \
                 cold_builds={} store_bytes={}",
                stats.served,
                stats.overloads,
                stats.protocol_errors,
                stats.cold_builds,
                stats.store_bytes
            );
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain_and_join();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // A connection arriving during the drain (including the
                // wake-up dummy from `drain_and_join`) is dropped, same
                // as a refused submission.
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || serve_connection(stream, &conn_shared));
                let mut connections = shared.connections.lock().expect("conn list");
                // Reap finished handles so a long-lived server does not
                // accumulate one join handle per past connection.
                connections.retain(|h| !h.is_finished());
                connections.push(handle);
            }
            Err(_) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(shared.poll);
            }
        }
    }
}

/// What one polled frame read produced.
enum PolledRead {
    /// A complete, checksum-verified payload.
    Payload(Vec<u8>),
    /// The peer closed cleanly between frames.
    CleanEof,
    /// The server is draining; no (complete) frame will follow.
    Stopped,
}

fn is_poll_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one frame with a poll-based timeout so the connection notices a
/// server shutdown, a half-frame stall, or a mid-frame disconnect
/// without ever hanging.
///
/// The deadline is checked on the successful-read path too, not only
/// when a poll times out: a slow-loris client dripping one byte per
/// poll interval keeps every `read` returning `Ok(1)` and would
/// otherwise never hit the timeout arm, pinning the connection thread
/// for as long as it cares to drip.
fn read_frame_polled(stream: &mut TcpStream, shared: &Shared) -> Result<PolledRead, WireError> {
    let mut header = [0u8; protocol::HEADER_LEN];
    let mut filled = 0usize;
    let mut deadline: Option<Instant> = None;
    while filled < protocol::HEADER_LEN {
        match stream.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(PolledRead::CleanEof),
            Ok(0) => return Err(ProtocolError::Truncated.into()),
            Ok(n) => {
                filled += n;
                let deadline = *deadline.get_or_insert_with(|| Instant::now() + shared.deadline);
                if filled < protocol::HEADER_LEN && Instant::now() > deadline {
                    return Err(ProtocolError::Truncated.into());
                }
            }
            Err(e) if is_poll_timeout(&e) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return Ok(PolledRead::Stopped);
                }
                if deadline.is_some_and(|d| Instant::now() > d) {
                    return Err(ProtocolError::Truncated.into());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    // Chaos wire fault: the stream tears after the header — exactly
    // what a peer dying mid-frame produces (the `Ok(0)` path below).
    // Degrades like any truncation: one counted protocol error, a
    // clean error response, and the connection is dropped.
    #[cfg(feature = "chaos")]
    if pwcet_chaos::should_fire(pwcet_chaos::FaultPoint::WireTornRead) {
        return Err(ProtocolError::Truncated.into());
    }
    let (payload_len, sum) = protocol::parse_header(&header)?;
    let mut payload = vec![0u8; payload_len as usize];
    let mut filled = 0usize;
    let deadline = Instant::now() + shared.deadline;
    while filled < payload.len() {
        match stream.read(&mut payload[filled..]) {
            Ok(0) => return Err(ProtocolError::Truncated.into()),
            Ok(n) => {
                filled += n;
                if filled < payload.len() && Instant::now() > deadline {
                    return Err(ProtocolError::Truncated.into());
                }
            }
            Err(e) if is_poll_timeout(&e) => {
                // Even during a shutdown the started frame gets its
                // deadline; an idle half-frame is cut off either way.
                if Instant::now() > deadline || shared.stop.load(Ordering::Relaxed) {
                    return Err(ProtocolError::Truncated.into());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    protocol::verify_payload(&payload, sum)?;
    Ok(PolledRead::Payload(payload))
}

fn respond(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    // Chaos wire faults on the write side: a delayed response (latency
    // fault — the client's read timeout and retry policy absorb it) or
    // a connection dropped before the response bytes go out (the
    // requester must fail over / retry; counted by the caller as a
    // response write failure).
    #[cfg(feature = "chaos")]
    {
        use pwcet_chaos::FaultPoint;
        if let Some(entropy) = pwcet_chaos::roll(FaultPoint::WireDelayedWrite) {
            std::thread::sleep(Duration::from_millis(5 + entropy % 45));
        }
        if pwcet_chaos::should_fire(FaultPoint::WireDisconnect) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "chaos: injected mid-response disconnect",
            ));
        }
    }
    protocol::write_frame(stream, &protocol::encode_response(response))
}

fn error_response(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
        retry_after_ms: None,
    }
}

/// How long an `Overloaded` refusal tells the client to back off: a
/// rough drain estimate from the refusing shard's queue depth, floored
/// so a hint is never zero and capped so a deep queue cannot park
/// clients for ages. Carried as the structured `retry_after_ms` field
/// of the v7 error payload.
fn retry_after_hint(depth: usize) -> u64 {
    (depth as u64).saturating_mul(50).clamp(50, 5_000)
}

fn overloaded_response(message: impl Into<String>, depth: usize) -> Response {
    Response::Error {
        code: ErrorCode::Overloaded,
        message: message.into(),
        retry_after_ms: Some(retry_after_hint(depth)),
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    if stream.set_read_timeout(Some(shared.poll)).is_err() {
        return;
    }
    // Writes need a deadline too: a client that stops *reading* would
    // otherwise block this thread in `respond` once the kernel send
    // buffer fills, and a blocked writer would hang the draining
    // shutdown's connection join. A write that stalls past the frame
    // deadline errors out and drops the connection instead.
    if stream.set_write_timeout(Some(shared.deadline)).is_err() {
        return;
    }
    loop {
        match read_frame_polled(&mut stream, shared) {
            Ok(PolledRead::Payload(payload)) => {
                let request = match protocol::decode_request_payload(&payload) {
                    Ok(request) => request,
                    Err(e) => {
                        shared
                            .counters
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        let _ = respond(
                            &mut stream,
                            &error_response(ErrorCode::Malformed, e.to_string()),
                        );
                        return;
                    }
                };
                match dispatch(&mut stream, shared, request) {
                    Ok(true) => {}
                    Ok(false) => return,
                    Err(_) => {
                        // The response could not be written — the peer
                        // is gone or the write stalled out. The work
                        // (if any) already ran; only delivery failed.
                        shared.telemetry.response_write_failures.inc();
                        return;
                    }
                }
            }
            Ok(PolledRead::CleanEof) | Ok(PolledRead::Stopped) => return,
            Err(WireError::Protocol(e)) => {
                // Bad magic, version skew, oversized prefix, checksum
                // mismatch, truncation: answer once, then drop the
                // connection — resynchronizing a corrupt stream is not
                // worth guessing at frame boundaries.
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = respond(
                    &mut stream,
                    &error_response(ErrorCode::Malformed, e.to_string()),
                );
                return;
            }
            // `read_frame_polled` reports stalls as `Truncated`;
            // `Timeout` is the client-side classification and cannot
            // reach here, but the drop is right for it regardless.
            Err(WireError::Io(_)) | Err(WireError::Timeout) => return,
        }
    }
}

/// Compiles a submitted program, mapping failures to an invalid-request
/// response.
fn compile(program: &Program, config: &AnalysisConfig) -> Result<CompiledProgram, Box<Response>> {
    program.compile(config.code_base).map_err(|e| {
        Box::new(error_response(
            ErrorCode::InvalidRequest,
            format!("program {:?} does not build: {e}", program.name()),
        ))
    })
}

fn validate_probability(value: f64, what: &str) -> Result<(), Box<Response>> {
    if !(value.is_finite() && 0.0 < value && value <= 1.0) {
        return Err(Box::new(error_response(
            ErrorCode::InvalidRequest,
            format!("{what} must be a probability in (0, 1], got {value}"),
        )));
    }
    Ok(())
}

fn validate_pfail(value: f64) -> Result<(), Box<Response>> {
    if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
        return Err(Box::new(error_response(
            ErrorCode::InvalidRequest,
            format!("pfail must be a probability in [0, 1], got {value}"),
        )));
    }
    Ok(())
}

/// Runs one decoded request to completion, writing exactly one response.
/// Returns whether the connection should stay open.
fn dispatch(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    request: Request,
) -> std::io::Result<bool> {
    let started = Instant::now();
    match request {
        Request::Stats => {
            respond(stream, &Response::Stats(Box::new(shared.stats())))?;
            Ok(true)
        }
        Request::Metrics => {
            respond(
                stream,
                &Response::Metrics {
                    entries: shared.metrics_table(),
                },
            )?;
            Ok(true)
        }
        Request::Shutdown => {
            shared.stop.store(true, Ordering::Relaxed);
            respond(stream, &Response::ShutdownStarted)?;
            Ok(false)
        }
        // Fleet verbs are answered inline on the connection thread —
        // never through the shards (they carry no analysis work) and
        // never by fetching from *our* peers in turn (export/import only
        // touch local tiers), so two nodes fetching from each other can
        // not deadlock or loop.
        Request::FetchEntry { key, trace } => {
            // The serving side of a peer hop: the export is recorded as
            // a `peer_serve` span under the *requester's* trace, so one
            // trace ID stitches both nodes' rings together.
            let entry = shared.engine.plane.export_entry(key);
            shared.telemetry.record_span(
                TraceId(trace),
                Stage::PeerServe,
                started.elapsed().as_micros() as u64,
            );
            if entry.is_some() {
                shared
                    .counters
                    .peer_fetches_served
                    .fetch_add(1, Ordering::Relaxed);
            }
            respond(stream, &Response::Entry { key, entry })?;
            Ok(true)
        }
        Request::OfferEntry { key, entry } => {
            let stored = shared.engine.plane.import_entry(key, entry);
            if stored {
                shared
                    .counters
                    .peer_offers_stored
                    .fetch_add(1, Ordering::Relaxed);
            }
            respond(stream, &Response::OfferAck { stored })?;
            Ok(true)
        }
        Request::Analyze {
            program,
            pfail,
            target_p,
            trace,
        } => {
            let work = match prepare_analyze(shared, &program, pfail, target_p) {
                Ok(work) => work,
                Err(response) => {
                    respond(stream, &response)?;
                    return Ok(true);
                }
            };
            let response = run_job(shared, work, TraceId(trace), started);
            respond(stream, &response)?;
            Ok(true)
        }
        Request::Batch {
            programs,
            pfail,
            target_p,
            trace,
        } => {
            let response = run_batch(shared, &programs, pfail, target_p, TraceId(trace), started);
            respond(stream, &response)?;
            Ok(true)
        }
        Request::SweepPfail {
            program,
            pfails,
            target_p,
            trace,
        } => {
            let work = match prepare_pfail_sweep(shared, &program, pfails, target_p) {
                Ok(work) => work,
                Err(response) => {
                    respond(stream, &response)?;
                    return Ok(true);
                }
            };
            let response = run_job(shared, work, TraceId(trace), started);
            respond(stream, &response)?;
            Ok(true)
        }
        Request::SweepGeometry {
            program,
            sets,
            block_bytes,
            way_counts,
            target_p,
            trace,
        } => {
            let work = match prepare_geometry_sweep(
                shared,
                &program,
                sets,
                block_bytes,
                &way_counts,
                target_p,
            ) {
                Ok(work) => work,
                Err(response) => {
                    respond(stream, &response)?;
                    return Ok(true);
                }
            };
            let response = run_job(shared, work, TraceId(trace), started);
            respond(stream, &response)?;
            Ok(true)
        }
    }
}

/// Collapses a scope's span list into the wire breakdown: one
/// [`StageTiming`] per stage in tag order, durations summed and
/// occurrences counted.
fn aggregate_stages(spans: &[(Stage, u64)]) -> Vec<StageTiming> {
    let mut timings: Vec<StageTiming> = Vec::new();
    for stage in Stage::ALL {
        let mut micros = 0u64;
        let mut count = 0u32;
        for &(s, dur) in spans {
            if s == stage {
                micros = micros.saturating_add(dur);
                count += 1;
            }
        }
        if count > 0 {
            timings.push(StageTiming {
                stage,
                micros,
                count,
            });
        }
    }
    timings
}

fn prepare_analyze(
    shared: &Shared,
    program: &Program,
    pfail: f64,
    target_p: f64,
) -> Result<(u64, Work), Box<Response>> {
    validate_pfail(pfail)?;
    validate_probability(target_p, "target_p")?;
    let config = &shared.engine.config;
    let compiled = compile(program, config)?;
    let key = ContextCache::key_of(&compiled, config.geometry, config.classification);
    Ok((
        key,
        Work::Analyze {
            compiled,
            pfail,
            target_p,
        },
    ))
}

fn prepare_pfail_sweep(
    shared: &Shared,
    program: &Program,
    pfails: Vec<f64>,
    target_p: f64,
) -> Result<(u64, Work), Box<Response>> {
    if pfails.is_empty() || pfails.len() > MAX_SWEEP_POINTS {
        return Err(Box::new(error_response(
            ErrorCode::InvalidRequest,
            format!(
                "sweep needs 1..={MAX_SWEEP_POINTS} pfail points, got {}",
                pfails.len()
            ),
        )));
    }
    for &pfail in &pfails {
        validate_pfail(pfail)?;
    }
    validate_probability(target_p, "target_p")?;
    let config = &shared.engine.config;
    let compiled = compile(program, config)?;
    let key = ContextCache::key_of(&compiled, config.geometry, config.classification);
    Ok((
        key,
        Work::SweepPfail {
            compiled,
            pfails,
            target_p,
        },
    ))
}

fn prepare_geometry_sweep(
    shared: &Shared,
    program: &Program,
    sets: u32,
    block_bytes: u32,
    way_counts: &[u32],
    target_p: f64,
) -> Result<(u64, Work), Box<Response>> {
    validate_probability(target_p, "target_p")?;
    if way_counts.is_empty() || way_counts.len() > MAX_SWEEP_POINTS {
        return Err(Box::new(error_response(
            ErrorCode::InvalidRequest,
            format!(
                "sweep needs 1..={MAX_SWEEP_POINTS} way counts, got {}",
                way_counts.len()
            ),
        )));
    }
    if !(sets.is_power_of_two() && sets <= MAX_SETS) {
        return Err(Box::new(error_response(
            ErrorCode::InvalidRequest,
            format!("sets must be a power of two ≤ {MAX_SETS}, got {sets}"),
        )));
    }
    if !(block_bytes.is_power_of_two() && (4..=MAX_BLOCK_BYTES).contains(&block_bytes)) {
        return Err(Box::new(error_response(
            ErrorCode::InvalidRequest,
            format!(
                "block_bytes must be a power of two in 4..={MAX_BLOCK_BYTES}, got {block_bytes}"
            ),
        )));
    }
    if way_counts.iter().any(|&w| w == 0 || w > MAX_WAYS) {
        return Err(Box::new(error_response(
            ErrorCode::InvalidRequest,
            format!("way counts must be in 1..={MAX_WAYS}, got {way_counts:?}"),
        )));
    }
    let lattice = GeometryLattice::new(sets, block_bytes, way_counts);
    let config = &shared.engine.config;
    let compiled = compile(program, config)?;
    // Route by the widest requested geometry, so every request over one
    // program-and-lattice family serializes onto one shard.
    let key = ContextCache::key_of(&compiled, lattice.widest(), config.classification);
    Ok((
        key,
        Work::SweepGeometry {
            compiled,
            lattice,
            target_p,
        },
    ))
}

/// Submits one prepared job and blocks for its outcome.
fn run_job(
    shared: &Shared,
    (key, work): (u64, Work),
    trace: TraceId,
    started: Instant,
) -> Response {
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        work,
        trace,
        submitted: Instant::now(),
        reply: reply_tx,
    };
    match shared.pool.submit(key, job) {
        Ok(_) => {}
        Err(SubmitError::Overloaded { shard, depth, .. }) => {
            shared.counters.overloads.fetch_add(1, Ordering::Relaxed);
            return overloaded_response(
                format!("shard {shard} queue full (depth {depth}); retry later"),
                depth,
            );
        }
        Err(SubmitError::ShuttingDown { .. }) => {
            return error_response(ErrorCode::ShuttingDown, "server is draining");
        }
    }
    match reply_rx.recv() {
        Ok((Ok(outcome), spans)) => {
            let micros = started.elapsed().as_micros() as u64;
            shared.telemetry.requests.inc();
            shared.telemetry.request_latency_us.record(micros);
            let trace = trace.0;
            let stages = aggregate_stages(&spans);
            match outcome {
                Outcome::Row(row) => Response::Analysis {
                    row,
                    micros,
                    trace,
                    stages,
                },
                Outcome::Pfail {
                    name,
                    served_from,
                    rows,
                } => Response::PfailSweep {
                    name,
                    served_from,
                    rows,
                    micros,
                    trace,
                    stages,
                },
                Outcome::Geometry {
                    name,
                    served_from,
                    rows,
                } => Response::GeometrySweep {
                    name,
                    served_from,
                    rows,
                    micros,
                    trace,
                    stages,
                },
            }
        }
        Ok((Err(message), _)) => error_response(ErrorCode::Analysis, message),
        Err(_) => error_response(ErrorCode::Analysis, "worker dropped the request"),
    }
}

/// Fans a batch out across the shards (one job per program) and gathers
/// the rows back in request order.
fn run_batch(
    shared: &Shared,
    programs: &[Program],
    pfail: f64,
    target_p: f64,
    trace: TraceId,
    started: Instant,
) -> Response {
    if programs.len() > MAX_BATCH_PROGRAMS {
        return error_response(
            ErrorCode::InvalidRequest,
            format!(
                "batch is capped at {MAX_BATCH_PROGRAMS} programs, got {}",
                programs.len()
            ),
        );
    }
    let mut submissions = Vec::with_capacity(programs.len());
    for program in programs {
        let (key, work) = match prepare_analyze(shared, program, pfail, target_p) {
            Ok(prepared) => prepared,
            Err(response) => return *response,
        };
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            work,
            trace,
            submitted: Instant::now(),
            reply: reply_tx,
        };
        match shared.pool.submit(key, job) {
            Ok(_) => submissions.push(reply_rx),
            Err(SubmitError::Overloaded { shard, depth, .. }) => {
                // Jobs already submitted still run (and warm the plane);
                // their replies are dropped with the receivers.
                shared.counters.overloads.fetch_add(1, Ordering::Relaxed);
                return overloaded_response(
                    format!(
                        "shard {shard} queue full (depth {depth}) at batch item {}; retry later",
                        submissions.len()
                    ),
                    depth,
                );
            }
            Err(SubmitError::ShuttingDown { .. }) => {
                return error_response(ErrorCode::ShuttingDown, "server is draining");
            }
        }
    }
    let mut rows = Vec::with_capacity(submissions.len());
    // Stage durations are summed across every job in the batch; since
    // the jobs run on concurrent shards, the sums may exceed the batch's
    // wall-clock `micros` (documented on the wire struct).
    let mut spans = Vec::new();
    for reply_rx in submissions {
        match reply_rx.recv() {
            Ok((Ok(Outcome::Row(row)), job_spans)) => {
                rows.push(row);
                spans.extend(job_spans);
            }
            Ok((Ok(_), _)) => {
                return error_response(ErrorCode::Analysis, "worker answered the wrong job type")
            }
            Ok((Err(message), _)) => return error_response(ErrorCode::Analysis, message),
            Err(_) => return error_response(ErrorCode::Analysis, "worker dropped the request"),
        }
    }
    let micros = started.elapsed().as_micros() as u64;
    shared.telemetry.requests.inc();
    shared.telemetry.request_latency_us.record(micros);
    Response::Batch {
        rows,
        micros,
        trace: trace.0,
        stages: aggregate_stages(&spans),
    }
}
