//! `pwcet-serve` — the sharded analysis service front-end.
//!
//! A WCET tool at design stage is queried *interactively*: the same
//! programs are re-analyzed under varying fault models, geometries, and
//! protection levels, and turnaround time decides whether the tool gets
//! used at all. A one-shot CLI pays the cold fixpoints on every
//! invocation; this crate keeps one long-lived process warm instead:
//!
//! * a **wire protocol** ([`protocol`]) — length-prefixed, versioned,
//!   checksummed `PWCQ` frames carrying analysis, batch, sweep, stats,
//!   and shutdown requests, with paranoid decoding that degrades every
//!   corruption class to a clean error response;
//! * a **sharded work queue** ([`shard`]) — requests hash by program
//!   content fingerprint onto single-worker shards with bounded queues
//!   and explicit overload responses, so duplicate work serializes (one
//!   cold fixpoint warms every queued duplicate) while distinct programs
//!   proceed concurrently;
//! * a **server** ([`server`]) over `std::net::TcpListener` — no async
//!   runtime, the thread model is hand-rolled the way `pwcet-par`
//!   hand-rolls parallelism — with all shards behind one shared
//!   [`ReusePlane`](pwcet_core::ReusePlane) (write-through persistence:
//!   a restarted server answers from the disk tier) and graceful,
//!   draining shutdown;
//! * a **client** ([`client`] and the `pwcet-client` binary) to submit
//!   the benchmark suite or exported request files and report per-request
//!   tier provenance (`served_from`) and latency percentiles, with every
//!   phase of a request bounded by [`ClientConfig`] deadlines;
//! * a **fleet layer** ([`peer`]) — a consistent-hash [`PeerRing`] over
//!   the configured membership makes every context key's entry fetchable
//!   from its owner node (`FetchEntry`/`OfferEntry` verbs), so a fleet
//!   of servers shares one warm store with no shared filesystem; the
//!   reuse plane consumes it as its *network* tier between the derived
//!   tier and a cold build.
//!
//! # Example
//!
//! ```
//! use pwcet_serve::{Client, Request, Response, Server, ServerConfig};
//! use pwcet_progen::{stmt, Program};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let program = Program::new("demo").with_function("main", stmt::loop_(10, stmt::compute(8)));
//! let first = client.analyze(program.clone(), 1e-4, 1e-15);
//! let second = client.analyze(program, 1e-4, 1e-15);
//! if let (Ok(Response::Analysis { row: a, .. }), Ok(Response::Analysis { row: b, .. })) =
//!     (first, second)
//! {
//!     assert_eq!(a.pwcet_none, b.pwcet_none); // bit-identical, served warm
//! }
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod peer;
pub mod protocol;
pub mod server;
pub mod shard;

pub use client::{Client, ClientConfig, FleetClient, RetryPolicy, RetryStats};
pub use peer::{FleetConfig, FleetStats, PeerFleet, PeerRing};
pub use protocol::{
    AnalysisRow, ErrorCode, GeometryRow, PfailRow, ProtocolError, Request, Response, ServedFrom,
    ServiceStats, StageTiming, WireError,
};
pub use server::{Server, ServerConfig, FRAME_DEADLINE};
pub use shard::{ShardPool, SubmitError};
