//! The `PWCQ` wire protocol of the analysis service.
//!
//! Every message — request or response — travels as one length-prefixed,
//! versioned, checksummed frame, following the codec conventions of the
//! reuse plane's on-disk entries (`crates/core/src/codec.rs`):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "PWCQ"
//! 4       4     protocol version (u32, = [`VERSION`])
//! 8       8     payload length in bytes (u64, ≤ MAX_PAYLOAD_BYTES)
//! 16      8     FNV-1a checksum of the payload (u64)
//! 24      …     payload (tag byte + body)
//! ```
//!
//! Decoding is **paranoid by construction**: the length prefix is bounded
//! before any allocation, every sequence length is checked against the
//! remaining bytes, every enum tag is validated, and statement nesting is
//! depth-limited, so a corrupted or adversarial frame surfaces as a
//! [`ProtocolError`] the server answers with a clean
//! [`Response::Error`] — never a panic, hang, or unbounded allocation.
//! `tests/protocol_robustness.rs` drives every corruption class against a
//! live server; the round-trip property
//! (`decode(encode(m)) == m` for every message variant) is pinned by
//! `tests/protocol_roundtrip.rs`.
//!
//! Programs ride the wire as their structured-DSL form (name, functions,
//! statement trees), not as machine code: the server compiles them with
//! its own code base, which keeps requests small and the server's
//! content-addressed shard hashing authoritative.

use std::fmt;
use std::io::{Read, Write};

use pwcet_core::ReuseTier;
use pwcet_obs::Stage;
use pwcet_progen::{Program, Stmt};

/// Frame magic: "PWCQ" (pWCET query).
pub const MAGIC: [u8; 4] = *b"PWCQ";
/// Current protocol version. Bump on any layout change; mismatched peers
/// then fail cleanly with [`ProtocolError::UnsupportedVersion`].
/// Version history: 1 = initial; 2 = `ilp_*` solver counters appended to
/// the stats response; 3 = classification-kernel counters (`classify_*`)
/// and the on-disk store size appended to the stats response; 4 = fleet
/// verbs ([`Request::FetchEntry`] / [`Request::OfferEntry`], the
/// `network` served-from tier) and the `network_*` / peer counters
/// appended to the stats response; 5 = template-registry and
/// basis-persistence counters (`template_hits`, `basis_restores`,
/// `basis_rejects`, `ilp_cold_starts`) appended to the stats response;
/// 6 = telemetry — a client-minted trace ID on every work-carrying
/// request (and on [`Request::FetchEntry`], so fleet peer hops join the
/// originating trace), per-response stage-timing breakdowns
/// ([`StageTiming`]), and the [`Request::Metrics`] verb answering a
/// self-describing name→value registry snapshot
/// ([`Response::Metrics`]) — the last stats layout change: new
/// instruments ride the table, not the struct;
/// 7 = a structured `retry_after_ms` hint carried as an *optional
/// trailing field* of [`Response::Error`] (set on `Overloaded`
/// refusals, derived from the refusing shard's queue depth). The
/// field is payload-level optional, so v6 frames decode unchanged and
/// v6 clients simply never read the hint — peers at
/// [`MIN_VERSION`]..=[`VERSION`] interoperate.
pub const VERSION: u32 = 7;
/// Oldest protocol version this build still accepts. v6 differs from
/// v7 only by the absence of the optional `retry_after_ms` tail on
/// error payloads, which the decoder treats as `None`.
pub const MIN_VERSION: u32 = 6;
/// Header bytes before the payload.
pub const HEADER_LEN: usize = 24;
/// Upper bound on a frame payload. Far above any real request (a whole
/// 25-benchmark batch is a few hundred KB) while keeping a corrupted
/// length prefix from provoking a multi-gigabyte allocation.
pub const MAX_PAYLOAD_BYTES: u64 = 16 * 1024 * 1024;
/// Maximum statement-tree nesting a decoded program may carry. The
/// progen DSL itself allows far less (`MAX_LOOP_DEPTH`); this bound only
/// protects the decoder's stack from adversarial frames.
pub const MAX_STMT_DEPTH: usize = 64;

/// Why a frame could not be decoded. All variants are recoverable: the
/// server answers with [`Response::Error`] and closes the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Fewer bytes than the declared (or minimal) structure needs.
    Truncated,
    /// The frame does not start with the `PWCQ` magic.
    BadMagic,
    /// A protocol version this build does not speak.
    UnsupportedVersion(u32),
    /// The length prefix exceeds [`MAX_PAYLOAD_BYTES`].
    Oversized(u64),
    /// The payload checksum does not match the header.
    ChecksumMismatch,
    /// Structurally invalid payload (bad tag, bad length, bad nesting).
    Malformed(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "frame is truncated"),
            ProtocolError::BadMagic => write!(f, "bad magic (not a PWCQ frame)"),
            ProtocolError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {VERSION})"
                )
            }
            ProtocolError::Oversized(len) => {
                write!(
                    f,
                    "length prefix {len} exceeds the {MAX_PAYLOAD_BYTES}-byte frame cap"
                )
            }
            ProtocolError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            ProtocolError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A frame-level failure while reading from or writing to a stream.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (including mid-frame disconnects).
    Io(std::io::Error),
    /// The bytes arrived but do not form a valid frame.
    Protocol(ProtocolError),
    /// The peer did not answer within the configured deadline. The
    /// connection may merely be slow, but callers treat it as
    /// unavailable — the peer layer marks the node unhealthy instead of
    /// erroring the request.
    Timeout,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Protocol(e) => write!(f, "protocol error: {e}"),
            WireError::Timeout => write!(f, "peer did not answer within the deadline"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<ProtocolError> for WireError {
    fn from(e: ProtocolError) -> Self {
        WireError::Protocol(e)
    }
}

/// FNV-1a over the payload — shared with the disk-tier codec so the two
/// formats cannot drift; deterministic across platforms and processes.
fn checksum(bytes: &[u8]) -> u64 {
    pwcet_core::fnv1a_checksum(bytes)
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Analyze one program under all three protection levels.
    Analyze {
        /// The structured program (compiled server-side).
        program: Program,
        /// Per-bit permanent-fault probability of the fault model.
        pfail: f64,
        /// Exceedance probability the pWCETs are quoted at.
        target_p: f64,
        /// Client-minted trace ID (0 = untraced); echoed on the
        /// response and stamped on every span the request causes,
        /// including fleet peer hops.
        trace: u64,
    },
    /// Analyze a batch; the server fans the programs out across its
    /// shards and answers in request order.
    Batch {
        /// The programs, answered in this order.
        programs: Vec<Program>,
        /// Per-bit permanent-fault probability of the fault model.
        pfail: f64,
        /// Exceedance probability the pWCETs are quoted at.
        target_p: f64,
        /// Client-minted trace ID (0 = untraced) shared by every
        /// program of the batch.
        trace: u64,
    },
    /// Sweep the fault probability over one program (one shared context;
    /// every point after the first skips straight to the estimate).
    SweepPfail {
        /// The swept program.
        program: Program,
        /// The `pfail` points, answered in this order.
        pfails: Vec<f64>,
        /// Exceedance probability the pWCETs are quoted at.
        target_p: f64,
        /// Client-minted trace ID (0 = untraced).
        trace: u64,
    },
    /// Sweep cache associativity at fixed sets and block size (the
    /// server's derivation tier turns every narrower point into a warm
    /// start of the widest).
    SweepGeometry {
        /// The swept program.
        program: Program,
        /// Number of cache sets of every lattice point.
        sets: u32,
        /// Block size in bytes of every lattice point.
        block_bytes: u32,
        /// The way counts to sweep (visited widest-first).
        way_counts: Vec<u32>,
        /// Exceedance probability the pWCETs are quoted at.
        target_p: f64,
        /// Client-minted trace ID (0 = untraced).
        trace: u64,
    },
    /// Service health: shard/queue occupancy and reuse-plane tier
    /// counters.
    Stats,
    /// Ask the server to stop accepting work, drain its queues, and exit.
    Shutdown,
    /// Fleet verb: fetch the serialized reuse-plane entry for one
    /// content key (`ContextCache::key_of`). The answer's payload is the
    /// same `PWCX` encoding the disk tier stores. Served inline on the
    /// connection thread — a fetch never queues behind analyses and
    /// never triggers a nested fetch, so two nodes fetching from each
    /// other cannot deadlock.
    FetchEntry {
        /// Content fingerprint of the wanted entry.
        key: u64,
        /// The originating request's trace ID (0 = untraced): the
        /// serving node records its `peer_serve` span under the same
        /// trace, so one ID covers both ends of the hop.
        trace: u64,
    },
    /// Fleet verb: offer a freshly built serialized entry to this node
    /// (the key's ring owner). The receiver validates the envelope
    /// before storing; a corrupt offer is refused, never installed.
    OfferEntry {
        /// Content fingerprint the entry was encoded under.
        key: u64,
        /// Complete `PWCX` entry bytes (header + payload).
        entry: Vec<u8>,
    },
    /// Telemetry scrape: the server's full metrics registry — every
    /// legacy counter plus the latency histograms — as a
    /// self-describing name→value table with histogram quantiles
    /// computed exactly from the buckets. Served inline, like
    /// [`Request::Stats`].
    Metrics,
}

/// Where the server's reuse plane answered a request from, as reported
/// per response (`served_from`).
///
/// This is [`ReuseTier`] on the wire; re-exported here so protocol users
/// need only this module.
pub type ServedFrom = ReuseTier;

/// One aggregated stage of a response's timing breakdown: every span
/// the request's trace recorded for `stage`, folded to a total duration
/// and an occurrence count. The leaf stages (`cfg_expand`, `classify`,
/// `ilp_solve`, `convolve`, `codec_decode`, `peer_fetch`) plus
/// `queue_wait` are disjoint in time, so their durations sum to at most
/// the response's `micros`; `service` is their parent and overlaps
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTiming {
    /// Which stage (wire tag = [`Stage::tag`]).
    pub stage: Stage,
    /// Total microseconds across all spans of this stage.
    pub micros: u64,
    /// How many spans were folded in.
    pub count: u32,
}

/// The per-program analysis row of [`Response::Analysis`] and
/// [`Response::Batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisRow {
    /// The program name (as submitted).
    pub name: String,
    /// Deterministic fault-free WCET in cycles.
    pub fault_free_wcet: u64,
    /// pWCET at the requested probability, no protection.
    pub pwcet_none: u64,
    /// pWCET with the Shared Reliable Buffer.
    pub pwcet_srb: u64,
    /// pWCET with the Reliable Way.
    pub pwcet_rw: u64,
    /// Which reuse-plane tier provided the analysis context.
    pub served_from: ServedFrom,
}

/// One point of a [`Response::PfailSweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct PfailRow {
    /// The per-bit fault probability of this point.
    pub pfail: f64,
    /// pWCET without protection.
    pub pwcet_none: u64,
    /// pWCET with the Shared Reliable Buffer.
    pub pwcet_srb: u64,
    /// pWCET with the Reliable Way.
    pub pwcet_rw: u64,
}

/// One point of a [`Response::GeometrySweep`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometryRow {
    /// The associativity of this point.
    pub ways: u32,
    /// pWCET without protection.
    pub pwcet_none: u64,
    /// pWCET with the Shared Reliable Buffer.
    pub pwcet_srb: u64,
    /// pWCET with the Reliable Way.
    pub pwcet_rw: u64,
}

/// Service-side counters answered by [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Number of worker shards.
    pub shards: u32,
    /// Bounded queue capacity per shard.
    pub queue_capacity: u32,
    /// Jobs currently queued across all shards.
    pub queued: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// Jobs completed since start.
    pub served: u64,
    /// Submissions rejected with an overload response.
    pub overloads: u64,
    /// Frames rejected as malformed/corrupt.
    pub protocol_errors: u64,
    /// Responses served from the memory tier.
    pub served_memory: u64,
    /// Responses served from the disk tier.
    pub served_disk: u64,
    /// Responses served by cross-geometry derivation.
    pub served_derived: u64,
    /// Responses that required a cold build.
    pub served_cold: u64,
    /// Reuse-plane memory-tier hits (includes intra-request reuse).
    pub memory_hits: u64,
    /// Reuse-plane memory-tier misses.
    pub memory_misses: u64,
    /// Reuse-plane disk-tier hits.
    pub disk_hits: u64,
    /// Entries written through to the disk tier.
    pub disk_writes: u64,
    /// Corrupt disk entries that degraded to a lower tier.
    pub disk_corrupt: u64,
    /// Contexts derived from a wider lattice sibling.
    pub derived: u64,
    /// Contexts built cold by the plane.
    pub cold_builds: u64,
    /// ILP solver: primal simplex pivots across every solve stage.
    pub ilp_pivots: u64,
    /// ILP solver: dual simplex pivots (warm bound-change re-solves).
    pub ilp_dual_pivots: u64,
    /// ILP solver: branch-and-bound nodes whose relaxation was solved.
    pub ilp_bb_nodes: u64,
    /// ILP solver: solves answered from an existing factored basis.
    pub ilp_warm_starts: u64,
    /// ILP solver: branch-and-bound children pruned without an LP solve.
    pub ilp_trivial_prunes: u64,
    /// Classification kernel: worklist node evaluations (pops) across
    /// every fresh fixpoint.
    pub classify_passes: u64,
    /// Classification kernel: packed slot words read or written.
    pub classify_words_touched: u64,
    /// Classification kernel: per-node set propagations skipped because
    /// the set's dirty words were clean.
    pub classify_sets_skipped: u64,
    /// Total bytes of the on-disk context store (0 without a disk tier).
    pub store_bytes: u64,
    /// Responses served from the network tier (a peer's entry).
    pub served_network: u64,
    /// Network tier: fetches a peer answered with a decodable entry.
    pub network_hits: u64,
    /// Network tier: fetches no peer could answer.
    pub network_misses: u64,
    /// Fetched or offered entries rejected as corrupt (each degraded to
    /// a cold rebuild or a refused offer, never a wrong result).
    pub network_corrupt: u64,
    /// Freshly built entries offered to their ring owner.
    pub network_offers: u64,
    /// `FetchEntry` requests this node answered with an entry.
    pub peer_fetches_served: u64,
    /// `OfferEntry` requests this node accepted and stored.
    pub peer_offers_stored: u64,
    /// IPET template registry: lookups answered by an existing
    /// cross-geometry template (shared factored basis pool).
    pub template_hits: u64,
    /// Persisted factored bases successfully restored into a template's
    /// workspace pool (disk- or network-tier hits of v3 entries).
    pub basis_restores: u64,
    /// Persisted bases that failed live-model validation and degraded to
    /// a counted cold factorization (never a wrong bound).
    pub basis_rejects: u64,
    /// ILP solver: solves that had to factor a basis from scratch
    /// (phase-1). Zero after a warm restore.
    pub ilp_cold_starts: u64,
    /// Configured fleet peers (0 = single-node).
    pub peers: u32,
    /// Fleet peers currently in failure backoff.
    pub peers_unhealthy: u32,
}

impl ServiceStats {
    /// Every counter as a self-describing name→value table (field names
    /// verbatim). This struct's *layout* is frozen at v6 — new
    /// instruments reach the wire through [`Response::Metrics`], whose
    /// table starts from these legacy rows, so existing names stay
    /// stable for scrapers.
    pub fn entries(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("shards", u64::from(self.shards)),
            ("queue_capacity", u64::from(self.queue_capacity)),
            ("queued", self.queued),
            ("connections", self.connections),
            ("served", self.served),
            ("overloads", self.overloads),
            ("protocol_errors", self.protocol_errors),
            ("served_memory", self.served_memory),
            ("served_disk", self.served_disk),
            ("served_derived", self.served_derived),
            ("served_network", self.served_network),
            ("served_cold", self.served_cold),
            ("memory_hits", self.memory_hits),
            ("memory_misses", self.memory_misses),
            ("disk_hits", self.disk_hits),
            ("disk_writes", self.disk_writes),
            ("disk_corrupt", self.disk_corrupt),
            ("derived", self.derived),
            ("cold_builds", self.cold_builds),
            ("network_hits", self.network_hits),
            ("network_misses", self.network_misses),
            ("network_corrupt", self.network_corrupt),
            ("network_offers", self.network_offers),
            ("peer_fetches_served", self.peer_fetches_served),
            ("peer_offers_stored", self.peer_offers_stored),
            ("peers", u64::from(self.peers)),
            ("peers_unhealthy", u64::from(self.peers_unhealthy)),
            ("ilp_pivots", self.ilp_pivots),
            ("ilp_dual_pivots", self.ilp_dual_pivots),
            ("ilp_bb_nodes", self.ilp_bb_nodes),
            ("ilp_warm_starts", self.ilp_warm_starts),
            ("ilp_cold_starts", self.ilp_cold_starts),
            ("ilp_trivial_prunes", self.ilp_trivial_prunes),
            ("template_hits", self.template_hits),
            ("basis_restores", self.basis_restores),
            ("basis_rejects", self.basis_rejects),
            ("classify_passes", self.classify_passes),
            ("classify_words_touched", self.classify_words_touched),
            ("classify_sets_skipped", self.classify_sets_skipped),
            ("store_bytes", self.store_bytes),
        ]
    }
}

/// Why the server rejected a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or payload could not be decoded.
    Malformed,
    /// The frame decoded but the request is semantically invalid
    /// (unbuildable program, bad probability, empty sweep…).
    InvalidRequest,
    /// The target shard's queue is full — retry later. The connection
    /// stays open.
    Overloaded,
    /// The analysis itself failed (ILP/CFG error).
    Analysis,
    /// The server is draining and accepts no new work.
    ShuttingDown,
}

impl ErrorCode {
    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::InvalidRequest => "invalid-request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Analysis => "analysis",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Analyze`].
    Analysis {
        /// The analysis row.
        row: AnalysisRow,
        /// Server-side latency (queue wait + compute) in microseconds.
        micros: u64,
        /// The request's trace ID, echoed back (0 = untraced).
        trace: u64,
        /// Per-stage timing breakdown of this request, aggregated from
        /// its spans.
        stages: Vec<StageTiming>,
    },
    /// Answer to [`Request::Batch`], rows in request order.
    Batch {
        /// One row per submitted program.
        rows: Vec<AnalysisRow>,
        /// Server-side latency of the whole batch in microseconds.
        micros: u64,
        /// The request's trace ID, echoed back (0 = untraced).
        trace: u64,
        /// Stage timings aggregated across every program of the batch
        /// (jobs run concurrently on different shards, so stage sums
        /// may exceed the batch's wall-clock `micros`).
        stages: Vec<StageTiming>,
    },
    /// Answer to [`Request::SweepPfail`].
    PfailSweep {
        /// The program name.
        name: String,
        /// Tier that provided the shared context (first point).
        served_from: ServedFrom,
        /// One row per valid `pfail` point, in request order.
        rows: Vec<PfailRow>,
        /// Server-side latency in microseconds.
        micros: u64,
        /// The request's trace ID, echoed back (0 = untraced).
        trace: u64,
        /// Per-stage timing breakdown of this request.
        stages: Vec<StageTiming>,
    },
    /// Answer to [`Request::SweepGeometry`].
    GeometrySweep {
        /// The program name.
        name: String,
        /// Tier that provided the widest point's context.
        served_from: ServedFrom,
        /// One row per way count, widest first.
        rows: Vec<GeometryRow>,
        /// Server-side latency in microseconds.
        micros: u64,
        /// The request's trace ID, echoed back (0 = untraced).
        trace: u64,
        /// Per-stage timing breakdown of this request.
        stages: Vec<StageTiming>,
    },
    /// Answer to [`Request::Stats`] (boxed: the counter block is far
    /// larger than any other variant).
    Stats(Box<ServiceStats>),
    /// The request was rejected; see the code for whether a retry can
    /// succeed.
    Error {
        /// Machine-readable rejection class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Structured backoff hint (v7+): how long the client should
        /// wait before retrying. Set on `Overloaded` refusals, derived
        /// from the refusing shard's queue depth. Encoded as an
        /// optional trailing field, so v6 peers interoperate (they
        /// neither send nor read it).
        retry_after_ms: Option<u64>,
    },
    /// Answer to [`Request::Shutdown`]: the server stopped accepting
    /// work and is draining.
    ShutdownStarted,
    /// Answer to [`Request::FetchEntry`].
    Entry {
        /// The requested content key, echoed back.
        key: u64,
        /// The serialized entry, or `None` when this node holds nothing
        /// for the key — an authoritative miss; the caller builds cold.
        entry: Option<Vec<u8>>,
    },
    /// Answer to [`Request::OfferEntry`]: whether the entry was stored
    /// (a duplicate or invalid offer is acknowledged but not stored).
    OfferAck {
        /// Whether the offered entry was installed in the local store.
        stored: bool,
    },
    /// Answer to [`Request::Metrics`]: the registry snapshot as a flat,
    /// self-describing name→value table. Histograms arrive expanded to
    /// `_count` / `_sum` / `_mean` / `_p50` / `_p95` / `_p99` / `_max`
    /// rows with quantiles computed exactly from the buckets. New
    /// instruments add rows — the layout never changes again.
    Metrics {
        /// `(name, value)` rows, sorted by name.
        entries: Vec<(String, u64)>,
    },
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

fn encode_stmt(enc: &mut Enc, stmt: &Stmt) {
    match stmt {
        Stmt::Compute(count) => {
            enc.u8(0);
            enc.u32(*count);
        }
        Stmt::Seq(items) => {
            enc.u8(1);
            enc.u64(items.len() as u64);
            for item in items {
                encode_stmt(enc, item);
            }
        }
        Stmt::Loop { bound, body } => {
            enc.u8(2);
            enc.u32(*bound);
            encode_stmt(enc, body);
        }
        Stmt::IfElse {
            then_branch,
            else_branch,
        } => {
            enc.u8(3);
            encode_stmt(enc, then_branch);
            encode_stmt(enc, else_branch);
        }
        Stmt::Call(name) => {
            enc.u8(4);
            enc.str(name);
        }
    }
}

fn encode_program(enc: &mut Enc, program: &Program) {
    enc.str(program.name());
    enc.u64(program.functions().len() as u64);
    for function in program.functions() {
        enc.str(function.name());
        encode_stmt(enc, function.body());
    }
}

fn tier_tag(tier: ServedFrom) -> u8 {
    match tier {
        ReuseTier::Memory => 0,
        ReuseTier::Disk => 1,
        ReuseTier::Derived => 2,
        ReuseTier::Cold => 3,
        ReuseTier::Network => 4,
    }
}

fn error_code_tag(code: ErrorCode) -> u8 {
    match code {
        ErrorCode::Malformed => 0,
        ErrorCode::InvalidRequest => 1,
        ErrorCode::Overloaded => 2,
        ErrorCode::Analysis => 3,
        ErrorCode::ShuttingDown => 4,
    }
}

fn encode_stage_timings(enc: &mut Enc, stages: &[StageTiming]) {
    enc.u64(stages.len() as u64);
    for timing in stages {
        enc.u8(timing.stage.tag());
        enc.u64(timing.micros);
        enc.u32(timing.count);
    }
}

fn encode_analysis_row(enc: &mut Enc, row: &AnalysisRow) {
    enc.str(&row.name);
    enc.u64(row.fault_free_wcet);
    enc.u64(row.pwcet_none);
    enc.u64(row.pwcet_srb);
    enc.u64(row.pwcet_rw);
    enc.u8(tier_tag(row.served_from));
}

fn encode_stats(enc: &mut Enc, stats: &ServiceStats) {
    enc.u32(stats.shards);
    enc.u32(stats.queue_capacity);
    for v in [
        stats.queued,
        stats.connections,
        stats.served,
        stats.overloads,
        stats.protocol_errors,
        stats.served_memory,
        stats.served_disk,
        stats.served_derived,
        stats.served_cold,
        stats.memory_hits,
        stats.memory_misses,
        stats.disk_hits,
        stats.disk_writes,
        stats.disk_corrupt,
        stats.derived,
        stats.cold_builds,
        stats.ilp_pivots,
        stats.ilp_dual_pivots,
        stats.ilp_bb_nodes,
        stats.ilp_warm_starts,
        stats.ilp_trivial_prunes,
        stats.classify_passes,
        stats.classify_words_touched,
        stats.classify_sets_skipped,
        stats.store_bytes,
        stats.served_network,
        stats.network_hits,
        stats.network_misses,
        stats.network_corrupt,
        stats.network_offers,
        stats.peer_fetches_served,
        stats.peer_offers_stored,
        stats.template_hits,
        stats.basis_restores,
        stats.basis_rejects,
        stats.ilp_cold_starts,
    ] {
        enc.u64(v);
    }
    enc.u32(stats.peers);
    enc.u32(stats.peers_unhealthy);
}

/// Wraps a finished payload in the `PWCQ` header.
fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Serializes one request as a complete frame (header + payload).
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut enc = Enc::new();
    match request {
        Request::Analyze {
            program,
            pfail,
            target_p,
            trace,
        } => {
            enc.u8(1);
            encode_program(&mut enc, program);
            enc.f64(*pfail);
            enc.f64(*target_p);
            enc.u64(*trace);
        }
        Request::Batch {
            programs,
            pfail,
            target_p,
            trace,
        } => {
            enc.u8(2);
            enc.u64(programs.len() as u64);
            for program in programs {
                encode_program(&mut enc, program);
            }
            enc.f64(*pfail);
            enc.f64(*target_p);
            enc.u64(*trace);
        }
        Request::SweepPfail {
            program,
            pfails,
            target_p,
            trace,
        } => {
            enc.u8(3);
            encode_program(&mut enc, program);
            enc.u64(pfails.len() as u64);
            for &pfail in pfails {
                enc.f64(pfail);
            }
            enc.f64(*target_p);
            enc.u64(*trace);
        }
        Request::SweepGeometry {
            program,
            sets,
            block_bytes,
            way_counts,
            target_p,
            trace,
        } => {
            enc.u8(4);
            encode_program(&mut enc, program);
            enc.u32(*sets);
            enc.u32(*block_bytes);
            enc.u64(way_counts.len() as u64);
            for &ways in way_counts {
                enc.u32(ways);
            }
            enc.f64(*target_p);
            enc.u64(*trace);
        }
        Request::Stats => enc.u8(5),
        Request::Shutdown => enc.u8(6),
        Request::FetchEntry { key, trace } => {
            enc.u8(7);
            enc.u64(*key);
            enc.u64(*trace);
        }
        Request::OfferEntry { key, entry } => {
            enc.u8(8);
            enc.u64(*key);
            enc.bytes(entry);
        }
        Request::Metrics => enc.u8(9),
    }
    frame(enc.buf)
}

/// Serializes one response as a complete frame (header + payload).
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut enc = Enc::new();
    match response {
        Response::Analysis {
            row,
            micros,
            trace,
            stages,
        } => {
            enc.u8(1);
            encode_analysis_row(&mut enc, row);
            enc.u64(*micros);
            enc.u64(*trace);
            encode_stage_timings(&mut enc, stages);
        }
        Response::Batch {
            rows,
            micros,
            trace,
            stages,
        } => {
            enc.u8(2);
            enc.u64(rows.len() as u64);
            for row in rows {
                encode_analysis_row(&mut enc, row);
            }
            enc.u64(*micros);
            enc.u64(*trace);
            encode_stage_timings(&mut enc, stages);
        }
        Response::PfailSweep {
            name,
            served_from,
            rows,
            micros,
            trace,
            stages,
        } => {
            enc.u8(3);
            enc.str(name);
            enc.u8(tier_tag(*served_from));
            enc.u64(rows.len() as u64);
            for row in rows {
                enc.f64(row.pfail);
                enc.u64(row.pwcet_none);
                enc.u64(row.pwcet_srb);
                enc.u64(row.pwcet_rw);
            }
            enc.u64(*micros);
            enc.u64(*trace);
            encode_stage_timings(&mut enc, stages);
        }
        Response::GeometrySweep {
            name,
            served_from,
            rows,
            micros,
            trace,
            stages,
        } => {
            enc.u8(4);
            enc.str(name);
            enc.u8(tier_tag(*served_from));
            enc.u64(rows.len() as u64);
            for row in rows {
                enc.u32(row.ways);
                enc.u64(row.pwcet_none);
                enc.u64(row.pwcet_srb);
                enc.u64(row.pwcet_rw);
            }
            enc.u64(*micros);
            enc.u64(*trace);
            encode_stage_timings(&mut enc, stages);
        }
        Response::Stats(stats) => {
            enc.u8(5);
            encode_stats(&mut enc, stats);
        }
        Response::Error {
            code,
            message,
            retry_after_ms,
        } => {
            enc.u8(6);
            enc.u8(error_code_tag(*code));
            enc.str(message);
            // v7: optional trailing hint. Omitted entirely when absent,
            // which is exactly the v6 layout.
            if let Some(ms) = retry_after_ms {
                enc.u64(*ms);
            }
        }
        Response::ShutdownStarted => enc.u8(7),
        Response::Entry { key, entry } => {
            enc.u8(8);
            enc.u64(*key);
            match entry {
                Some(bytes) => {
                    enc.u8(1);
                    enc.bytes(bytes);
                }
                None => enc.u8(0),
            }
        }
        Response::OfferAck { stored } => {
            enc.u8(9);
            enc.u8(u8::from(*stored));
        }
        Response::Metrics { entries } => {
            enc.u8(10);
            enc.u64(entries.len() as u64);
            for (name, value) in entries {
                enc.str(name);
                enc.u64(*value);
            }
        }
    }
    frame(enc.buf)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a sequence length and guards it against allocation bombs:
    /// each element occupies at least `min_elem_bytes`, so a length the
    /// remaining bytes cannot possibly hold is corruption, not data.
    fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, ProtocolError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| ProtocolError::Truncated)?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(ProtocolError::Truncated);
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, ProtocolError> {
        let len = self.seq_len(1)?;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| ProtocolError::Malformed("non-UTF-8 string"))
    }
}

fn decode_stmt(dec: &mut Dec<'_>, depth: usize) -> Result<Stmt, ProtocolError> {
    if depth > MAX_STMT_DEPTH {
        return Err(ProtocolError::Malformed("statement nesting too deep"));
    }
    Ok(match dec.u8()? {
        0 => Stmt::Compute(dec.u32()?),
        1 => {
            let count = dec.seq_len(1)?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_stmt(dec, depth + 1)?);
            }
            Stmt::Seq(items)
        }
        2 => {
            let bound = dec.u32()?;
            Stmt::Loop {
                bound,
                body: Box::new(decode_stmt(dec, depth + 1)?),
            }
        }
        3 => Stmt::IfElse {
            then_branch: Box::new(decode_stmt(dec, depth + 1)?),
            else_branch: Box::new(decode_stmt(dec, depth + 1)?),
        },
        4 => Stmt::Call(dec.str()?),
        _ => return Err(ProtocolError::Malformed("statement tag")),
    })
}

fn decode_program(dec: &mut Dec<'_>) -> Result<Program, ProtocolError> {
    let name = dec.str()?;
    let functions = dec.seq_len(9)?; // name length prefix + stmt tag
    let mut program = Program::new(name);
    for _ in 0..functions {
        let fn_name = dec.str()?;
        let body = decode_stmt(dec, 0)?;
        program = program.with_function(fn_name, body);
    }
    Ok(program)
}

fn decode_tier(dec: &mut Dec<'_>) -> Result<ServedFrom, ProtocolError> {
    Ok(match dec.u8()? {
        0 => ReuseTier::Memory,
        1 => ReuseTier::Disk,
        2 => ReuseTier::Derived,
        3 => ReuseTier::Cold,
        4 => ReuseTier::Network,
        _ => return Err(ProtocolError::Malformed("tier tag")),
    })
}

fn decode_error_code(dec: &mut Dec<'_>) -> Result<ErrorCode, ProtocolError> {
    Ok(match dec.u8()? {
        0 => ErrorCode::Malformed,
        1 => ErrorCode::InvalidRequest,
        2 => ErrorCode::Overloaded,
        3 => ErrorCode::Analysis,
        4 => ErrorCode::ShuttingDown,
        _ => return Err(ProtocolError::Malformed("error code tag")),
    })
}

fn decode_stage_timings(dec: &mut Dec<'_>) -> Result<Vec<StageTiming>, ProtocolError> {
    let count = dec.seq_len(13)?; // stage tag + micros + count
    let mut stages = Vec::with_capacity(count);
    for _ in 0..count {
        let stage =
            Stage::from_tag(dec.u8()?).ok_or(ProtocolError::Malformed("stage timing tag"))?;
        stages.push(StageTiming {
            stage,
            micros: dec.u64()?,
            count: dec.u32()?,
        });
    }
    Ok(stages)
}

fn decode_analysis_row(dec: &mut Dec<'_>) -> Result<AnalysisRow, ProtocolError> {
    Ok(AnalysisRow {
        name: dec.str()?,
        fault_free_wcet: dec.u64()?,
        pwcet_none: dec.u64()?,
        pwcet_srb: dec.u64()?,
        pwcet_rw: dec.u64()?,
        served_from: decode_tier(dec)?,
    })
}

fn decode_stats(dec: &mut Dec<'_>) -> Result<ServiceStats, ProtocolError> {
    Ok(ServiceStats {
        shards: dec.u32()?,
        queue_capacity: dec.u32()?,
        queued: dec.u64()?,
        connections: dec.u64()?,
        served: dec.u64()?,
        overloads: dec.u64()?,
        protocol_errors: dec.u64()?,
        served_memory: dec.u64()?,
        served_disk: dec.u64()?,
        served_derived: dec.u64()?,
        served_cold: dec.u64()?,
        memory_hits: dec.u64()?,
        memory_misses: dec.u64()?,
        disk_hits: dec.u64()?,
        disk_writes: dec.u64()?,
        disk_corrupt: dec.u64()?,
        derived: dec.u64()?,
        cold_builds: dec.u64()?,
        ilp_pivots: dec.u64()?,
        ilp_dual_pivots: dec.u64()?,
        ilp_bb_nodes: dec.u64()?,
        ilp_warm_starts: dec.u64()?,
        ilp_trivial_prunes: dec.u64()?,
        classify_passes: dec.u64()?,
        classify_words_touched: dec.u64()?,
        classify_sets_skipped: dec.u64()?,
        store_bytes: dec.u64()?,
        served_network: dec.u64()?,
        network_hits: dec.u64()?,
        network_misses: dec.u64()?,
        network_corrupt: dec.u64()?,
        network_offers: dec.u64()?,
        peer_fetches_served: dec.u64()?,
        peer_offers_stored: dec.u64()?,
        template_hits: dec.u64()?,
        basis_restores: dec.u64()?,
        basis_rejects: dec.u64()?,
        ilp_cold_starts: dec.u64()?,
        peers: dec.u32()?,
        peers_unhealthy: dec.u32()?,
    })
}

/// Validates a raw header and returns `(payload_len, checksum)`.
///
/// # Errors
///
/// [`ProtocolError`] on bad magic, version skew, or an oversized length
/// prefix — all detected **before** any payload allocation.
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u64, u64), ProtocolError> {
    if header[..4] != MAGIC {
        return Err(ProtocolError::BadMagic);
    }
    let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(ProtocolError::UnsupportedVersion(version));
    }
    let payload_len = u64::from_le_bytes(header[8..16].try_into().unwrap());
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(ProtocolError::Oversized(payload_len));
    }
    let sum = u64::from_le_bytes(header[16..24].try_into().unwrap());
    Ok((payload_len, sum))
}

/// Splits a complete frame into its validated payload.
fn unframe(bytes: &[u8]) -> Result<&[u8], ProtocolError> {
    if bytes.len() < HEADER_LEN {
        return Err(ProtocolError::Truncated);
    }
    let header: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().unwrap();
    let (payload_len, sum) = parse_header(header)?;
    let payload = &bytes[HEADER_LEN..];
    if payload_len != payload.len() as u64 {
        return Err(ProtocolError::Truncated);
    }
    verify_payload(payload, sum)?;
    Ok(payload)
}

/// Checks a payload against the checksum its header declared.
///
/// # Errors
///
/// [`ProtocolError::ChecksumMismatch`] when the bytes were corrupted in
/// flight.
pub fn verify_payload(payload: &[u8], declared: u64) -> Result<(), ProtocolError> {
    if checksum(payload) != declared {
        return Err(ProtocolError::ChecksumMismatch);
    }
    Ok(())
}

/// Decodes a request from a validated payload (the body after the
/// header, as returned by [`read_frame`]).
///
/// # Errors
///
/// [`ProtocolError`] on any structural fault.
pub fn decode_request_payload(payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut dec = Dec::new(payload);
    let request = match dec.u8()? {
        1 => Request::Analyze {
            program: decode_program(&mut dec)?,
            pfail: dec.f64()?,
            target_p: dec.f64()?,
            trace: dec.u64()?,
        },
        2 => {
            let count = dec.seq_len(9)?;
            let mut programs = Vec::with_capacity(count);
            for _ in 0..count {
                programs.push(decode_program(&mut dec)?);
            }
            Request::Batch {
                programs,
                pfail: dec.f64()?,
                target_p: dec.f64()?,
                trace: dec.u64()?,
            }
        }
        3 => {
            let program = decode_program(&mut dec)?;
            let count = dec.seq_len(8)?;
            let mut pfails = Vec::with_capacity(count);
            for _ in 0..count {
                pfails.push(dec.f64()?);
            }
            Request::SweepPfail {
                program,
                pfails,
                target_p: dec.f64()?,
                trace: dec.u64()?,
            }
        }
        4 => {
            let program = decode_program(&mut dec)?;
            let sets = dec.u32()?;
            let block_bytes = dec.u32()?;
            let count = dec.seq_len(4)?;
            let mut way_counts = Vec::with_capacity(count);
            for _ in 0..count {
                way_counts.push(dec.u32()?);
            }
            Request::SweepGeometry {
                program,
                sets,
                block_bytes,
                way_counts,
                target_p: dec.f64()?,
                trace: dec.u64()?,
            }
        }
        5 => Request::Stats,
        6 => Request::Shutdown,
        7 => Request::FetchEntry {
            key: dec.u64()?,
            trace: dec.u64()?,
        },
        8 => {
            let key = dec.u64()?;
            let len = dec.seq_len(1)?;
            Request::OfferEntry {
                key,
                entry: dec.take(len)?.to_vec(),
            }
        }
        9 => Request::Metrics,
        _ => return Err(ProtocolError::Malformed("request tag")),
    };
    if dec.remaining() != 0 {
        return Err(ProtocolError::Malformed("trailing bytes"));
    }
    Ok(request)
}

/// Decodes a response from a validated payload.
///
/// # Errors
///
/// [`ProtocolError`] on any structural fault.
pub fn decode_response_payload(payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut dec = Dec::new(payload);
    let response = match dec.u8()? {
        1 => Response::Analysis {
            row: decode_analysis_row(&mut dec)?,
            micros: dec.u64()?,
            trace: dec.u64()?,
            stages: decode_stage_timings(&mut dec)?,
        },
        2 => {
            let count = dec.seq_len(13)?;
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                rows.push(decode_analysis_row(&mut dec)?);
            }
            Response::Batch {
                rows,
                micros: dec.u64()?,
                trace: dec.u64()?,
                stages: decode_stage_timings(&mut dec)?,
            }
        }
        3 => {
            let name = dec.str()?;
            let served_from = decode_tier(&mut dec)?;
            let count = dec.seq_len(32)?;
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                rows.push(PfailRow {
                    pfail: dec.f64()?,
                    pwcet_none: dec.u64()?,
                    pwcet_srb: dec.u64()?,
                    pwcet_rw: dec.u64()?,
                });
            }
            Response::PfailSweep {
                name,
                served_from,
                rows,
                micros: dec.u64()?,
                trace: dec.u64()?,
                stages: decode_stage_timings(&mut dec)?,
            }
        }
        4 => {
            let name = dec.str()?;
            let served_from = decode_tier(&mut dec)?;
            let count = dec.seq_len(28)?;
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                rows.push(GeometryRow {
                    ways: dec.u32()?,
                    pwcet_none: dec.u64()?,
                    pwcet_srb: dec.u64()?,
                    pwcet_rw: dec.u64()?,
                });
            }
            Response::GeometrySweep {
                name,
                served_from,
                rows,
                micros: dec.u64()?,
                trace: dec.u64()?,
                stages: decode_stage_timings(&mut dec)?,
            }
        }
        5 => Response::Stats(Box::new(decode_stats(&mut dec)?)),
        6 => {
            let code = decode_error_code(&mut dec)?;
            let message = dec.str()?;
            // v7 appends the hint; a v6 payload simply ends here.
            let retry_after_ms = if dec.remaining() > 0 {
                Some(dec.u64()?)
            } else {
                None
            };
            Response::Error {
                code,
                message,
                retry_after_ms,
            }
        }
        7 => Response::ShutdownStarted,
        8 => {
            let key = dec.u64()?;
            let entry = match dec.u8()? {
                0 => None,
                1 => {
                    let len = dec.seq_len(1)?;
                    Some(dec.take(len)?.to_vec())
                }
                _ => return Err(ProtocolError::Malformed("entry presence flag")),
            };
            Response::Entry { key, entry }
        }
        9 => Response::OfferAck {
            stored: match dec.u8()? {
                0 => false,
                1 => true,
                _ => return Err(ProtocolError::Malformed("offer ack flag")),
            },
        },
        10 => {
            let count = dec.seq_len(16)?; // name length prefix + value
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let name = dec.str()?;
                entries.push((name, dec.u64()?));
            }
            Response::Metrics { entries }
        }
        _ => return Err(ProtocolError::Malformed("response tag")),
    };
    if dec.remaining() != 0 {
        return Err(ProtocolError::Malformed("trailing bytes"));
    }
    Ok(response)
}

/// Decodes a complete request frame (header + payload), e.g. one stored
/// in a file by `pwcet-client export`.
///
/// # Errors
///
/// [`ProtocolError`] on any header, checksum, or structural fault.
pub fn decode_request(bytes: &[u8]) -> Result<Request, ProtocolError> {
    decode_request_payload(unframe(bytes)?)
}

/// Decodes a complete response frame (header + payload).
///
/// # Errors
///
/// [`ProtocolError`] on any header, checksum, or structural fault.
pub fn decode_response(bytes: &[u8]) -> Result<Response, ProtocolError> {
    decode_response_payload(unframe(bytes)?)
}

// ---------------------------------------------------------------------------
// Stream IO
// ---------------------------------------------------------------------------

/// Reads one frame from a blocking stream and returns its validated
/// payload; `Ok(None)` on a clean end-of-stream before the first header
/// byte.
///
/// # Errors
///
/// [`WireError::Io`] on socket failure (including a disconnect
/// mid-frame, surfaced as `UnexpectedEof`), [`WireError::Protocol`] on
/// bad magic, version skew, an oversized length prefix, or a checksum
/// mismatch.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish "peer closed between frames" (clean) from "peer closed
    // mid-header" (truncation).
    let mut filled = 0;
    while filled < HEADER_LEN {
        match reader.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => return Err(ProtocolError::Truncated.into()),
            n => filled += n,
        }
    }
    let (payload_len, sum) = parse_header(&header)?;
    let mut payload = vec![0u8; payload_len as usize];
    reader.read_exact(&mut payload)?;
    verify_payload(&payload, sum)?;
    Ok(Some(payload))
}

/// Writes one already-encoded frame and flushes.
///
/// # Errors
///
/// Propagates the socket error.
pub fn write_frame(writer: &mut impl Write, frame: &[u8]) -> std::io::Result<()> {
    writer.write_all(frame)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwcet_progen::stmt;

    fn sample_program() -> Program {
        Program::new("sample")
            .with_function(
                "main",
                stmt::seq([
                    stmt::compute(8),
                    stmt::loop_(40, stmt::if_else(stmt::compute(4), stmt::call("leaf"))),
                ]),
            )
            .with_function("leaf", stmt::compute(12))
    }

    fn sample_request() -> Request {
        Request::Analyze {
            program: sample_program(),
            pfail: 1e-4,
            target_p: 1e-15,
            trace: 0x1234_5678_9abc_def0,
        }
    }

    #[test]
    fn request_variants_round_trip() {
        let requests = [
            sample_request(),
            Request::Batch {
                programs: vec![sample_program(), Program::new("empty")],
                pfail: 1e-5,
                target_p: 1e-12,
                trace: 7,
            },
            Request::SweepPfail {
                program: sample_program(),
                pfails: vec![1e-6, 1e-4, 1e-3],
                target_p: 1e-15,
                trace: 0,
            },
            Request::SweepGeometry {
                program: sample_program(),
                sets: 16,
                block_bytes: 16,
                way_counts: vec![4, 2, 1],
                target_p: 1e-15,
                trace: u64::MAX,
            },
            Request::Stats,
            Request::Shutdown,
            Request::Metrics,
            Request::FetchEntry {
                key: 0xdead_beef_cafe_f00d,
                trace: 99,
            },
            Request::OfferEntry {
                key: 42,
                entry: vec![0x50, 0x57, 0x43, 0x58, 0x00, 0xff],
            },
            Request::OfferEntry {
                key: 7,
                entry: Vec::new(),
            },
        ];
        for request in requests {
            let bytes = encode_request(&request);
            assert_eq!(decode_request(&bytes).unwrap(), request);
        }
    }

    #[test]
    fn response_variants_round_trip() {
        let row = AnalysisRow {
            name: "crc".into(),
            fault_free_wcet: 1000,
            pwcet_none: 2000,
            pwcet_srb: 1500,
            pwcet_rw: 1100,
            served_from: ReuseTier::Memory,
        };
        let stages = vec![
            StageTiming {
                stage: Stage::QueueWait,
                micros: 12,
                count: 1,
            },
            StageTiming {
                stage: Stage::Classify,
                micros: 300,
                count: 1,
            },
            StageTiming {
                stage: Stage::IlpSolve,
                micros: 88,
                count: 1,
            },
            StageTiming {
                stage: Stage::Convolve,
                micros: 9,
                count: 3,
            },
        ];
        let responses = [
            Response::Analysis {
                row: row.clone(),
                micros: 412,
                trace: 0xfeed_beef,
                stages: stages.clone(),
            },
            Response::Batch {
                rows: vec![row.clone(), row],
                micros: 999,
                trace: 0,
                stages: Vec::new(),
            },
            Response::PfailSweep {
                name: "crc".into(),
                served_from: ReuseTier::Disk,
                rows: vec![PfailRow {
                    pfail: 1e-4,
                    pwcet_none: 2000,
                    pwcet_srb: 1500,
                    pwcet_rw: 1100,
                }],
                micros: 10,
                trace: 3,
                stages: stages.clone(),
            },
            Response::GeometrySweep {
                name: "crc".into(),
                served_from: ReuseTier::Derived,
                rows: vec![GeometryRow {
                    ways: 4,
                    pwcet_none: 2000,
                    pwcet_srb: 1500,
                    pwcet_rw: 1100,
                }],
                micros: 10,
                trace: 4,
                stages,
            },
            Response::Stats(Box::new(ServiceStats {
                shards: 4,
                queue_capacity: 64,
                queued: 1,
                connections: 9,
                served: 100,
                overloads: 2,
                protocol_errors: 3,
                served_memory: 60,
                served_disk: 20,
                served_derived: 5,
                served_cold: 15,
                memory_hits: 80,
                memory_misses: 40,
                disk_hits: 20,
                disk_writes: 25,
                disk_corrupt: 0,
                derived: 5,
                cold_builds: 15,
                ilp_pivots: 420,
                ilp_dual_pivots: 17,
                ilp_bb_nodes: 96,
                ilp_warm_starts: 90,
                ilp_trivial_prunes: 2,
                classify_passes: 310,
                classify_words_touched: 88_000,
                classify_sets_skipped: 1200,
                store_bytes: 73_728,
                served_network: 7,
                network_hits: 7,
                network_misses: 3,
                network_corrupt: 1,
                network_offers: 12,
                peer_fetches_served: 9,
                peer_offers_stored: 6,
                template_hits: 11,
                basis_restores: 4,
                basis_rejects: 1,
                ilp_cold_starts: 2,
                peers: 3,
                peers_unhealthy: 1,
            })),
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "shard 2 queue full (depth 64)".into(),
                retry_after_ms: Some(320),
            },
            Response::Error {
                code: ErrorCode::Malformed,
                message: "bad tag".into(),
                retry_after_ms: None,
            },
            Response::ShutdownStarted,
            Response::Entry {
                key: 0x0123_4567_89ab_cdef,
                entry: Some(vec![1, 2, 3, 4]),
            },
            Response::Entry {
                key: 99,
                entry: None,
            },
            Response::OfferAck { stored: true },
            Response::OfferAck { stored: false },
            Response::Metrics {
                entries: vec![
                    ("request_latency_us_p50".to_string(), 412),
                    ("request_latency_us_p99".to_string(), 2800),
                    ("served".to_string(), 100),
                ],
            },
            Response::Metrics {
                entries: Vec::new(),
            },
        ];
        for response in responses {
            let bytes = encode_response(&response);
            assert_eq!(decode_response(&bytes).unwrap(), response);
        }
    }

    /// A v6 peer's frame — version 6 header, error payload with no
    /// trailing hint — still decodes on this build, with
    /// `retry_after_ms = None`; and a v7 frame carrying the hint
    /// round-trips it. This is the `MIN_VERSION` interop contract.
    #[test]
    fn v6_error_frames_decode_without_the_retry_hint() {
        // Hand-build the v6 layout: tag 6, code tag, message string.
        let mut enc = Enc::new();
        enc.u8(6);
        enc.u8(error_code_tag(ErrorCode::Overloaded));
        enc.str("shard 1 queue full (depth 64); retry later");
        let payload = enc.buf;
        let mut framed = Vec::with_capacity(HEADER_LEN + payload.len());
        framed.extend_from_slice(&MAGIC);
        framed.extend_from_slice(&6u32.to_le_bytes());
        framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        framed.extend_from_slice(&checksum(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);

        let decoded = decode_response(&framed).expect("v6 frame decodes");
        assert_eq!(
            decoded,
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "shard 1 queue full (depth 64); retry later".into(),
                retry_after_ms: None,
            }
        );

        // The v7 encoding of the same refusal carries the hint through.
        let v7 = Response::Error {
            code: ErrorCode::Overloaded,
            message: "shard 1 queue full (depth 64); retry later".into(),
            retry_after_ms: Some(640),
        };
        let bytes = encode_response(&v7);
        assert_eq!(decode_response(&bytes).expect("v7 frame decodes"), v7);
    }

    #[test]
    fn header_corruptions_are_detected() {
        let bytes = encode_request(&sample_request());

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(decode_request(&bad_magic), Err(ProtocolError::BadMagic));

        let mut future = bytes.clone();
        future[4] = 99;
        assert_eq!(
            decode_request(&future),
            Err(ProtocolError::UnsupportedVersion(99))
        );

        let mut oversized = bytes.clone();
        oversized[8..16].copy_from_slice(&(MAX_PAYLOAD_BYTES + 1).to_le_bytes());
        assert_eq!(
            decode_request(&oversized),
            Err(ProtocolError::Oversized(MAX_PAYLOAD_BYTES + 1))
        );

        assert_eq!(
            decode_request(&bytes[..bytes.len() - 3]),
            Err(ProtocolError::Truncated)
        );
        assert_eq!(decode_request(&bytes[..7]), Err(ProtocolError::Truncated));
    }

    #[test]
    fn payload_bit_flips_fail_the_checksum() {
        let bytes = encode_request(&sample_request());
        for pos in [HEADER_LEN, HEADER_LEN + 9, bytes.len() / 2, bytes.len() - 1] {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 0x01;
            assert_eq!(
                decode_request(&flipped),
                Err(ProtocolError::ChecksumMismatch),
                "flip at {pos}"
            );
        }
    }

    #[test]
    fn unknown_tags_are_malformed() {
        let mut enc = Enc::new();
        enc.u8(200);
        let framed = frame(enc.buf);
        assert!(matches!(
            decode_request(&framed),
            Err(ProtocolError::Malformed("request tag"))
        ));
        let mut enc = Enc::new();
        enc.u8(200);
        let framed = frame(enc.buf);
        assert!(matches!(
            decode_response(&framed),
            Err(ProtocolError::Malformed("response tag"))
        ));
    }

    #[test]
    fn statement_nesting_is_depth_limited() {
        let mut deep = stmt::compute(1);
        for _ in 0..(MAX_STMT_DEPTH + 2) {
            deep = stmt::loop_(2, deep);
        }
        let request = Request::Analyze {
            program: Program::new("deep").with_function("main", deep),
            pfail: 1e-4,
            target_p: 1e-15,
            trace: 0,
        };
        // Encoding succeeds (the DSL's own depth cap is the server's
        // problem at validate time); the decoder must refuse the nesting
        // rather than recurse unboundedly.
        let bytes = encode_request(&request);
        assert_eq!(
            decode_request(&bytes),
            Err(ProtocolError::Malformed("statement nesting too deep"))
        );
    }

    #[test]
    fn absurd_sequence_lengths_are_truncation_not_allocation() {
        // A batch claiming 2^60 programs in a 40-byte payload must fail
        // fast without attempting the allocation.
        let mut enc = Enc::new();
        enc.u8(2);
        enc.u64(1u64 << 60);
        let framed = frame(enc.buf);
        assert_eq!(decode_request(&framed), Err(ProtocolError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut enc = Enc::new();
        enc.u8(5);
        enc.u8(0xaa);
        let framed = frame(enc.buf);
        assert_eq!(
            decode_request(&framed),
            Err(ProtocolError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn read_frame_distinguishes_clean_eof_from_truncation() {
        let bytes = encode_request(&Request::Stats);
        let mut cursor = std::io::Cursor::new(bytes.clone());
        let payload = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(decode_request_payload(&payload).unwrap(), Request::Stats);
        // Clean EOF: no bytes at all.
        assert!(matches!(read_frame(&mut cursor), Ok(None)));
        // Truncation: a few header bytes then EOF.
        let mut partial = std::io::Cursor::new(bytes[..10].to_vec());
        assert!(matches!(
            read_frame(&mut partial),
            Err(WireError::Protocol(ProtocolError::Truncated))
        ));
        // Mid-payload EOF surfaces as an IO error (a Stats frame's
        // payload is a single byte, so use a request with a real body).
        let long = encode_request(&sample_request());
        let mut mid = std::io::Cursor::new(long[..long.len() - 2].to_vec());
        assert!(matches!(read_frame(&mut mid), Err(WireError::Io(_))));
    }
}
