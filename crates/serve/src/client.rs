//! Blocking client for the analysis service.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use pwcet_progen::Program;

use crate::protocol::{self, ProtocolError, Request, Response, ServiceStats, WireError};
use crate::server::FRAME_DEADLINE;

/// Socket deadlines of a [`Client`]. Every phase of a request — connect,
/// write, read — is bounded, so a hung or unreachable server surfaces as
/// [`WireError::Timeout`] instead of blocking the caller forever. The
/// defaults mirror the server's own [`FRAME_DEADLINE`], so neither side
/// outwaits the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection (per resolved address).
    pub connect_timeout: Duration,
    /// Bound on any single read while waiting for a response frame.
    pub read_timeout: Duration,
    /// Bound on any single write of a request frame.
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self::with_deadline(FRAME_DEADLINE)
    }
}

impl ClientConfig {
    /// One deadline for all three phases — the common case; the peer
    /// layer uses a short one so a dead node costs milliseconds, not the
    /// full frame deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self {
            connect_timeout: deadline,
            read_timeout: deadline,
            write_timeout: deadline,
        }
    }
}

/// Maps a socket error to [`WireError::Timeout`] when it is a deadline
/// expiry (`WouldBlock` on Unix `SO_RCVTIMEO`/`SO_SNDTIMEO`, `TimedOut`
/// elsewhere), to [`WireError::Io`] otherwise.
fn classify_io(e: io::Error) -> WireError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => WireError::Timeout,
        _ => WireError::Io(e),
    }
}

fn classify_wire(e: WireError) -> WireError {
    match e {
        WireError::Io(io) => classify_io(io),
        other => other,
    }
}

/// One connection to a `pwcet-serve` instance. Requests are synchronous:
/// one frame out, one frame back.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server with the [default
    /// deadlines](ClientConfig::default).
    ///
    /// # Errors
    ///
    /// Propagates the socket error (a timeout surfaces as
    /// `TimedOut`/`WouldBlock`).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit deadlines. Tries every resolved address
    /// with the configured connect timeout and returns the last error
    /// when none accepts.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Self> {
        let mut last_err = None;
        for addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, config.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(config.read_timeout))?;
                    stream.set_write_timeout(Some(config.write_timeout))?;
                    return Ok(Self { stream });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    /// Sends one request and blocks for its response, bounded by the
    /// configured deadlines.
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when the server does not answer (or accept
    /// the request) within the deadline, [`WireError::Io`] when the
    /// connection fails (including the server closing it after a
    /// protocol error), [`WireError::Protocol`] when the response frame
    /// itself is corrupt.
    pub fn request(&mut self, request: &Request) -> Result<Response, WireError> {
        protocol::write_frame(&mut self.stream, &protocol::encode_request(request))
            .map_err(classify_io)?;
        match protocol::read_frame(&mut self.stream).map_err(classify_wire)? {
            Some(payload) => Ok(protocol::decode_response_payload(&payload)?),
            None => Err(WireError::Protocol(ProtocolError::Truncated)),
        }
    }

    /// Analyzes one program under the server's configuration, untraced.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request).
    pub fn analyze(
        &mut self,
        program: Program,
        pfail: f64,
        target_p: f64,
    ) -> Result<Response, WireError> {
        self.analyze_traced(program, pfail, target_p, 0)
    }

    /// Analyzes one program under a client-minted trace ID (0 =
    /// untraced): the server's response echoes the ID alongside its
    /// per-stage timing breakdown, and every span the request causes —
    /// locally and on fleet peers it fetches from — is recorded under
    /// it.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request).
    pub fn analyze_traced(
        &mut self,
        program: Program,
        pfail: f64,
        target_p: f64,
        trace: u64,
    ) -> Result<Response, WireError> {
        self.request(&Request::Analyze {
            program,
            pfail,
            target_p,
            trace,
        })
    }

    /// Fetches the serialized reuse-plane entry for `key` from this node
    /// (the fleet's network-tier verb), propagating the requester's
    /// trace ID (0 = untraced) so the serving node's `peer_serve` span
    /// lands under the same trace. `Ok(None)` is an authoritative miss.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request); also [`WireError::Protocol`]
    /// when the server answers something other than an entry for `key`.
    pub fn fetch_entry(&mut self, key: u64, trace: u64) -> Result<Option<Vec<u8>>, WireError> {
        match self.request(&Request::FetchEntry { key, trace })? {
            Response::Entry { key: echoed, entry } if echoed == key => Ok(entry),
            _ => Err(WireError::Protocol(ProtocolError::Malformed(
                "expected an entry response for the requested key",
            ))),
        }
    }

    /// Offers a serialized entry to this node (the key's ring owner).
    /// Returns whether the node stored it.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request); also [`WireError::Protocol`]
    /// when the server answers something other than an offer ack.
    pub fn offer_entry(&mut self, key: u64, entry: &[u8]) -> Result<bool, WireError> {
        match self.request(&Request::OfferEntry {
            key,
            entry: entry.to_vec(),
        })? {
            Response::OfferAck { stored } => Ok(stored),
            _ => Err(WireError::Protocol(ProtocolError::Malformed(
                "expected an offer acknowledgement",
            ))),
        }
    }

    /// Fetches the service counters.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request); also
    /// [`WireError::Protocol`] when the server answers something other
    /// than stats.
    pub fn stats(&mut self) -> Result<ServiceStats, WireError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(*stats),
            _ => Err(WireError::Protocol(ProtocolError::Malformed(
                "expected a stats response",
            ))),
        }
    }

    /// Fetches the full self-describing metrics table: legacy counters
    /// by their frozen names plus every registry instrument, histograms
    /// expanded to exact `_count/_sum/_mean/_p50/_p95/_p99/_max` rows.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request); also
    /// [`WireError::Protocol`] when the server answers something other
    /// than a metrics table.
    pub fn metrics(&mut self) -> Result<Vec<(String, u64)>, WireError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { entries } => Ok(entries),
            _ => Err(WireError::Protocol(ProtocolError::Malformed(
                "expected a metrics response",
            ))),
        }
    }

    /// Asks the server to drain and exit. The connection is closed by
    /// the server after the acknowledgement.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request).
    pub fn shutdown_server(&mut self) -> Result<(), WireError> {
        match self.request(&Request::Shutdown)? {
            Response::ShutdownStarted => Ok(()),
            _ => Err(WireError::Protocol(ProtocolError::Malformed(
                "expected a shutdown acknowledgement",
            ))),
        }
    }
}
