//! Blocking client for the analysis service, plus the resilient
//! multi-endpoint [`FleetClient`] built on top of it.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use pwcet_progen::Program;

use crate::protocol::{self, ErrorCode, ProtocolError, Request, Response, ServiceStats, WireError};
use crate::server::FRAME_DEADLINE;

/// Socket deadlines of a [`Client`]. Every phase of a request — connect,
/// write, read — is bounded, so a hung or unreachable server surfaces as
/// [`WireError::Timeout`] instead of blocking the caller forever. The
/// defaults mirror the server's own [`FRAME_DEADLINE`], so neither side
/// outwaits the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection (per resolved address).
    pub connect_timeout: Duration,
    /// Bound on any single read while waiting for a response frame.
    pub read_timeout: Duration,
    /// Bound on any single write of a request frame.
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self::with_deadline(FRAME_DEADLINE)
    }
}

impl ClientConfig {
    /// One deadline for all three phases — the common case; the peer
    /// layer uses a short one so a dead node costs milliseconds, not the
    /// full frame deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self {
            connect_timeout: deadline,
            read_timeout: deadline,
            write_timeout: deadline,
        }
    }
}

/// Maps a socket error to [`WireError::Timeout`] when it is a deadline
/// expiry (`WouldBlock` on Unix `SO_RCVTIMEO`/`SO_SNDTIMEO`, `TimedOut`
/// elsewhere), to [`WireError::Io`] otherwise.
fn classify_io(e: io::Error) -> WireError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => WireError::Timeout,
        _ => WireError::Io(e),
    }
}

fn classify_wire(e: WireError) -> WireError {
    match e {
        WireError::Io(io) => classify_io(io),
        other => other,
    }
}

/// One connection to a `pwcet-serve` instance. Requests are synchronous:
/// one frame out, one frame back.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server with the [default
    /// deadlines](ClientConfig::default).
    ///
    /// # Errors
    ///
    /// Propagates the socket error (a timeout surfaces as
    /// `TimedOut`/`WouldBlock`).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit deadlines. Tries every resolved address
    /// with the configured connect timeout and returns the last error
    /// when none accepts.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Self> {
        let mut last_err = None;
        for addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, config.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(config.read_timeout))?;
                    stream.set_write_timeout(Some(config.write_timeout))?;
                    return Ok(Self { stream });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    /// Sends one request and blocks for its response, bounded by the
    /// configured deadlines.
    ///
    /// # Errors
    ///
    /// [`WireError::Timeout`] when the server does not answer (or accept
    /// the request) within the deadline, [`WireError::Io`] when the
    /// connection fails (including the server closing it after a
    /// protocol error), [`WireError::Protocol`] when the response frame
    /// itself is corrupt.
    pub fn request(&mut self, request: &Request) -> Result<Response, WireError> {
        protocol::write_frame(&mut self.stream, &protocol::encode_request(request))
            .map_err(classify_io)?;
        match protocol::read_frame(&mut self.stream).map_err(classify_wire)? {
            Some(payload) => Ok(protocol::decode_response_payload(&payload)?),
            None => Err(WireError::Protocol(ProtocolError::Truncated)),
        }
    }

    /// Analyzes one program under the server's configuration, untraced.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request).
    pub fn analyze(
        &mut self,
        program: Program,
        pfail: f64,
        target_p: f64,
    ) -> Result<Response, WireError> {
        self.analyze_traced(program, pfail, target_p, 0)
    }

    /// Analyzes one program under a client-minted trace ID (0 =
    /// untraced): the server's response echoes the ID alongside its
    /// per-stage timing breakdown, and every span the request causes —
    /// locally and on fleet peers it fetches from — is recorded under
    /// it.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request).
    pub fn analyze_traced(
        &mut self,
        program: Program,
        pfail: f64,
        target_p: f64,
        trace: u64,
    ) -> Result<Response, WireError> {
        self.request(&Request::Analyze {
            program,
            pfail,
            target_p,
            trace,
        })
    }

    /// Fetches the serialized reuse-plane entry for `key` from this node
    /// (the fleet's network-tier verb), propagating the requester's
    /// trace ID (0 = untraced) so the serving node's `peer_serve` span
    /// lands under the same trace. `Ok(None)` is an authoritative miss.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request); also [`WireError::Protocol`]
    /// when the server answers something other than an entry for `key`.
    pub fn fetch_entry(&mut self, key: u64, trace: u64) -> Result<Option<Vec<u8>>, WireError> {
        match self.request(&Request::FetchEntry { key, trace })? {
            Response::Entry { key: echoed, entry } if echoed == key => Ok(entry),
            _ => Err(WireError::Protocol(ProtocolError::Malformed(
                "expected an entry response for the requested key",
            ))),
        }
    }

    /// Offers a serialized entry to this node (the key's ring owner).
    /// Returns whether the node stored it.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request); also [`WireError::Protocol`]
    /// when the server answers something other than an offer ack.
    pub fn offer_entry(&mut self, key: u64, entry: &[u8]) -> Result<bool, WireError> {
        match self.request(&Request::OfferEntry {
            key,
            entry: entry.to_vec(),
        })? {
            Response::OfferAck { stored } => Ok(stored),
            _ => Err(WireError::Protocol(ProtocolError::Malformed(
                "expected an offer acknowledgement",
            ))),
        }
    }

    /// Fetches the service counters.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request); also
    /// [`WireError::Protocol`] when the server answers something other
    /// than stats.
    pub fn stats(&mut self) -> Result<ServiceStats, WireError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(*stats),
            _ => Err(WireError::Protocol(ProtocolError::Malformed(
                "expected a stats response",
            ))),
        }
    }

    /// Fetches the full self-describing metrics table: legacy counters
    /// by their frozen names plus every registry instrument, histograms
    /// expanded to exact `_count/_sum/_mean/_p50/_p95/_p99/_max` rows.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request); also
    /// [`WireError::Protocol`] when the server answers something other
    /// than a metrics table.
    pub fn metrics(&mut self) -> Result<Vec<(String, u64)>, WireError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { entries } => Ok(entries),
            _ => Err(WireError::Protocol(ProtocolError::Malformed(
                "expected a metrics response",
            ))),
        }
    }

    /// Asks the server to drain and exit. The connection is closed by
    /// the server after the acknowledgement.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request).
    pub fn shutdown_server(&mut self) -> Result<(), WireError> {
        match self.request(&Request::Shutdown)? {
            Response::ShutdownStarted => Ok(()),
            _ => Err(WireError::Protocol(ProtocolError::Malformed(
                "expected a shutdown acknowledgement",
            ))),
        }
    }
}

/// Retry tuning for a [`FleetClient`]: how many total attempts a request
/// gets and how the backoff between them grows. Backoff doubles per
/// attempt from `base_backoff` up to `max_backoff`, jittered
/// deterministically from `seed` (splitmix64 — no global RNG state, so
/// two clients built with the same seed sleep the same schedule).
///
/// An `Overloaded` refusal that carries the server's `retry_after_ms`
/// hint overrides the computed backoff (still capped at `max_backoff`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per idempotent request (1 = no retries).
    pub max_attempts: u32,
    /// First backoff step; doubles per subsequent attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling, also applied to server `retry_after_ms` hints.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            seed: 0x7077_6371, // "pwcq"
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — every request gets one attempt.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }
}

/// The splitmix64 output mixer, used for backoff jitter. Local copy so
/// the client carries no dependency on the chaos crate.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Attempt accounting for one [`FleetClient`] (monotonic over its
/// lifetime, across all requests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Request attempts sent (first tries included).
    pub attempts: u64,
    /// Attempts beyond the first (retries after overload, wire damage,
    /// or transport failure).
    pub retries: u64,
    /// Retries that moved to a different endpoint.
    pub failovers: u64,
}

/// A resilient front over one *or more* `pwcet-serve` endpoints.
///
/// Idempotent requests (everything except [`Request::Shutdown`] — the
/// service's analysis verbs are pure functions of their request) are
/// retried under the [`RetryPolicy`]:
///
/// * **Transport failure** (connect refusal, timeout, reset): the client
///   fails over to the next endpoint in the list and retries there.
/// * **`Overloaded` refusal**: the client honors the server's
///   `retry_after_ms` hint (capped at the policy's `max_backoff`) and
///   retries the *same* endpoint — that is where the queue it is waiting
///   on drains, and where the reuse plane is warm.
/// * **`ShuttingDown` refusal**: treated like a transport failure — the
///   endpoint is going away, try the next one.
/// * **`Malformed` refusal**: the client framed the request bytes
///   itself, so a decode refusal means the frame was damaged in flight;
///   the connection is dropped and the request retried fresh.
///
/// `Shutdown` is never retried or failed over (it would drain a second,
/// healthy server). Non-retryable refusals (`InvalidRequest`,
/// `Analysis`) return immediately — repeating them cannot help.
pub struct FleetClient {
    endpoints: Vec<String>,
    config: ClientConfig,
    policy: RetryPolicy,
    current: usize,
    conn: Option<Client>,
    stats: RetryStats,
    jitter_calls: u64,
}

impl std::fmt::Debug for FleetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetClient")
            .field("endpoints", &self.endpoints)
            .field("current", &self.current)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl FleetClient {
    /// A fleet client over `endpoints` with default deadlines and retry
    /// policy. Connections are dialed lazily on the first request.
    ///
    /// # Panics
    ///
    /// Panics when `endpoints` is empty — there is nothing to dial.
    pub fn new(endpoints: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Self::with(endpoints, ClientConfig::default(), RetryPolicy::default())
    }

    /// A fleet client with explicit deadlines and retry policy.
    ///
    /// # Panics
    ///
    /// Panics when `endpoints` is empty.
    pub fn with(
        endpoints: impl IntoIterator<Item = impl Into<String>>,
        config: ClientConfig,
        policy: RetryPolicy,
    ) -> Self {
        let endpoints: Vec<String> = endpoints.into_iter().map(Into::into).collect();
        assert!(!endpoints.is_empty(), "a fleet client needs an endpoint");
        Self {
            endpoints,
            config,
            policy,
            current: 0,
            conn: None,
            stats: RetryStats::default(),
            jitter_calls: 0,
        }
    }

    /// The endpoint the next attempt will use.
    pub fn current_endpoint(&self) -> &str {
        &self.endpoints[self.current]
    }

    /// Attempt accounting since construction.
    pub fn retry_stats(&self) -> RetryStats {
        self.stats
    }

    /// Everything except shutdown is safe to repeat: the analysis verbs
    /// are pure functions of the request, stats/metrics reads are
    /// snapshots, and re-offering an entry the fleet already stored is a
    /// no-op by content key.
    fn is_idempotent(request: &Request) -> bool {
        !matches!(request, Request::Shutdown)
    }

    /// Exponential backoff for the gap *before* attempt `attempt + 1`,
    /// jittered into `[base/2, base]` so a thundering herd of retrying
    /// clients decorrelates. A server `retry_after_ms` hint replaces the
    /// computed delay (both are capped at the policy ceiling).
    fn backoff_delay(&mut self, attempt: u32, hint: Option<Duration>) -> Duration {
        if let Some(hint) = hint {
            return hint.min(self.policy.max_backoff);
        }
        let doubled = self
            .policy
            .base_backoff
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
            .min(self.policy.max_backoff);
        self.jitter_calls += 1;
        let roll = mix64(self.policy.seed.wrapping_add(self.jitter_calls));
        let nanos = doubled.as_nanos().min(u128::from(u64::MAX)) as u64;
        Duration::from_nanos(nanos / 2 + roll % (nanos / 2 + 1))
    }

    fn sleep_before_retry(&mut self, attempt: u32, hint: Option<Duration>) {
        let delay = self.backoff_delay(attempt, hint);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    /// Rotates to the next endpoint after a transport-level failure.
    fn fail_over(&mut self) {
        self.conn = None;
        if self.endpoints.len() > 1 {
            self.current = (self.current + 1) % self.endpoints.len();
            self.stats.failovers += 1;
        }
    }

    /// One attempt on the current endpoint, dialing if needed. Any
    /// failure invalidates the cached connection.
    fn try_once(&mut self, request: &Request) -> Result<Response, WireError> {
        if self.conn.is_none() {
            let client = Client::connect_with(self.endpoints[self.current].as_str(), self.config)
                .map_err(WireError::Io)?;
            self.conn = Some(client);
        }
        let client = self.conn.as_mut().expect("connection just established");
        let result = client.request(request);
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    /// Sends one request with retry and failover per the policy; see the
    /// [type docs](Self) for the per-outcome handling.
    ///
    /// # Errors
    ///
    /// The last attempt's [`WireError`] when every attempt failed
    /// transport. Server *refusals* are `Ok(Response::Error { .. })`,
    /// returned once retries are exhausted (or immediately when the code
    /// is not retryable).
    pub fn request(&mut self, request: &Request) -> Result<Response, WireError> {
        let attempts = if Self::is_idempotent(request) {
            self.policy.max_attempts.max(1)
        } else {
            1
        };
        let mut outcome = Err(WireError::Timeout);
        for attempt in 0..attempts {
            self.stats.attempts += 1;
            if attempt > 0 {
                self.stats.retries += 1;
            }
            outcome = self.try_once(request);
            let last = attempt + 1 == attempts;
            match &outcome {
                Ok(Response::Error {
                    code: ErrorCode::Overloaded,
                    retry_after_ms,
                    ..
                }) if !last => {
                    let hint = retry_after_ms.map(Duration::from_millis);
                    self.sleep_before_retry(attempt, hint);
                }
                Ok(Response::Error {
                    code: ErrorCode::Malformed,
                    ..
                }) if !last => {
                    self.conn = None;
                    self.sleep_before_retry(attempt, None);
                }
                Ok(Response::Error {
                    code: ErrorCode::ShuttingDown,
                    ..
                }) if !last => {
                    self.fail_over();
                    self.sleep_before_retry(attempt, None);
                }
                Ok(_) => return outcome,
                Err(_) if !last => {
                    self.fail_over();
                    self.sleep_before_retry(attempt, None);
                }
                Err(_) => {}
            }
        }
        outcome
    }

    /// Analyzes one program, traced (0 = untraced), with retry/failover.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request).
    pub fn analyze_traced(
        &mut self,
        program: Program,
        pfail: f64,
        target_p: f64,
        trace: u64,
    ) -> Result<Response, WireError> {
        self.request(&Request::Analyze {
            program,
            pfail,
            target_p,
            trace,
        })
    }

    /// Fetches the service counters with retry/failover.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request); also [`WireError::Protocol`]
    /// when the server answers something other than stats.
    pub fn stats(&mut self) -> Result<ServiceStats, WireError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(*stats),
            _ => Err(WireError::Protocol(ProtocolError::Malformed(
                "expected a stats response",
            ))),
        }
    }

    /// Fetches the full metrics table with retry/failover.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request); also [`WireError::Protocol`]
    /// when the server answers something other than a metrics table.
    pub fn metrics(&mut self) -> Result<Vec<(String, u64)>, WireError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { entries } => Ok(entries),
            _ => Err(WireError::Protocol(ProtocolError::Malformed(
                "expected a metrics response",
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_per_seed_and_bounded() {
        let mut a = FleetClient::with(
            ["127.0.0.1:1"],
            ClientConfig::default(),
            RetryPolicy::default(),
        );
        let mut b = FleetClient::with(
            ["127.0.0.1:1"],
            ClientConfig::default(),
            RetryPolicy::default(),
        );
        for attempt in 0..8 {
            let da = a.backoff_delay(attempt, None);
            let db = b.backoff_delay(attempt, None);
            assert_eq!(da, db, "same seed, same schedule");
            assert!(da <= RetryPolicy::default().max_backoff);
        }
        let mut c = FleetClient::with(
            ["127.0.0.1:1"],
            ClientConfig::default(),
            RetryPolicy {
                seed: 99,
                ..RetryPolicy::default()
            },
        );
        let diverged = (0..8).any(|i| a.backoff_delay(i, None) != c.backoff_delay(i, None));
        assert!(diverged, "different seeds should jitter differently");
    }

    #[test]
    fn server_hint_overrides_backoff_but_respects_ceiling() {
        let mut client = FleetClient::with(
            ["127.0.0.1:1"],
            ClientConfig::default(),
            RetryPolicy::default(),
        );
        assert_eq!(
            client.backoff_delay(0, Some(Duration::from_millis(120))),
            Duration::from_millis(120)
        );
        assert_eq!(
            client.backoff_delay(0, Some(Duration::from_secs(3600))),
            RetryPolicy::default().max_backoff
        );
    }

    #[test]
    fn shutdown_is_not_idempotent() {
        assert!(!FleetClient::is_idempotent(&Request::Shutdown));
        assert!(FleetClient::is_idempotent(&Request::Stats));
        assert!(FleetClient::is_idempotent(&Request::Metrics));
    }

    #[test]
    fn failover_rotates_endpoints() {
        let mut client = FleetClient::new(["127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"]);
        assert_eq!(client.current_endpoint(), "127.0.0.1:1");
        client.fail_over();
        assert_eq!(client.current_endpoint(), "127.0.0.1:2");
        client.fail_over();
        client.fail_over();
        assert_eq!(client.current_endpoint(), "127.0.0.1:1");
        assert_eq!(client.retry_stats().failovers, 3);
    }

    #[test]
    fn single_endpoint_failover_stays_put_and_is_not_counted() {
        let mut client = FleetClient::new(["127.0.0.1:1"]);
        client.fail_over();
        assert_eq!(client.current_endpoint(), "127.0.0.1:1");
        assert_eq!(client.retry_stats().failovers, 0);
    }
}
