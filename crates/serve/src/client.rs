//! Blocking client for the analysis service.

use std::net::{TcpStream, ToSocketAddrs};

use pwcet_progen::Program;

use crate::protocol::{self, ProtocolError, Request, Response, ServiceStats, WireError};

/// One connection to a `pwcet-serve` instance. Requests are synchronous:
/// one frame out, one frame back.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the connection fails (including the server
    /// closing it after a protocol error), [`WireError::Protocol`] when
    /// the response frame itself is corrupt.
    pub fn request(&mut self, request: &Request) -> Result<Response, WireError> {
        protocol::write_frame(&mut self.stream, &protocol::encode_request(request))?;
        match protocol::read_frame(&mut self.stream)? {
            Some(payload) => Ok(protocol::decode_response_payload(&payload)?),
            None => Err(WireError::Protocol(ProtocolError::Truncated)),
        }
    }

    /// Analyzes one program under the server's configuration.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request).
    pub fn analyze(
        &mut self,
        program: Program,
        pfail: f64,
        target_p: f64,
    ) -> Result<Response, WireError> {
        self.request(&Request::Analyze {
            program,
            pfail,
            target_p,
        })
    }

    /// Fetches the service counters.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request); also
    /// [`WireError::Protocol`] when the server answers something other
    /// than stats.
    pub fn stats(&mut self) -> Result<ServiceStats, WireError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(WireError::Protocol(ProtocolError::Malformed(
                "expected a stats response",
            ))),
        }
    }

    /// Asks the server to drain and exit. The connection is closed by
    /// the server after the acknowledgement.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request).
    pub fn shutdown_server(&mut self) -> Result<(), WireError> {
        match self.request(&Request::Shutdown)? {
            Response::ShutdownStarted => Ok(()),
            _ => Err(WireError::Protocol(ProtocolError::Malformed(
                "expected a shutdown acknowledgement",
            ))),
        }
    }
}
