//! The sharded, bounded work queue behind the server.
//!
//! Jobs are hashed onto `N` shards; each shard owns **one worker thread**
//! and a bounded FIFO queue. Because a given key always lands on the
//! same shard and a shard executes strictly in order, all work for one
//! program is serialized — the first (cold) analysis warms the shared
//! reuse plane and every queued duplicate behind it is answered from the
//! memory tier — while distinct programs on distinct shards proceed
//! concurrently.
//!
//! Backpressure is explicit: a submission to a full queue fails
//! immediately with [`SubmitError::Overloaded`] (carrying the job back to
//! the caller) instead of blocking the accept path; the server turns that
//! into an overload response the client can retry.
//!
//! Shutdown **drains**: new submissions are refused with
//! [`SubmitError::ShuttingDown`], but every job already queued is still
//! executed before the workers exit, so in-flight requests always get
//! their response.
//!
//! Queue locks recover from poisoning: the server catches panics inside
//! the *job* (`catch_unwind` around the handler's analysis), but a panic
//! on any other worker path must not wedge the shard — a poisoned queue
//! mutex holds plain `VecDeque` state that is valid at every await
//! point, so every lock here takes `PoisonError::into_inner` instead of
//! propagating the poison to innocent submitters.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Why a submission was refused. The rejected job rides back to the
/// caller so it can be answered (or retried) without cloning.
#[derive(Debug)]
pub enum SubmitError<T> {
    /// The target shard's queue is at capacity.
    Overloaded {
        /// The refused job.
        job: T,
        /// The shard that was full.
        shard: usize,
        /// Its queue depth at refusal time (== capacity).
        depth: usize,
    },
    /// The pool is draining and accepts no new work.
    ShuttingDown {
        /// The refused job.
        job: T,
    },
}

struct ShardQueue<T> {
    jobs: VecDeque<T>,
    shutdown: bool,
}

struct ShardState<T> {
    queue: Mutex<ShardQueue<T>>,
    ready: Condvar,
}

/// A fixed set of single-worker shards with bounded queues. See the
/// [module docs](self) for the scheduling and shutdown contract.
pub struct ShardPool<T: Send + 'static> {
    shards: Vec<Arc<ShardState<T>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    capacity: usize,
    processed: Arc<AtomicU64>,
}

impl<T: Send + 'static> ShardPool<T> {
    /// Spawns `shards` workers, each running `handler(shard_index, job)`
    /// for every job its queue receives. `capacity` bounds each queue.
    ///
    /// # Panics
    ///
    /// Panics when `shards` or `capacity` is zero.
    pub fn new<F>(shards: usize, capacity: usize, handler: F) -> Self
    where
        F: Fn(usize, T) + Send + Sync + 'static,
    {
        assert!(shards > 0, "a pool needs at least one shard");
        assert!(capacity > 0, "a zero-capacity queue rejects everything");
        let handler = Arc::new(handler);
        let processed = Arc::new(AtomicU64::new(0));
        let states: Vec<Arc<ShardState<T>>> = (0..shards)
            .map(|_| {
                Arc::new(ShardState {
                    queue: Mutex::new(ShardQueue {
                        jobs: VecDeque::new(),
                        shutdown: false,
                    }),
                    ready: Condvar::new(),
                })
            })
            .collect();
        let workers = states
            .iter()
            .enumerate()
            .map(|(index, state)| {
                let state = Arc::clone(state);
                let handler = Arc::clone(&handler);
                let processed = Arc::clone(&processed);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut queue = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
                        loop {
                            if let Some(job) = queue.jobs.pop_front() {
                                break Some(job);
                            }
                            if queue.shutdown {
                                break None;
                            }
                            queue = state
                                .ready
                                .wait(queue)
                                .unwrap_or_else(PoisonError::into_inner);
                        }
                    };
                    match job {
                        Some(job) => {
                            handler(index, job);
                            processed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => return,
                    }
                })
            })
            .collect();
        Self {
            shards: states,
            workers: Mutex::new(workers),
            capacity,
            processed,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The shard a key is routed to (stable for the pool's lifetime).
    pub fn shard_of(&self, key: u64) -> usize {
        (key % self.shards.len() as u64) as usize
    }

    /// Enqueues `job` on the shard owning `key`.
    ///
    /// Returns the shard index on success.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when that shard's queue is full,
    /// [`SubmitError::ShuttingDown`] after [`shutdown`](Self::shutdown)
    /// began — both return the job to the caller.
    pub fn submit(&self, key: u64, job: T) -> Result<usize, SubmitError<T>> {
        let shard = self.shard_of(key);
        let state = &self.shards[shard];
        let mut queue = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if queue.shutdown {
            return Err(SubmitError::ShuttingDown { job });
        }
        if queue.jobs.len() >= self.capacity {
            let depth = queue.jobs.len();
            return Err(SubmitError::Overloaded { job, shard, depth });
        }
        queue.jobs.push_back(job);
        state.ready.notify_one();
        Ok(shard)
    }

    /// Jobs currently queued across all shards (excluding the one each
    /// worker may be executing).
    pub fn queued(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.queue
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .jobs
                    .len()
            })
            .sum()
    }

    /// Jobs completed since the pool started.
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Drains and stops the pool: refuses new submissions, lets every
    /// queued job run to completion, and joins the workers. Idempotent.
    /// Returns the total number of jobs processed over the pool's
    /// lifetime.
    pub fn shutdown(&self) -> u64 {
        for state in &self.shards {
            let mut queue = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
            queue.shutdown = true;
            state.ready.notify_all();
        }
        let workers =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for worker in workers {
            let _ = worker.join();
        }
        self.processed()
    }
}

impl<T: Send + 'static> Drop for ShardPool<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn same_key_routes_to_the_same_shard() {
        let pool: ShardPool<u64> = ShardPool::new(4, 8, |_, _| {});
        for key in [0u64, 1, 17, u64::MAX, 0xdead_beef] {
            assert_eq!(pool.shard_of(key), pool.shard_of(key));
            assert!(pool.shard_of(key) < 4);
        }
        // Distinct residues land on distinct shards.
        assert_ne!(pool.shard_of(0), pool.shard_of(1));
        pool.shutdown();
    }

    #[test]
    fn jobs_on_one_shard_run_in_submission_order() {
        let (tx, rx) = mpsc::channel::<u32>();
        let pool: ShardPool<u32> = ShardPool::new(2, 64, move |_, job| {
            tx.send(job).unwrap();
        });
        for i in 0..32 {
            pool.submit(0, i).unwrap(); // all on shard 0
        }
        pool.shutdown();
        let order: Vec<u32> = rx.try_iter().collect();
        assert_eq!(order, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn full_queue_overloads_deterministically() {
        // Gate the worker so the first job blocks in the handler; the
        // queue then holds exactly `capacity` jobs and the next submit
        // must be refused with the shard's depth.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let pool: ShardPool<u32> = ShardPool::new(1, 2, move |_, _| {
            gate_rx.lock().unwrap().recv().unwrap();
        });
        pool.submit(0, 0).unwrap(); // picked up by the worker, blocks
                                    // Give the worker a moment to pop the first job.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.queued() > 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        pool.submit(0, 1).unwrap();
        pool.submit(0, 2).unwrap();
        match pool.submit(0, 3) {
            Err(SubmitError::Overloaded { job, shard, depth }) => {
                assert_eq!((job, shard, depth), (3, 0, 2));
            }
            other => panic!("expected overload, got {other:?}"),
        }
        // Unblock all three jobs and drain.
        for _ in 0..3 {
            gate_tx.send(()).unwrap();
        }
        assert_eq!(pool.shutdown(), 3);
    }

    #[test]
    fn shutdown_drains_queued_jobs_then_refuses_new_ones() {
        let (tx, rx) = mpsc::channel::<u32>();
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let pool: ShardPool<u32> = ShardPool::new(1, 16, move |_, job| {
            gate_rx.lock().unwrap().recv().unwrap();
            tx.send(job).unwrap();
        });
        for i in 0..5 {
            pool.submit(0, i).unwrap();
        }
        // Release the gate from a helper thread while shutdown drains.
        let feeder = std::thread::spawn(move || {
            for _ in 0..5 {
                gate_tx.send(()).unwrap();
            }
        });
        let processed = pool.shutdown();
        feeder.join().unwrap();
        assert_eq!(processed, 5, "every queued job drains before exit");
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        match pool.submit(0, 99) {
            Err(SubmitError::ShuttingDown { job }) => assert_eq!(job, 99),
            other => panic!("expected shutdown refusal, got {other:?}"),
        }
    }

    #[test]
    fn distinct_shards_run_concurrently() {
        // Two jobs that can only finish if both run at once: each waits
        // for the other's token. On a serialized pool this deadlocks (and
        // the test would time out); on two shards it completes.
        let (tx_a, rx_a) = mpsc::channel::<()>();
        let (tx_b, rx_b) = mpsc::channel::<()>();
        let sides = Mutex::new(vec![(tx_a, rx_b), (tx_b, rx_a)]);
        let pool: ShardPool<()> = ShardPool::new(2, 4, move |_, ()| {
            let (tx, rx) = sides.lock().unwrap().pop().unwrap();
            tx.send(()).unwrap();
            rx.recv_timeout(Duration::from_secs(30)).unwrap();
        });
        pool.submit(0, ()).unwrap();
        pool.submit(1, ()).unwrap();
        assert_eq!(pool.shutdown(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _: ShardPool<()> = ShardPool::new(0, 1, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        let _: ShardPool<()> = ShardPool::new(1, 0, |_, _| {});
    }
}
