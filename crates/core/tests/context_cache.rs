//! Regression tests for [`ContextCache`] key construction.
//!
//! The cache key must separate every knob that alters the CFG or the
//! CHMC classification (geometry — including the number of usable ways —
//! image content, CFG metadata, classification mode) while *sharing*
//! entries across knobs that don't (the fault model / `pfail`, the
//! protection level read off the finished analysis, parallelism).

use std::sync::Arc;

use pwcet_analysis::ClassificationMode;
use pwcet_cache::CacheGeometry;
use pwcet_core::{AnalysisConfig, ContextCache, Protection, PwcetAnalyzer};
use pwcet_progen::{stmt, CompiledProgram, Program};

fn program() -> Program {
    Program::new("keys").with_function("main", stmt::loop_(25, stmt::compute(30)))
}

fn compiled() -> CompiledProgram {
    program().compile(0x0040_0000).unwrap()
}

#[test]
fn reliable_way_count_changes_the_key() {
    // The regression this file exists for: protecting ways changes the
    // number of *usable* ways and with it every CHMC input. Two
    // geometries that differ only in the way count — same sets, same
    // block size, same image — must never share a context.
    let compiled = compiled();
    let mode = ClassificationMode::Incremental;
    let four_way = CacheGeometry::new(16, 4, 16);
    let three_way = CacheGeometry::new(16, 3, 16);
    let two_way = CacheGeometry::new(16, 2, 16);
    let keys = [
        ContextCache::key_of(&compiled, four_way, mode),
        ContextCache::key_of(&compiled, three_way, mode),
        ContextCache::key_of(&compiled, two_way, mode),
    ];
    assert_ne!(keys[0], keys[1]);
    assert_ne!(keys[0], keys[2]);
    assert_ne!(keys[1], keys[2]);

    let cache = ContextCache::new(8);
    cache.get_or_build(&compiled, four_way, mode).unwrap();
    cache.get_or_build(&compiled, two_way, mode).unwrap();
    let stats = cache.stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.len),
        (0, 2, 2),
        "distinct way counts must occupy distinct entries"
    );
}

#[test]
fn geometry_sets_and_block_size_change_the_key() {
    let compiled = compiled();
    let mode = ClassificationMode::Incremental;
    let base = CacheGeometry::new(16, 4, 16);
    let more_sets = CacheGeometry::new(32, 4, 16);
    let bigger_blocks = CacheGeometry::new(16, 4, 32);
    assert_ne!(
        ContextCache::key_of(&compiled, base, mode),
        ContextCache::key_of(&compiled, more_sets, mode)
    );
    assert_ne!(
        ContextCache::key_of(&compiled, base, mode),
        ContextCache::key_of(&compiled, bigger_blocks, mode)
    );
}

#[test]
fn classification_mode_changes_the_key() {
    let compiled = compiled();
    let geometry = CacheGeometry::paper_default();
    assert_ne!(
        ContextCache::key_of(&compiled, geometry, ClassificationMode::Cold),
        ContextCache::key_of(&compiled, geometry, ClassificationMode::Incremental)
    );
}

#[test]
fn pfail_sweep_shares_one_entry() {
    // The fault model feeds the penalty distributions, not the CFG or
    // the CHMC — a pfail sweep must be answered by a single cached
    // context.
    let cache = Arc::new(ContextCache::new(8));
    let program = program();
    let base = AnalysisConfig::paper_default();
    let mut quantiles = Vec::new();
    for pfail in [1e-6, 1e-5, 1e-4, 1e-3] {
        let config = base.with_pfail(pfail).unwrap();
        let analyzer = PwcetAnalyzer::new(config).with_cache(Arc::clone(&cache));
        let analysis = analyzer.analyze(&program).unwrap();
        quantiles.push(analysis.estimate(Protection::None).pwcet_at(1e-15));
    }
    let stats = cache.stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.len),
        (3, 1, 1),
        "four pfail points must share one context"
    );
    // Sanity: the shared context did not collapse the sweep itself.
    assert!(quantiles.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn cache_hit_reports_the_callers_program_name() {
    // Content addressing is name-blind, so two identically-shaped
    // programs share one context — but each analysis must still carry
    // its own program's name.
    let cache = Arc::new(ContextCache::new(4));
    let analyzer =
        PwcetAnalyzer::new(AnalysisConfig::paper_default()).with_cache(Arc::clone(&cache));
    let shape = stmt::loop_(25, stmt::compute(30));
    let first = Program::new("first").with_function("main", shape.clone());
    let second = Program::new("second").with_function("main", shape);
    let a = analyzer.analyze(&first).unwrap();
    let b = analyzer.analyze(&second).unwrap();
    assert_eq!(cache.stats().hits, 1, "the second analysis must hit");
    assert_eq!(a.name(), "first");
    assert_eq!(b.name(), "second");
}

#[test]
fn different_images_get_different_entries() {
    let cache = ContextCache::new(8);
    let mode = ClassificationMode::Incremental;
    let geometry = CacheGeometry::paper_default();
    let a = compiled();
    let b = Program::new("keys")
        .with_function("main", stmt::loop_(26, stmt::compute(30)))
        .compile(0x0040_0000)
        .unwrap();
    let c = program().compile(0x0050_0000).unwrap(); // same code, new base
    cache.get_or_build(&a, geometry, mode).unwrap();
    cache.get_or_build(&b, geometry, mode).unwrap();
    cache.get_or_build(&c, geometry, mode).unwrap();
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.len), (0, 3, 3));
}
