//! Property tests: the parallel pipeline is observationally identical to
//! the sequential reference.
//!
//! The fan-out stages (classification levels, per-`(set, fault)` delta
//! ILPs, SRB columns, convolution tree) place every result by job index,
//! so for a deterministic solver the parallel analysis must be
//! **bit-identical** — same [`FaultMissMap`], same SRB column, same pWCET
//! quantiles — for every thread count.

use proptest::prelude::*;
use pwcet_core::{AnalysisConfig, Parallelism, Protection, PwcetAnalyzer};
use pwcet_progen::{stmt, Program};

/// Strategy: a small structured program with loops, branches, and
/// sequences — enough shape diversity to exercise every CHMC class.
fn arb_program() -> impl Strategy<Value = Program> {
    let leaf = (1u32..60).prop_map(stmt::compute);
    let looped =
        (2u32..12, 1u32..80).prop_map(|(bound, work)| stmt::loop_(bound, stmt::compute(work)));
    let nested = (2u32..6, 2u32..6, 1u32..40).prop_map(|(outer, inner, work)| {
        stmt::loop_(
            outer,
            stmt::seq([stmt::compute(5), stmt::loop_(inner, stmt::compute(work))]),
        )
    });
    proptest::collection::vec(prop_oneof![leaf, looped, nested], 1..4)
        .prop_map(|stmts| Program::new("prop").with_function("main", stmt::seq(stmts)))
}

fn analysis_fingerprint(
    analyzer: &PwcetAnalyzer,
    program: &Program,
) -> (u64, Vec<u64>, Vec<u64>, Vec<u64>) {
    let analysis = analyzer.analyze(program).expect("analyzes");
    let fmm: Vec<u64> = (0..analysis.fmm().sets())
        .flat_map(|s| analysis.fmm().row(s).to_vec())
        .collect();
    let quantiles: Vec<u64> = Protection::all()
        .iter()
        .flat_map(|&p| {
            let estimate = analysis.estimate(p);
            [1.0, 1e-6, 1e-12, 1e-15].map(|target| estimate.pwcet_at(target))
        })
        .collect();
    (
        analysis.fault_free_wcet(),
        fmm,
        analysis.srb_last_column().to_vec(),
        quantiles,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_pipeline_is_bit_identical_to_sequential(program in arb_program()) {
        let base = AnalysisConfig::paper_default();
        let sequential = PwcetAnalyzer::new(base.with_parallelism(Parallelism::Sequential));
        let reference = analysis_fingerprint(&sequential, &program);
        for threads in [2usize, 4, 7] {
            let parallel = PwcetAnalyzer::new(
                base.with_parallelism(Parallelism::threads(threads)),
            );
            let candidate = analysis_fingerprint(&parallel, &program);
            prop_assert_eq!(
                &reference,
                &candidate,
                "{} threads diverged from the sequential reference",
                threads
            );
        }
    }

    #[test]
    fn batch_matches_sequential_per_program(programs in proptest::collection::vec(arb_program(), 1..4)) {
        let base = AnalysisConfig::paper_default();
        let parallel = PwcetAnalyzer::new(base.with_parallelism(Parallelism::threads(4)));
        let sequential = PwcetAnalyzer::new(base.with_parallelism(Parallelism::Sequential));
        let batch = parallel.analyze_batch(&programs).expect("batch analyzes");
        prop_assert_eq!(batch.len(), programs.len());
        for (program, batched) in programs.iter().zip(&batch) {
            let single = sequential.analyze(program).expect("analyzes");
            prop_assert_eq!(batched.fault_free_wcet(), single.fault_free_wcet());
            prop_assert_eq!(batched.fmm(), single.fmm());
            prop_assert_eq!(batched.srb_last_column(), single.srb_last_column());
        }
    }
}

/// Deterministic (non-property) pin on a real benchmark: the benchsuite
/// programs exercise deeper call/loop structure than the generator above.
#[test]
fn benchsuite_program_parallel_equals_sequential() {
    let bench = pwcet_benchsuite::by_name("crc").expect("crc exists");
    let base = AnalysisConfig::paper_default();
    let sequential = PwcetAnalyzer::new(base.with_parallelism(Parallelism::Sequential));
    let parallel = PwcetAnalyzer::new(base.with_parallelism(Parallelism::threads(4)));
    let a = sequential.analyze(&bench.program).expect("analyzes");
    let b = parallel.analyze(&bench.program).expect("analyzes");
    assert_eq!(a.fault_free_wcet(), b.fault_free_wcet());
    assert_eq!(a.fmm(), b.fmm());
    assert_eq!(a.srb_last_column(), b.srb_last_column());
    for protection in Protection::all() {
        assert_eq!(
            a.estimate(protection),
            b.estimate(protection),
            "{protection} estimate diverged"
        );
    }
}
