//! Disk-tier integration tests: persistence across plane instances (the
//! in-process equivalent of separate processes — same encode/decode
//! path), corruption robustness, and the size-capped GC.
//!
//! The acceptance bar for the corruption suite: a damaged entry may cost
//! a cold rebuild, but it must never panic, never error the analysis,
//! and never change a result. Every case asserts all three.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use pwcet_core::{AnalysisConfig, ProgramAnalysis, Protection, PwcetAnalyzer, ReusePlane};
use pwcet_progen::{stmt, Program};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pwcet-reuse-test-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn program() -> Program {
    Program::new("persisted").with_function("main", stmt::loop_(40, stmt::compute(28)))
}

fn analyzer(plane: &Arc<ReusePlane>) -> PwcetAnalyzer {
    PwcetAnalyzer::new(AnalysisConfig::paper_default()).with_reuse_plane(Arc::clone(plane))
}

fn assert_same_results(a: &ProgramAnalysis, b: &ProgramAnalysis) {
    assert_eq!(a.fault_free_wcet(), b.fault_free_wcet());
    assert_eq!(a.fmm(), b.fmm());
    assert_eq!(a.srb_last_column(), b.srb_last_column());
    for protection in Protection::all() {
        assert_eq!(
            a.estimate(protection).pwcet_at(1e-15),
            b.estimate(protection).pwcet_at(1e-15)
        );
    }
}

/// Analyzes once against a fresh store and returns the reference result
/// plus the store directory (left populated).
fn populate(tag: &str) -> (ProgramAnalysis, PathBuf) {
    let dir = scratch_dir(tag);
    let plane = Arc::new(ReusePlane::in_memory().with_disk_tier(&dir).unwrap());
    let reference = analyzer(&plane).analyze(&program()).unwrap();
    let stats = plane.stats();
    assert_eq!(stats.cold_builds, 1);
    assert!(stats.disk_writes >= 1, "analysis must write through");
    (reference, dir)
}

fn entry_paths(dir: &PathBuf) -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("pwctx"))
        .collect();
    paths.sort();
    paths
}

#[test]
fn second_plane_instance_reads_the_store() {
    // Two plane instances over one directory — exactly what two separate
    // processes exercise (the CI `persistence` job runs the real
    // two-process variant via the `persist_probe` binary).
    let (reference, dir) = populate("second-instance");
    let fresh = Arc::new(ReusePlane::in_memory().with_disk_tier(&dir).unwrap());
    let warm = analyzer(&fresh).analyze(&program()).unwrap();
    assert_same_results(&reference, &warm);
    let stats = fresh.stats();
    assert_eq!(stats.disk_hits, 1, "the fresh plane must decode, not build");
    assert_eq!(stats.cold_builds, 0);
    // The disk-restored solve artifacts make the ILP stage unnecessary;
    // a second analysis over the same plane stays in memory.
    let again = analyzer(&fresh).analyze(&program()).unwrap();
    assert_same_results(&reference, &again);
    assert_eq!(fresh.stats().memory.hits, 1);
    let _ = fs::remove_dir_all(&dir);
}

/// Every corruption flavor must degrade to a counted cold rebuild with
/// bit-identical results — never a panic, an error, or a wrong answer.
fn assert_falls_back_cold(tag: &str, corrupt: impl FnOnce(&PathBuf)) {
    let (reference, dir) = populate(tag);
    let entries = entry_paths(&dir);
    assert_eq!(entries.len(), 1, "one program, one entry");
    corrupt(&entries[0]);

    let fresh = Arc::new(ReusePlane::in_memory().with_disk_tier(&dir).unwrap());
    let rebuilt = analyzer(&fresh).analyze(&program()).unwrap();
    assert_same_results(&reference, &rebuilt);
    let stats = fresh.stats();
    assert_eq!(stats.disk_hits, 0, "{tag}: corrupt entries must not hit");
    assert_eq!(stats.disk_corrupt, 1, "{tag}: the fallback is counted");
    assert_eq!(stats.cold_builds, 1, "{tag}: rebuilt cold");
    // The poisoned file is discarded and the rebuild re-persisted: a
    // third instance is warm again.
    let healed = Arc::new(ReusePlane::in_memory().with_disk_tier(&dir).unwrap());
    let warm = analyzer(&healed).analyze(&program()).unwrap();
    assert_same_results(&reference, &warm);
    assert_eq!(healed.stats().disk_hits, 1, "{tag}: store self-heals");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entry_falls_back_cold() {
    assert_falls_back_cold("truncated", |path| {
        let bytes = fs::read(path).unwrap();
        fs::write(path, &bytes[..bytes.len() / 2]).unwrap();
    });
}

#[test]
fn bad_magic_falls_back_cold() {
    assert_falls_back_cold("bad-magic", |path| {
        let mut bytes = fs::read(path).unwrap();
        bytes[0] = b'X';
        fs::write(path, bytes).unwrap();
    });
}

#[test]
fn wrong_version_falls_back_cold() {
    assert_falls_back_cold("wrong-version", |path| {
        let mut bytes = fs::read(path).unwrap();
        bytes[4] = 0xfe; // version field, little-endian u32 at offset 4
        fs::write(path, bytes).unwrap();
    });
}

#[test]
fn flipped_payload_byte_falls_back_cold() {
    assert_falls_back_cold("flipped-byte", |path| {
        let mut bytes = fs::read(path).unwrap();
        let mid = 24 + (bytes.len() - 24) / 2; // a payload byte
        bytes[mid] ^= 0x40;
        fs::write(path, bytes).unwrap();
    });
}

#[test]
fn flipped_checksum_byte_falls_back_cold() {
    assert_falls_back_cold("flipped-checksum", |path| {
        let mut bytes = fs::read(path).unwrap();
        bytes[16] ^= 0x01; // checksum field at offset 16..24
        fs::write(path, bytes).unwrap();
    });
}

#[test]
fn garbage_file_falls_back_cold() {
    assert_falls_back_cold("garbage", |path| {
        fs::write(path, b"not a context entry at all").unwrap();
    });
}

/// A timing model nothing else in this suite solves under: analyses
/// using it miss the persisted solved-artifact memo and must actually
/// run their ILPs (the pass that exercises restored solver state).
fn variant_config() -> AnalysisConfig {
    let mut config = AnalysisConfig::paper_default();
    config.timing = pwcet_cache::CacheTiming::new(3, 150);
    config
}

#[test]
fn restart_restores_factored_bases_warm() {
    // A restarted process (fresh plane, same store) whose request misses
    // the solved-artifact memo must still never cold-factorize: the v3
    // entry carries the factored basis, which seeds the template pool on
    // the disk hit.
    let (_, dir) = populate("basis-restore");
    let reference = PwcetAnalyzer::new(variant_config())
        .analyze(&program())
        .unwrap();

    let fresh = Arc::new(ReusePlane::in_memory().with_disk_tier(&dir).unwrap());
    let restored = PwcetAnalyzer::new(variant_config())
        .with_reuse_plane(Arc::clone(&fresh))
        .analyze(&program())
        .unwrap();
    assert_same_results(&reference, &restored);
    let stats = fresh.stats();
    assert_eq!(stats.disk_hits, 1, "the context must come off disk");
    assert_eq!(stats.cold_builds, 0);
    assert!(
        stats.basis_restores >= 1,
        "the persisted basis must seed the template pool"
    );
    assert_eq!(stats.basis_rejects, 0, "a faithful snapshot never rejects");
    let ilp = fresh.ilp_stats();
    assert!(ilp.warm_starts > 0, "the variant pass must solve ILPs");
    assert_eq!(
        ilp.cold_starts, 0,
        "every solve starts from the restored factored basis"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn downgraded_v2_entry_decodes_valid_without_bases() {
    // A dense-reference analysis persists no solver state, so its v3
    // entry is exactly a v2 entry plus an empty (all-zero, 8-byte) basis
    // section. Downgrading the file in place — drop the trailing count,
    // stamp version 2, fix the length and checksum — must decode as a
    // first-class hit: pre-solver-state stores survive the upgrade.
    let dir = scratch_dir("v2-downgrade");
    let mut dense = AnalysisConfig::paper_default();
    dense.ipet.solver = pwcet_core::SolverBackend::DenseReference;
    let plane = Arc::new(ReusePlane::in_memory().with_disk_tier(&dir).unwrap());
    let reference = PwcetAnalyzer::new(dense)
        .with_reuse_plane(Arc::clone(&plane))
        .analyze(&program())
        .unwrap();
    assert_eq!(plane.stats().cold_builds, 1);

    let path = &entry_paths(&dir)[0];
    let bytes = fs::read(path).unwrap();
    assert_eq!(
        u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
        3,
        "the store writes the current version"
    );
    assert_eq!(
        &bytes[bytes.len() - 8..],
        &[0u8; 8],
        "a dense-reference entry has an empty basis section"
    );
    let mut v2 = bytes[..bytes.len() - 8].to_vec();
    v2[4..8].copy_from_slice(&2u32.to_le_bytes());
    let payload_len = (v2.len() - 24) as u64;
    v2[8..16].copy_from_slice(&payload_len.to_le_bytes());
    let checksum = pwcet_core::fnv1a_checksum(&v2[24..]);
    v2[16..24].copy_from_slice(&checksum.to_le_bytes());
    fs::write(path, v2).unwrap();

    let fresh = Arc::new(ReusePlane::in_memory().with_disk_tier(&dir).unwrap());
    let warm = PwcetAnalyzer::new(dense)
        .with_reuse_plane(Arc::clone(&fresh))
        .analyze(&program())
        .unwrap();
    assert_same_results(&reference, &warm);
    let stats = fresh.stats();
    assert_eq!(stats.disk_hits, 1, "a v2 entry is a valid hit");
    assert_eq!(stats.cold_builds, 0);
    assert_eq!(stats.basis_restores, 0, "v2 carries no solver state");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checksum_consistent_basis_flip_never_changes_a_bound() {
    // Flip a byte inside the trailing solver-state section and *repair
    // the envelope checksum*, so corruption reaches the strict basis
    // validation itself rather than the checksum gate. Whatever tier the
    // entry then lands in — rejected snapshot, corrupt entry, or even a
    // surviving-but-different warm basis — the bounds must be
    // bit-identical to a plane-less analysis: warm starts change where
    // the simplex starts, never where it ends.
    let (_, dir) = populate("basis-flip");
    let reference = PwcetAnalyzer::new(variant_config())
        .analyze(&program())
        .unwrap();

    let path = &entry_paths(&dir)[0];
    let mut bytes = fs::read(path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x20;
    let checksum = pwcet_core::fnv1a_checksum(&bytes[24..]);
    bytes[16..24].copy_from_slice(&checksum.to_le_bytes());
    fs::write(path, bytes).unwrap();

    let fresh = Arc::new(ReusePlane::in_memory().with_disk_tier(&dir).unwrap());
    let analyzed = PwcetAnalyzer::new(variant_config())
        .with_reuse_plane(Arc::clone(&fresh))
        .analyze(&program())
        .unwrap();
    assert_same_results(&reference, &analyzed);
    let stats = fresh.stats();
    assert_eq!(
        stats.disk_hits + stats.disk_corrupt,
        1,
        "the entry is either decoded or counted corrupt, never dropped \
         silently"
    );
    let _ = fs::remove_dir_all(&dir);
}

fn gc_program(i: u32) -> Program {
    Program::new(format!("gc-{i}")).with_function("main", stmt::loop_(10 + i, stmt::compute(20)))
}

#[test]
fn size_capped_gc_evicts_oldest_entries() {
    // Measure one entry so the budget fits exactly one: every further
    // write must then evict its predecessor.
    let probe_dir = scratch_dir("gc-probe");
    let probe = Arc::new(ReusePlane::in_memory().with_disk_tier(&probe_dir).unwrap());
    analyzer(&probe).analyze(&gc_program(0)).unwrap();
    let entry_size = fs::metadata(&entry_paths(&probe_dir)[0]).unwrap().len();
    let _ = fs::remove_dir_all(&probe_dir);

    let dir = scratch_dir("gc");
    let budget = entry_size + entry_size / 4;
    let plane = Arc::new(
        ReusePlane::in_memory()
            .with_disk_tier_capped(&dir, budget)
            .unwrap(),
    );
    let analyzer = analyzer(&plane);
    for i in 0..4 {
        analyzer.analyze(&gc_program(i)).unwrap();
    }
    let stats = plane.stats();
    assert_eq!(stats.disk_writes, 4);
    assert_eq!(
        stats.disk_gc_evictions, 3,
        "each write beyond the first must push its predecessor out"
    );
    let remaining = entry_paths(&dir);
    assert_eq!(remaining.len(), 1, "only the newest entry survives");

    // GC must also forget the evicted keys in the write-through index:
    // the evicted contexts still live in the memory tier, so a flush can
    // (and must) re-persist them rather than believing they are on disk.
    let flushed = plane.flush();
    assert!(
        flushed >= 3,
        "evicted entries must be re-persistable after GC (flushed {flushed})"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn analysis_survives_an_unwritable_store() {
    // Persistence is an optimization: a store whose directory vanishes
    // out from under the plane (here: replaced by a plain file, which
    // defeats even a root test runner) must not affect results.
    let dir = scratch_dir("unwritable");
    let plane = Arc::new(ReusePlane::in_memory().with_disk_tier(&dir).unwrap());
    fs::remove_dir_all(&dir).unwrap();
    fs::write(&dir, b"now a file, not a directory").unwrap();

    let analysis = analyzer(&plane).analyze(&program()).unwrap();
    assert!(analysis.fault_free_wcet() > 0);
    let stats = plane.stats();
    assert_eq!(stats.disk_writes, 0, "nothing could be written");
    assert!(
        stats.disk_corrupt >= 1,
        "the failed write is counted, not raised"
    );

    let _ = fs::remove_file(&dir);
}
