//! Disk-tier integration tests: persistence across plane instances (the
//! in-process equivalent of separate processes — same encode/decode
//! path), corruption robustness, and the size-capped GC.
//!
//! The acceptance bar for the corruption suite: a damaged entry may cost
//! a cold rebuild, but it must never panic, never error the analysis,
//! and never change a result. Every case asserts all three.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use pwcet_core::{AnalysisConfig, ProgramAnalysis, Protection, PwcetAnalyzer, ReusePlane};
use pwcet_progen::{stmt, Program};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pwcet-reuse-test-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn program() -> Program {
    Program::new("persisted").with_function("main", stmt::loop_(40, stmt::compute(28)))
}

fn analyzer(plane: &Arc<ReusePlane>) -> PwcetAnalyzer {
    PwcetAnalyzer::new(AnalysisConfig::paper_default()).with_reuse_plane(Arc::clone(plane))
}

fn assert_same_results(a: &ProgramAnalysis, b: &ProgramAnalysis) {
    assert_eq!(a.fault_free_wcet(), b.fault_free_wcet());
    assert_eq!(a.fmm(), b.fmm());
    assert_eq!(a.srb_last_column(), b.srb_last_column());
    for protection in Protection::all() {
        assert_eq!(
            a.estimate(protection).pwcet_at(1e-15),
            b.estimate(protection).pwcet_at(1e-15)
        );
    }
}

/// Analyzes once against a fresh store and returns the reference result
/// plus the store directory (left populated).
fn populate(tag: &str) -> (ProgramAnalysis, PathBuf) {
    let dir = scratch_dir(tag);
    let plane = Arc::new(ReusePlane::in_memory().with_disk_tier(&dir).unwrap());
    let reference = analyzer(&plane).analyze(&program()).unwrap();
    let stats = plane.stats();
    assert_eq!(stats.cold_builds, 1);
    assert!(stats.disk_writes >= 1, "analysis must write through");
    (reference, dir)
}

fn entry_paths(dir: &PathBuf) -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("pwctx"))
        .collect();
    paths.sort();
    paths
}

#[test]
fn second_plane_instance_reads_the_store() {
    // Two plane instances over one directory — exactly what two separate
    // processes exercise (the CI `persistence` job runs the real
    // two-process variant via the `persist_probe` binary).
    let (reference, dir) = populate("second-instance");
    let fresh = Arc::new(ReusePlane::in_memory().with_disk_tier(&dir).unwrap());
    let warm = analyzer(&fresh).analyze(&program()).unwrap();
    assert_same_results(&reference, &warm);
    let stats = fresh.stats();
    assert_eq!(stats.disk_hits, 1, "the fresh plane must decode, not build");
    assert_eq!(stats.cold_builds, 0);
    // The disk-restored solve artifacts make the ILP stage unnecessary;
    // a second analysis over the same plane stays in memory.
    let again = analyzer(&fresh).analyze(&program()).unwrap();
    assert_same_results(&reference, &again);
    assert_eq!(fresh.stats().memory.hits, 1);
    let _ = fs::remove_dir_all(&dir);
}

/// Every corruption flavor must degrade to a counted cold rebuild with
/// bit-identical results — never a panic, an error, or a wrong answer.
fn assert_falls_back_cold(tag: &str, corrupt: impl FnOnce(&PathBuf)) {
    let (reference, dir) = populate(tag);
    let entries = entry_paths(&dir);
    assert_eq!(entries.len(), 1, "one program, one entry");
    corrupt(&entries[0]);

    let fresh = Arc::new(ReusePlane::in_memory().with_disk_tier(&dir).unwrap());
    let rebuilt = analyzer(&fresh).analyze(&program()).unwrap();
    assert_same_results(&reference, &rebuilt);
    let stats = fresh.stats();
    assert_eq!(stats.disk_hits, 0, "{tag}: corrupt entries must not hit");
    assert_eq!(stats.disk_corrupt, 1, "{tag}: the fallback is counted");
    assert_eq!(stats.cold_builds, 1, "{tag}: rebuilt cold");
    // The poisoned file is discarded and the rebuild re-persisted: a
    // third instance is warm again.
    let healed = Arc::new(ReusePlane::in_memory().with_disk_tier(&dir).unwrap());
    let warm = analyzer(&healed).analyze(&program()).unwrap();
    assert_same_results(&reference, &warm);
    assert_eq!(healed.stats().disk_hits, 1, "{tag}: store self-heals");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entry_falls_back_cold() {
    assert_falls_back_cold("truncated", |path| {
        let bytes = fs::read(path).unwrap();
        fs::write(path, &bytes[..bytes.len() / 2]).unwrap();
    });
}

#[test]
fn bad_magic_falls_back_cold() {
    assert_falls_back_cold("bad-magic", |path| {
        let mut bytes = fs::read(path).unwrap();
        bytes[0] = b'X';
        fs::write(path, bytes).unwrap();
    });
}

#[test]
fn wrong_version_falls_back_cold() {
    assert_falls_back_cold("wrong-version", |path| {
        let mut bytes = fs::read(path).unwrap();
        bytes[4] = 0xfe; // version field, little-endian u32 at offset 4
        fs::write(path, bytes).unwrap();
    });
}

#[test]
fn flipped_payload_byte_falls_back_cold() {
    assert_falls_back_cold("flipped-byte", |path| {
        let mut bytes = fs::read(path).unwrap();
        let mid = 24 + (bytes.len() - 24) / 2; // a payload byte
        bytes[mid] ^= 0x40;
        fs::write(path, bytes).unwrap();
    });
}

#[test]
fn flipped_checksum_byte_falls_back_cold() {
    assert_falls_back_cold("flipped-checksum", |path| {
        let mut bytes = fs::read(path).unwrap();
        bytes[16] ^= 0x01; // checksum field at offset 16..24
        fs::write(path, bytes).unwrap();
    });
}

#[test]
fn garbage_file_falls_back_cold() {
    assert_falls_back_cold("garbage", |path| {
        fs::write(path, b"not a context entry at all").unwrap();
    });
}

fn gc_program(i: u32) -> Program {
    Program::new(format!("gc-{i}")).with_function("main", stmt::loop_(10 + i, stmt::compute(20)))
}

#[test]
fn size_capped_gc_evicts_oldest_entries() {
    // Measure one entry so the budget fits exactly one: every further
    // write must then evict its predecessor.
    let probe_dir = scratch_dir("gc-probe");
    let probe = Arc::new(ReusePlane::in_memory().with_disk_tier(&probe_dir).unwrap());
    analyzer(&probe).analyze(&gc_program(0)).unwrap();
    let entry_size = fs::metadata(&entry_paths(&probe_dir)[0]).unwrap().len();
    let _ = fs::remove_dir_all(&probe_dir);

    let dir = scratch_dir("gc");
    let budget = entry_size + entry_size / 4;
    let plane = Arc::new(
        ReusePlane::in_memory()
            .with_disk_tier_capped(&dir, budget)
            .unwrap(),
    );
    let analyzer = analyzer(&plane);
    for i in 0..4 {
        analyzer.analyze(&gc_program(i)).unwrap();
    }
    let stats = plane.stats();
    assert_eq!(stats.disk_writes, 4);
    assert_eq!(
        stats.disk_gc_evictions, 3,
        "each write beyond the first must push its predecessor out"
    );
    let remaining = entry_paths(&dir);
    assert_eq!(remaining.len(), 1, "only the newest entry survives");

    // GC must also forget the evicted keys in the write-through index:
    // the evicted contexts still live in the memory tier, so a flush can
    // (and must) re-persist them rather than believing they are on disk.
    let flushed = plane.flush();
    assert!(
        flushed >= 3,
        "evicted entries must be re-persistable after GC (flushed {flushed})"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn analysis_survives_an_unwritable_store() {
    // Persistence is an optimization: a store whose directory vanishes
    // out from under the plane (here: replaced by a plain file, which
    // defeats even a root test runner) must not affect results.
    let dir = scratch_dir("unwritable");
    let plane = Arc::new(ReusePlane::in_memory().with_disk_tier(&dir).unwrap());
    fs::remove_dir_all(&dir).unwrap();
    fs::write(&dir, b"now a file, not a directory").unwrap();

    let analysis = analyzer(&plane).analyze(&program()).unwrap();
    assert!(analysis.fault_free_wcet() > 0);
    let stats = plane.stats();
    assert_eq!(stats.disk_writes, 0, "nothing could be written");
    assert!(
        stats.disk_corrupt >= 1,
        "the failed write is counted, not raised"
    );

    let _ = fs::remove_file(&dir);
}
