//! Content-addressed cache of [`AnalysisContext`]s.
//!
//! Sweeps and batch runs repeatedly analyze the same program images:
//! every `pfail` point of a sensitivity sweep, every protection level of
//! a comparison, and every re-run of the suite rebuilds an identical
//! CFG and re-converges identical classification fixpoints. The
//! [`ContextCache`] makes those repeats nearly free: contexts are keyed
//! by a **content fingerprint** of everything that determines the CFG
//! and the CHMC classification — the program image (base address and
//! machine words), the function extents and loop bounds the CFG expander
//! consumes, the cache geometry, and the classification mode — and are
//! shared as [`Arc`]s, so a hit also reuses every classification level
//! already memoized inside the context.
//!
//! Knobs that *don't* affect the CFG or the classification — the fault
//! model (`pfail`), protection level, IPET options, convolution pruning,
//! parallelism — are deliberately **excluded** from the key: analyses
//! that only vary those share one entry, which is the entire point.
//! `crates/core/tests/context_cache.rs` pins both directions (distinct
//! keys for geometry changes, shared keys across `pfail`).
//!
//! Eviction is least-recently-used with a fixed capacity; hit/miss/
//! eviction counters are exposed via [`ContextCache::stats`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use pwcet_analysis::ClassificationMode;
use pwcet_cache::CacheGeometry;
use pwcet_cfg::CfgError;
use pwcet_progen::CompiledProgram;

use crate::codec::Fnv1a;
use crate::context::AnalysisContext;

/// Default number of cached contexts — comfortably above the benchmark
/// suite size, so a full-suite sweep never thrashes.
pub const DEFAULT_CONTEXT_CAPACITY: usize = 64;

/// Counters and occupancy of a [`ContextCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContextCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build a fresh context.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum number of entries.
    pub capacity: usize,
}

impl ContextCacheStats {
    /// Hit fraction over all lookups (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

#[derive(Debug)]
struct Entry {
    context: Arc<AnalysisContext>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<u64, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A thread-safe, content-addressed, LRU-evicting store of shared
/// [`AnalysisContext`]s.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pwcet_core::{AnalysisConfig, ContextCache, PwcetAnalyzer};
/// use pwcet_progen::{stmt, Program};
///
/// # fn main() -> Result<(), pwcet_core::CoreError> {
/// let cache = Arc::new(ContextCache::new(8));
/// let analyzer =
///     PwcetAnalyzer::new(AnalysisConfig::paper_default()).with_cache(Arc::clone(&cache));
/// let program = Program::new("p").with_function("main", stmt::loop_(10, stmt::compute(8)));
/// analyzer.analyze(&program)?;
/// analyzer.analyze(&program)?; // context (CFG + classifications) reused
/// let stats = cache.stats();
/// assert_eq!((stats.misses, stats.hits), (1, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ContextCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Default for ContextCache {
    fn default() -> Self {
        Self::new(DEFAULT_CONTEXT_CAPACITY)
    }
}

impl ContextCache {
    /// An empty cache holding at most `capacity` contexts.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity cache can never hit");
        Self {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The content fingerprint a `(program, geometry, mode)` triple is
    /// filed under: an FNV-1a hash of the image base and words, the
    /// function extents, the loop bounds, the cache geometry, and the
    /// classification mode — everything that shapes the CFG and the
    /// CHMC, and nothing that doesn't.
    pub fn key_of(
        compiled: &CompiledProgram,
        geometry: CacheGeometry,
        mode: ClassificationMode,
    ) -> u64 {
        let mut hash = Self::family_hash(compiled, geometry, mode);
        hash.write_u32(geometry.ways());
        hash.finish()
    }

    /// The **family fingerprint**: everything [`key_of`](Self::key_of)
    /// hashes *except* the way count. Geometries that differ only in
    /// associativity share a family — the grouping the reuse plane's
    /// cross-geometry derivation is indexed by.
    pub fn family_key_of(
        compiled: &CompiledProgram,
        geometry: CacheGeometry,
        mode: ClassificationMode,
    ) -> u64 {
        Self::family_hash(compiled, geometry, mode).finish()
    }

    fn family_hash(
        compiled: &CompiledProgram,
        geometry: CacheGeometry,
        mode: ClassificationMode,
    ) -> Fnv1a {
        let mut hash = Fnv1a::new();
        hash.write_u32(compiled.image().base());
        for &word in compiled.image().words() {
            hash.write_u32(word);
        }
        // The CFG expander consumes extents and loop bounds alongside the
        // raw image; two images with identical bytes but different
        // metadata classify differently.
        for function in compiled.functions() {
            hash.write_bytes(function.name().as_bytes());
            hash.write_u32(function.entry());
            hash.write_u32(function.end());
        }
        for bound in compiled.loop_bounds() {
            hash.write_u32(bound.header);
            hash.write_u32(bound.bound);
        }
        hash.write_u32(geometry.sets());
        hash.write_u32(geometry.block_bytes());
        hash.write_u32(match mode {
            ClassificationMode::Cold => 0,
            ClassificationMode::Incremental => 1,
        });
        hash
    }

    /// Returns the cached context for the triple, building (and caching)
    /// it on a miss. The expensive build runs outside the lock; when two
    /// threads race on the same key, the first insert wins and the loser
    /// adopts the winner's context.
    ///
    /// # Errors
    ///
    /// Propagates [`CfgError`] from context construction (nothing is
    /// cached on failure).
    pub fn get_or_build(
        &self,
        compiled: &CompiledProgram,
        geometry: CacheGeometry,
        mode: ClassificationMode,
    ) -> Result<Arc<AnalysisContext>, CfgError> {
        let key = Self::key_of(compiled, geometry, mode);
        if let Some(context) = self.lookup(key) {
            return Ok(context);
        }
        let built = Arc::new(AnalysisContext::build_with_mode(compiled, geometry, mode)?);
        Ok(self.insert(key, built))
    }

    /// Looks `key` up, counting a hit or a miss. The [`ReusePlane`]
    /// probes this tier first and, on a miss, fills it through
    /// [`insert`](Self::insert) from whichever lower tier answered.
    ///
    /// [`ReusePlane`]: crate::ReusePlane
    pub(crate) fn lookup(&self, key: u64) -> Option<Arc<AnalysisContext>> {
        let mut inner = self.inner.lock().expect("context cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let context = Arc::clone(&entry.context);
                inner.hits += 1;
                Some(context)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Looks `key` up **without** touching recency or the counters — used
    /// for derivation sources, where a probe must not distort the stats
    /// or keep an otherwise-dead entry alive.
    pub(crate) fn peek(&self, key: u64) -> Option<Arc<AnalysisContext>> {
        let inner = self.inner.lock().expect("context cache lock");
        inner.entries.get(&key).map(|e| Arc::clone(&e.context))
    }

    /// Files `context` under `key`, evicting LRU entries beyond capacity.
    /// When a racing insert got there first, its (possibly already
    /// warmed) context wins and is returned instead.
    pub(crate) fn insert(&self, key: u64, context: Arc<AnalysisContext>) -> Arc<AnalysisContext> {
        let mut inner = self.inner.lock().expect("context cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let context = match inner.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                Arc::clone(&entry.context)
            }
            None => {
                inner.entries.insert(
                    key,
                    Entry {
                        context: Arc::clone(&context),
                        last_used: tick,
                    },
                );
                context
            }
        };
        while inner.entries.len() > self.capacity {
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty over-capacity cache");
            inner.entries.remove(&oldest);
            inner.evictions += 1;
        }
        context
    }

    /// A snapshot of every `(key, context)` pair — what a
    /// [`ReusePlane::flush`](crate::ReusePlane::flush) walks when writing
    /// the memory tier through to disk.
    pub(crate) fn entries_snapshot(&self) -> Vec<(u64, Arc<AnalysisContext>)> {
        let inner = self.inner.lock().expect("context cache lock");
        inner
            .entries
            .iter()
            .map(|(&k, e)| (k, Arc::clone(&e.context)))
            .collect()
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> ContextCacheStats {
        let inner = self.inner.lock().expect("context cache lock");
        ContextCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Number of cached contexts.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("context cache lock").entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("context cache lock")
            .entries
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwcet_progen::{stmt, Program};

    fn compiled(name: &str, iterations: u32) -> CompiledProgram {
        Program::new(name)
            .with_function("main", stmt::loop_(iterations, stmt::compute(12)))
            .compile(0x0040_0000)
            .unwrap()
    }

    fn geometry() -> CacheGeometry {
        CacheGeometry::paper_default()
    }

    #[test]
    fn hit_returns_the_same_context() {
        let cache = ContextCache::new(4);
        let program = compiled("p", 10);
        let a = cache
            .get_or_build(&program, geometry(), ClassificationMode::Incremental)
            .unwrap();
        let b = cache
            .get_or_build(&program, geometry(), ClassificationMode::Incremental)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the context");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hit_preserves_memoized_levels() {
        let cache = ContextCache::new(4);
        let program = compiled("p", 10);
        let first = cache
            .get_or_build(&program, geometry(), ClassificationMode::Incremental)
            .unwrap();
        first.prewarm(pwcet_par::Parallelism::Sequential);
        let second = cache
            .get_or_build(&program, geometry(), ClassificationMode::Incremental)
            .unwrap();
        assert_eq!(second.warmed_levels(), 5, "warm levels survive the hit");
    }

    #[test]
    fn different_content_gets_different_entries() {
        let cache = ContextCache::new(8);
        let mode = ClassificationMode::Incremental;
        let a = compiled("a", 10);
        let b = compiled("b", 11);
        cache.get_or_build(&a, geometry(), mode).unwrap();
        cache.get_or_build(&b, geometry(), mode).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (0, 2, 2));
    }

    #[test]
    fn name_alone_does_not_change_the_key() {
        // Content-addressed: two identically-shaped programs with
        // different names share one image, hence one context.
        let mode = ClassificationMode::Incremental;
        let a = compiled("first", 10);
        let b = compiled("second", 10);
        assert_eq!(
            ContextCache::key_of(&a, geometry(), mode),
            ContextCache::key_of(&b, geometry(), mode)
        );
    }

    #[test]
    fn family_key_ignores_the_way_count_only() {
        let mode = ClassificationMode::Incremental;
        let program = compiled("p", 10);
        let wide = geometry();
        let narrow = wide.with_ways(2);
        assert_ne!(
            ContextCache::key_of(&program, wide, mode),
            ContextCache::key_of(&program, narrow, mode),
            "full keys separate per-geometry entries"
        );
        assert_eq!(
            ContextCache::family_key_of(&program, wide, mode),
            ContextCache::family_key_of(&program, narrow, mode),
            "siblings share a family"
        );
        assert_ne!(
            ContextCache::family_key_of(&program, wide, mode),
            ContextCache::family_key_of(&program, CacheGeometry::new(8, 4, 16), mode),
            "a different set count is a different family"
        );
        assert_ne!(
            ContextCache::family_key_of(&program, wide, mode),
            ContextCache::family_key_of(&program, wide, ClassificationMode::Cold),
            "the classification mode stays part of the family"
        );
    }

    #[test]
    fn peek_does_not_touch_stats_or_recency() {
        let cache = ContextCache::new(4);
        let program = compiled("p", 10);
        let mode = ClassificationMode::Incremental;
        let key = ContextCache::key_of(&program, geometry(), mode);
        assert!(cache.peek(key).is_none());
        let built = cache.get_or_build(&program, geometry(), mode).unwrap();
        let peeked = cache.peek(key).unwrap();
        assert!(Arc::ptr_eq(&built, &peeked));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1), "peeks are uncounted");
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let cache = ContextCache::new(2);
        let mode = ClassificationMode::Incremental;
        let a = compiled("a", 5);
        let b = compiled("b", 6);
        let c = compiled("c", 7);
        cache.get_or_build(&a, geometry(), mode).unwrap();
        cache.get_or_build(&b, geometry(), mode).unwrap();
        // Touch `a` so `b` is the LRU entry.
        cache.get_or_build(&a, geometry(), mode).unwrap();
        cache.get_or_build(&c, geometry(), mode).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // `a` survives (hit), `b` was evicted (miss).
        cache.get_or_build(&a, geometry(), mode).unwrap();
        cache.get_or_build(&b, geometry(), mode).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 4);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = ContextCache::new(4);
        let mode = ClassificationMode::Incremental;
        cache
            .get_or_build(&compiled("p", 5), geometry(), mode)
            .unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        let _ = ContextCache::new(0);
    }

    #[test]
    fn concurrent_lookups_share_one_context() {
        let cache = Arc::new(ContextCache::new(4));
        let program = Arc::new(compiled("p", 20));
        let contexts: Vec<Arc<AnalysisContext>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let program = Arc::clone(&program);
                    scope.spawn(move || {
                        cache
                            .get_or_build(&program, geometry(), ClassificationMode::Incremental)
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // All callers end up with the same entry, whatever the race.
        assert_eq!(cache.len(), 1);
        for context in &contexts[1..] {
            assert!(Arc::ptr_eq(&contexts[0], context));
        }
    }
}
