//! The end-to-end analysis pipeline.

use pwcet_analysis::{classify, classify_srb, Chmc, ChmcMap, SrbMap};
use pwcet_cfg::{CfgError, ExpandedCfg, FunctionExtent};
use pwcet_ipet::{ipet_bound, CostModel, RefCost};
use pwcet_prob::DiscreteDistribution;
use pwcet_progen::{CompiledProgram, Program};

use crate::config::AnalysisConfig;
use crate::error::CoreError;
use crate::estimate::{Protection, PwcetEstimate};
use crate::fmm::FaultMissMap;

/// Builds the expanded control-flow graph of a compiled program (function
/// extents and loop bounds are taken from the compilation metadata).
///
/// # Errors
///
/// Propagates [`CfgError`] from reconstruction.
pub fn expand_compiled(compiled: &CompiledProgram) -> Result<ExpandedCfg, CfgError> {
    let extents: Vec<FunctionExtent> = compiled
        .functions()
        .iter()
        .map(|f| FunctionExtent::new(f.name(), f.entry(), f.end()))
        .collect();
    let bounds: Vec<(u32, u32)> = compiled
        .loop_bounds()
        .iter()
        .map(|lb| (lb.header, lb.bound))
        .collect();
    ExpandedCfg::build(compiled.image(), &extents, &bounds)
}

/// The fault-aware pWCET analyzer (the paper's tool).
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct PwcetAnalyzer {
    config: AnalysisConfig,
}

impl PwcetAnalyzer {
    /// Creates an analyzer with the given configuration.
    pub fn new(config: AnalysisConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Compiles and analyzes a structured program: fault-free WCET plus
    /// the full fault miss map (all protection-independent work).
    ///
    /// # Errors
    ///
    /// [`CoreError`] wrapping compilation, reconstruction, or ILP
    /// failures.
    pub fn analyze(&self, program: &Program) -> Result<ProgramAnalysis, CoreError> {
        let compiled = program.compile(self.config.code_base)?;
        self.analyze_compiled(&compiled)
    }

    /// As [`analyze`](Self::analyze) for an already-compiled program.
    ///
    /// # Errors
    ///
    /// [`CoreError`] wrapping reconstruction or ILP failures.
    pub fn analyze_compiled(
        &self,
        compiled: &CompiledProgram,
    ) -> Result<ProgramAnalysis, CoreError> {
        let cfg = expand_compiled(compiled)?;
        let geometry = self.config.geometry;
        let ways = geometry.ways();
        let sets = geometry.sets();

        // Fault-free WCET (§II-B).
        let chmc_full = classify(&cfg, &geometry, ways);
        let wcet_costs = CostModel::from_chmc(&cfg, &chmc_full, &self.config.timing);
        let fault_free_wcet = ipet_bound(&cfg, &wcet_costs, &self.config.ipet)?;

        // Fault miss map (§II-C): re-classify at every reduced
        // associativity and maximize the per-set classification deltas.
        let mut fmm = FaultMissMap::new(sets, ways);
        for f in 1..=ways {
            let chmc_reduced = classify(&cfg, &geometry, ways - f);
            for s in 0..sets {
                let (costs, has_delta) =
                    delta_cost_model(&cfg, &geometry, s, &chmc_full, &chmc_reduced, None);
                if has_delta {
                    let bound = ipet_bound(&cfg, &costs, &self.config.ipet)?;
                    fmm.set(s, f, bound);
                }
            }
        }
        // LRU associativity monotonicity: a set with more faults can never
        // miss less, so each row may be monotonized. This keeps rows
        // sound (the max of two upper bounds bounds the larger case) and
        // makes the RW's stochastic dominance provable.
        for s in 0..sets {
            for f in 2..=ways {
                let prev = fmm.get(s, f - 1);
                if fmm.get(s, f) < prev {
                    fmm.set(s, f, prev);
                }
            }
        }

        // SRB column (§III-B2): recompute `f = W` after removing
        // references that provably hit in the shared reliable buffer.
        let srb_map = classify_srb(&cfg, &geometry);
        let mut srb_last_column = vec![0u64; sets as usize];
        let chmc_zero = classify(&cfg, &geometry, 0);
        for s in 0..sets {
            let (costs, has_delta) = delta_cost_model(
                &cfg,
                &geometry,
                s,
                &chmc_full,
                &chmc_zero,
                Some(&srb_map),
            );
            let mut bound = if has_delta {
                ipet_bound(&cfg, &costs, &self.config.ipet)?
            } else {
                0
            };
            // The SRB never outperforms a surviving way (an SRB hit is a
            // guaranteed hit at associativity 1 too), so the column
            // dominates the f = W − 1 column; enforce it defensively.
            bound = bound.max(fmm.get(s, ways - 1));
            srb_last_column[s as usize] = bound;
        }

        Ok(ProgramAnalysis {
            config: self.config,
            name: compiled.name().to_string(),
            fault_free_wcet,
            fmm,
            srb_last_column,
        })
    }

    /// Convenience: analyze and immediately estimate one protection level.
    ///
    /// # Errors
    ///
    /// As for [`analyze`](Self::analyze).
    pub fn estimate(
        &self,
        program: &Program,
        protection: Protection,
    ) -> Result<PwcetEstimate, CoreError> {
        Ok(self.analyze(program)?.estimate(protection))
    }
}

/// The protection-independent analysis results of one program, from which
/// estimates for every protection level are assembled cheaply.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    config: AnalysisConfig,
    name: String,
    fault_free_wcet: u64,
    fmm: FaultMissMap,
    srb_last_column: Vec<u64>,
}

impl ProgramAnalysis {
    /// The analyzed program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The deterministic fault-free WCET in cycles.
    pub fn fault_free_wcet(&self) -> u64 {
        self.fault_free_wcet
    }

    /// The fault miss map (unprotected columns `f = 1..=W`).
    pub fn fmm(&self) -> &FaultMissMap {
        &self.fmm
    }

    /// The recomputed `f = W` column under the SRB, per set.
    pub fn srb_last_column(&self) -> &[u64] {
        &self.srb_last_column
    }

    /// The configuration the analysis ran with.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The fault-penalty distribution (in cycles) for one protection
    /// level: per-set binomial mixtures over the fault miss map, convolved
    /// across independent sets (§II-C) and scaled by the miss penalty.
    pub fn penalty_distribution(&self, protection: Protection) -> DiscreteDistribution {
        let geometry = self.config.geometry;
        let ways = geometry.ways();
        let pbf = self
            .config
            .fault_model
            .block_failure_probability(geometry.block_bits());

        let per_set: Vec<DiscreteDistribution> = (0..geometry.sets())
            .map(|s| {
                let points: Vec<(u64, f64)> = match protection {
                    Protection::None => {
                        let pwf = self.config.fault_model.way_fault_distribution(ways, pbf);
                        (0..=ways)
                            .map(|f| (self.fmm.get(s, f), pwf[f as usize]))
                            .collect()
                    }
                    Protection::ReliableWay => {
                        // Eq. 3: only W − 1 ways can fail; the all-faulty
                        // point disappears.
                        let pwf = self
                            .config
                            .fault_model
                            .reliable_way_fault_distribution(ways, pbf);
                        (0..ways)
                            .map(|f| (self.fmm.get(s, f), pwf[f as usize]))
                            .collect()
                    }
                    Protection::SharedReliableBuffer => {
                        let pwf = self.config.fault_model.way_fault_distribution(ways, pbf);
                        (0..=ways)
                            .map(|f| {
                                let misses = if f == ways {
                                    self.srb_last_column[s as usize]
                                } else {
                                    self.fmm.get(s, f)
                                };
                                (misses, pwf[f as usize])
                            })
                            .collect()
                    }
                };
                DiscreteDistribution::from_points(points)
                    .expect("binomial weights form a distribution")
            })
            .collect();

        DiscreteDistribution::convolve_all(&per_set, &self.config.convolution)
            .scale_values(self.config.timing.miss_penalty_cycles())
    }

    /// Assembles the pWCET estimate for one protection level.
    pub fn estimate(&self, protection: Protection) -> PwcetEstimate {
        PwcetEstimate::new(
            protection,
            self.fault_free_wcet,
            self.penalty_distribution(protection),
        )
    }
}

/// Builds the fault-miss-map objective for one set: the per-reference
/// *extra-miss* deltas between the fault-free charging model and the
/// reduced-associativity (or SRB) charging model.
///
/// Charged misses per model: always-hit → 0; first-miss(scope) → 1 per
/// scope entry; always-miss / not-classified → 1 per execution (§IV-A
/// merges NC into AM). The delta of each reference is clamped at 0, which
/// keeps the ILP objective non-negative and remains sound.
///
/// Returns the cost model and whether any delta is positive (callers skip
/// the ILP when not).
fn delta_cost_model(
    cfg: &ExpandedCfg,
    geometry: &pwcet_cache::CacheGeometry,
    set: u32,
    old: &ChmcMap,
    new: &ChmcMap,
    srb: Option<&SrbMap>,
) -> (CostModel, bool) {
    let mut costs = CostModel::zero(cfg);
    let mut has_delta = false;
    for node in cfg.nodes() {
        for (i, &addr) in node.addrs().iter().enumerate() {
            if geometry.set_of(addr) != set {
                continue;
            }
            // Under the SRB, a reference that provably hits the buffer is
            // effectively always-hit even with a fully faulty set.
            let new_class = match srb {
                Some(srb_map) if srb_map.always_hit(node.id(), i) => Chmc::AlwaysHit,
                _ => new.get(node.id(), i),
            };
            let cost = match (old.get(node.id(), i), new_class) {
                // The new model charges nothing extra.
                (_, Chmc::AlwaysHit) => RefCost::default(),
                // Old charged per execution (AM and NC both charge every
                // execution), new charges at most once per scope entry.
                (Chmc::AlwaysMiss | Chmc::NotClassified, Chmc::FirstMiss(_)) => {
                    RefCost::default()
                }
                // Same scope: identical charge on every path.
                (Chmc::FirstMiss(old_scope), Chmc::FirstMiss(new_scope))
                    if old_scope == new_scope =>
                {
                    RefCost::default()
                }
                // One extra miss per entry of the new scope.
                (_, Chmc::FirstMiss(new_scope)) => {
                    RefCost::with_first_extra(0, 1, new_scope)
                }
                // Old already charged every execution.
                (
                    Chmc::AlwaysMiss | Chmc::NotClassified,
                    Chmc::AlwaysMiss | Chmc::NotClassified,
                ) => RefCost::default(),
                // Hit (or once-per-entry) becomes a miss on every
                // execution.
                (_, Chmc::AlwaysMiss | Chmc::NotClassified) => RefCost::per_execution(1),
            };
            if cost.per_execution > 0 || cost.first_extra > 0 {
                has_delta = true;
                costs.set(node.id(), i, cost);
            }
        }
    }
    (costs, has_delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwcet_progen::stmt;

    fn analyzer() -> PwcetAnalyzer {
        PwcetAnalyzer::new(AnalysisConfig::paper_default())
    }

    /// A loop working set that fits the cache: spatial locality only.
    fn small_loop() -> Program {
        Program::new("small_loop").with_function("main", stmt::loop_(50, stmt::compute(20)))
    }

    /// Straight-line code much larger than the cache.
    fn streaming() -> Program {
        Program::new("streaming").with_function("main", stmt::compute(1500))
    }

    #[test]
    fn fault_free_model_yields_zero_penalty() {
        let config = AnalysisConfig::paper_default().with_pfail(0.0).unwrap();
        let analysis = PwcetAnalyzer::new(config).analyze(&small_loop()).unwrap();
        for protection in Protection::all() {
            let estimate = analysis.estimate(protection);
            assert_eq!(estimate.pwcet_at(1e-15), analysis.fault_free_wcet());
            assert_eq!(estimate.pwcet_at(1.0), analysis.fault_free_wcet());
        }
    }

    #[test]
    fn fmm_rows_are_monotone() {
        let analysis = analyzer().analyze(&small_loop()).unwrap();
        let fmm = analysis.fmm();
        for s in 0..fmm.sets() {
            for f in 1..=fmm.ways() {
                assert!(
                    fmm.get(s, f) >= fmm.get(s, f - 1),
                    "row {s} must be monotone in the fault count"
                );
            }
        }
    }

    #[test]
    fn srb_column_dominates_one_way_column() {
        let analysis = analyzer().analyze(&small_loop()).unwrap();
        for s in 0..analysis.fmm().sets() {
            assert!(
                analysis.srb_last_column()[s as usize]
                    >= analysis.fmm().get(s, analysis.fmm().ways() - 1)
            );
        }
    }

    #[test]
    fn srb_column_never_exceeds_unprotected_column() {
        let analysis = analyzer().analyze(&small_loop()).unwrap();
        let ways = analysis.fmm().ways();
        for s in 0..analysis.fmm().sets() {
            assert!(
                analysis.srb_last_column()[s as usize] <= analysis.fmm().get(s, ways),
                "the SRB can only remove misses from the all-faulty column"
            );
        }
    }

    #[test]
    fn protection_ordering_at_target_probability() {
        for program in [small_loop(), streaming()] {
            let analysis = analyzer().analyze(&program).unwrap();
            let none = analysis.estimate(Protection::None);
            let srb = analysis.estimate(Protection::SharedReliableBuffer);
            let rw = analysis.estimate(Protection::ReliableWay);
            let p = 1e-15;
            assert!(
                rw.pwcet_at(p) <= srb.pwcet_at(p),
                "{}: RW must dominate SRB",
                analysis.name()
            );
            assert!(
                srb.pwcet_at(p) <= none.pwcet_at(p),
                "{}: SRB must dominate no protection",
                analysis.name()
            );
            assert!(none.pwcet_at(p) >= analysis.fault_free_wcet());
            assert!(rw.pwcet_at(p) >= analysis.fault_free_wcet());
        }
    }

    #[test]
    fn spatial_only_program_fully_protected() {
        // Streaming code has no temporal locality: every block is fetched
        // once per traversal, so both mechanisms recover the fault-free
        // WCET (category 1 of Figure 4): the only extra misses come from
        // losing spatial locality within a block, which both preserve.
        let analysis = analyzer().analyze(&streaming()).unwrap();
        let rw = analysis.estimate(Protection::ReliableWay);
        let p = 1e-15;
        assert_eq!(rw.pwcet_at(p), analysis.fault_free_wcet());
    }

    #[test]
    fn pwcet_grows_as_probability_shrinks() {
        let analysis = analyzer().analyze(&small_loop()).unwrap();
        let estimate = analysis.estimate(Protection::None);
        let mut last = 0;
        for p in [1.0, 1e-3, 1e-6, 1e-9, 1e-12, 1e-15] {
            let value = estimate.pwcet_at(p);
            assert!(value >= last, "pWCET must grow as p shrinks");
            last = value;
        }
    }

    #[test]
    fn higher_pfail_means_higher_pwcet() {
        let program = small_loop();
        let mut last = 0;
        for pfail in [1e-6, 1e-5, 1e-4, 1e-3] {
            let config = AnalysisConfig::paper_default().with_pfail(pfail).unwrap();
            let analysis = PwcetAnalyzer::new(config).analyze(&program).unwrap();
            let value = analysis.estimate(Protection::None).pwcet_at(1e-15);
            assert!(value >= last, "pfail {pfail}: pWCET must not decrease");
            last = value;
        }
    }

    #[test]
    fn estimate_convenience_matches_two_step() {
        let program = small_loop();
        let one = analyzer()
            .estimate(&program, Protection::ReliableWay)
            .unwrap();
        let two = analyzer()
            .analyze(&program)
            .unwrap()
            .estimate(Protection::ReliableWay);
        assert_eq!(one, two);
    }
}
