//! The end-to-end analysis pipeline.
//!
//! The pipeline is staged around one shared [`AnalysisContext`]:
//!
//! 1. **Context** — expand the CFG once ([`expand_compiled`]);
//! 2. **Classify** — fill the memoized CHMC levels `0..=W` and the SRB
//!    map, fanning the independent fixpoints across workers;
//! 3. **Solve** — fan the per-`(set, fault)` delta ILPs (§II-C) and the
//!    per-set SRB column ILPs (§III-B2) out across workers;
//! 4. **Convolve** — combine per-set penalty distributions with the
//!    balanced reduction tree of [`DiscreteDistribution::convolve_all`].
//!
//! The sequential mode ([`Parallelism::Sequential`]) runs the identical
//! stages on the calling thread and produces bit-identical results — the
//! property tests in `crates/core/tests/parallel_equivalence.rs` pin that
//! guarantee down.

use std::sync::Arc;

use pwcet_analysis::{Chmc, ChmcMap, SrbMap};
use pwcet_cfg::{CfgError, ExpandedCfg, FunctionExtent};
use pwcet_ilp::{IlpError, SolveStats, SolverBackend};
use pwcet_ipet::{ipet_bound, CostModel, RefCost};
use pwcet_par::{par_map, Parallelism};
use pwcet_prob::DiscreteDistribution;
use pwcet_progen::{CompiledProgram, Program};

use crate::config::AnalysisConfig;
use crate::context::AnalysisContext;
use crate::context_cache::ContextCache;
use crate::error::CoreError;
use crate::estimate::{Protection, PwcetEstimate};
use crate::fmm::FaultMissMap;
use crate::reuse_plane::{ReusePlane, ReuseTier};

/// Builds the expanded control-flow graph of a compiled program (function
/// extents and loop bounds are taken from the compilation metadata).
///
/// # Errors
///
/// Propagates [`CfgError`] from reconstruction.
pub fn expand_compiled(compiled: &CompiledProgram) -> Result<ExpandedCfg, CfgError> {
    let _span = pwcet_obs::stage_span(pwcet_obs::Stage::CfgExpand);
    let extents: Vec<FunctionExtent> = compiled
        .functions()
        .iter()
        .map(|f| FunctionExtent::new(f.name(), f.entry(), f.end()))
        .collect();
    let bounds: Vec<(u32, u32)> = compiled
        .loop_bounds()
        .iter()
        .map(|lb| (lb.header, lb.bound))
        .collect();
    ExpandedCfg::build(compiled.image(), &extents, &bounds)
}

/// The fault-aware pWCET analyzer (the paper's tool).
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct PwcetAnalyzer {
    config: AnalysisConfig,
    reuse: Option<Arc<ReusePlane>>,
}

impl PwcetAnalyzer {
    /// Creates an analyzer with the given configuration (no reuse plane;
    /// every analysis builds a fresh context).
    pub fn new(config: AnalysisConfig) -> Self {
        Self {
            config,
            reuse: None,
        }
    }

    /// Attaches a shared [`ContextCache`] as a memory-only reuse plane:
    /// analyses of programs whose content fingerprint is already cached
    /// reuse the stored context — CFG and every memoized classification
    /// level — instead of rebuilding them, and narrower-way sibling
    /// geometries are derived from cached wider ones. Sweeps and repeated
    /// suite runs become nearly free; results are bit-identical either
    /// way. For cross-*process* reuse attach a full [`ReusePlane`] with a
    /// disk tier via [`with_reuse_plane`](Self::with_reuse_plane).
    #[must_use]
    pub fn with_cache(self, cache: Arc<ContextCache>) -> Self {
        self.with_reuse_plane(Arc::new(ReusePlane::with_memory(cache)))
    }

    /// Attaches a [`ReusePlane`]: every analysis resolves its context
    /// through the plane's tiers (memory, disk, cross-geometry
    /// derivation) and writes newly computed artifacts through to the
    /// disk tier when one is attached.
    #[must_use]
    pub fn with_reuse_plane(mut self, plane: Arc<ReusePlane>) -> Self {
        self.reuse = Some(plane);
        self
    }

    /// The memory tier of the attached reuse plane, if any.
    pub fn cache(&self) -> Option<&Arc<ContextCache>> {
        self.reuse.as_ref().map(|plane| plane.memory())
    }

    /// The attached reuse plane, if any.
    pub fn reuse_plane(&self) -> Option<&Arc<ReusePlane>> {
        self.reuse.as_ref()
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Compiles and analyzes a structured program: fault-free WCET plus
    /// the full fault miss map (all protection-independent work).
    ///
    /// # Errors
    ///
    /// [`CoreError`] wrapping compilation, reconstruction, or ILP
    /// failures.
    pub fn analyze(&self, program: &Program) -> Result<ProgramAnalysis, CoreError> {
        Ok(self.analyze_traced(program)?.0)
    }

    /// As [`analyze`](Self::analyze), additionally reporting the
    /// [`ReuseTier`] that provided the analysis context — `Cold` when no
    /// reuse plane is attached.
    ///
    /// # Errors
    ///
    /// As for [`analyze`](Self::analyze).
    pub fn analyze_traced(
        &self,
        program: &Program,
    ) -> Result<(ProgramAnalysis, ReuseTier), CoreError> {
        let compiled = program.compile(self.config.code_base)?;
        self.analyze_compiled_traced(&compiled)
    }

    /// As [`analyze`](Self::analyze) for an already-compiled program.
    ///
    /// # Errors
    ///
    /// [`CoreError`] wrapping reconstruction or ILP failures.
    pub fn analyze_compiled(
        &self,
        compiled: &CompiledProgram,
    ) -> Result<ProgramAnalysis, CoreError> {
        Ok(self.analyze_compiled_traced(compiled)?.0)
    }

    /// As [`analyze_compiled`](Self::analyze_compiled), additionally
    /// reporting the [`ReuseTier`] that provided the context. Analyzers
    /// without a plane always build (and report) `Cold`; with one, the
    /// tier is exactly what [`ReusePlane::get_or_build_traced`] observed
    /// for this request, so a service can answer `served_from` per
    /// response without re-deriving it from plane-wide stats.
    ///
    /// # Errors
    ///
    /// [`CoreError`] wrapping reconstruction or ILP failures.
    pub fn analyze_compiled_traced(
        &self,
        compiled: &CompiledProgram,
    ) -> Result<(ProgramAnalysis, ReuseTier), CoreError> {
        match &self.reuse {
            Some(plane) => {
                let (context, tier) = plane.get_or_build_traced(
                    compiled,
                    self.config.geometry,
                    self.config.classification,
                )?;
                let mut analysis = self.analyze_with_context(&context)?;
                // The plane key is content-addressed and name-blind: a hit
                // may hand back a context built for an identically-shaped
                // program with another name. Report the caller's name.
                analysis.name = compiled.name().to_string();
                // Write the (now warmed) artifacts through to the disk
                // tier so the next process starts warm. No-op without a
                // disk tier; IO failures degrade to a counted stat.
                plane.persist(compiled, &context);
                Ok((analysis, tier))
            }
            None => {
                let context = AnalysisContext::build_with_mode(
                    compiled,
                    self.config.geometry,
                    self.config.classification,
                )?;
                Ok((self.analyze_with_context(&context)?, ReuseTier::Cold))
            }
        }
    }

    /// As [`analyze_compiled`](Self::analyze_compiled) over a prebuilt
    /// (and possibly already warmed) shared context. Repeated analyses of
    /// the same program — e.g. configuration sweeps that only vary the
    /// fault model — reuse every memoized classification level **and**
    /// the protection-independent solve artifacts (fault-free WCET, FMM,
    /// SRB columns), which the context memoizes per `(timing, IPET)`
    /// configuration: a `pfail` sweep pays the ILP stage exactly once.
    ///
    /// # Errors
    ///
    /// [`CoreError`] wrapping ILP failures.
    ///
    /// # Panics
    ///
    /// Panics when the context was built for a different cache geometry.
    pub fn analyze_with_context(
        &self,
        context: &AnalysisContext,
    ) -> Result<ProgramAnalysis, CoreError> {
        assert_eq!(
            *context.geometry(),
            self.config.geometry,
            "context geometry must match the analyzer configuration"
        );
        let kernel_before = context.kernel_stats();
        let (artifacts, stats) = context
            .solve_artifacts((self.config.timing, self.config.ipet), || {
                solve_protection_independent(context, &self.config)
            })?;
        // Solver behavior is observable per context (tests) and per
        // plane (the service stats response). Stats come back only for
        // the computation that was actually installed, so memoized
        // re-requests — and discarded racing duplicates — record
        // nothing.
        if let Some(stats) = stats {
            context.record_ilp_stats(&stats);
            if let Some(plane) = &self.reuse {
                plane.record_ilp_stats(&stats);
                // Classification fixpoints recorded onto the context
                // during this solve (the kernel counters accrue there as
                // levels materialize); forward only the delta so a
                // re-analyzed warm context is not double-counted.
                plane.record_kernel_stats(&context.kernel_stats().delta_since(&kernel_before));
            }
        }
        Ok(ProgramAnalysis {
            config: self.config,
            name: context.name().to_string(),
            artifacts,
        })
    }

    /// Analyzes a batch of programs, parallelizing **across** programs.
    ///
    /// Without an attached [`ContextCache`] each program gets an
    /// independent context and nothing but the configuration is shared;
    /// with one ([`with_cache`](Self::with_cache)) the worker threads
    /// share it, so duplicate images inside the batch — and across
    /// repeated batch runs — reuse one context. With more than one
    /// program the inner per-program fan-out runs sequentially so the
    /// workers are not oversubscribed; the per-program results are
    /// bit-identical to one-by-one [`analyze`](Self::analyze) calls
    /// either way.
    ///
    /// # Errors
    ///
    /// The first [`CoreError`] in program order, if any analysis fails.
    pub fn analyze_batch(&self, programs: &[Program]) -> Result<Vec<ProgramAnalysis>, CoreError> {
        Ok(self
            .analyze_batch_traced(programs)?
            .into_iter()
            .map(|(analysis, _)| analysis)
            .collect())
    }

    /// As [`analyze_batch`](Self::analyze_batch), additionally reporting
    /// per program the [`ReuseTier`] its context came from. Duplicate
    /// images inside one batch race on the plane's memory tier: when
    /// their analyses overlap in time, each racer reports the tier *it*
    /// was answered by — possibly `Cold` for both (the cache's insert
    /// race still converges on one shared context, but the tier is
    /// observed at lookup time). Callers that need the second copy to
    /// deterministically report `Memory` must serialize duplicates, as
    /// `pwcet-serve` does by hashing requests onto single-worker shards.
    ///
    /// # Errors
    ///
    /// The first [`CoreError`] in program order, if any analysis fails.
    pub fn analyze_batch_traced(
        &self,
        programs: &[Program],
    ) -> Result<Vec<(ProgramAnalysis, ReuseTier)>, CoreError> {
        let inner = if programs.len() > 1 {
            Parallelism::Sequential
        } else {
            self.config.parallelism
        };
        let mut program_analyzer = Self::new(self.config.with_parallelism(inner));
        program_analyzer.reuse = self.reuse.clone();
        par_map(self.config.parallelism, programs, |program| {
            program_analyzer.analyze_traced(program)
        })
        .into_iter()
        .map(|result| {
            result.map(|(mut analysis, tier)| {
                // The sequential override is batch-internal scheduling; the
                // analysis must carry (and later estimate with) the
                // caller's configuration.
                analysis.config = self.config;
                (analysis, tier)
            })
        })
        .collect()
    }

    /// Compiles `program` and builds a shared [`AnalysisContext`] from
    /// this analyzer's configuration (code base and cache geometry),
    /// guaranteeing the context matches
    /// [`analyze_with_context`](Self::analyze_with_context).
    ///
    /// # Errors
    ///
    /// [`CoreError`] wrapping compilation or reconstruction failures.
    pub fn build_context(&self, program: &Program) -> Result<AnalysisContext, CoreError> {
        let compiled = program.compile(self.config.code_base)?;
        Ok(AnalysisContext::build_with_mode(
            &compiled,
            self.config.geometry,
            self.config.classification,
        )?)
    }

    /// Convenience: analyze and immediately estimate one protection level.
    ///
    /// # Errors
    ///
    /// As for [`analyze`](Self::analyze).
    pub fn estimate(
        &self,
        program: &Program,
        protection: Protection,
    ) -> Result<PwcetEstimate, CoreError> {
        Ok(self.analyze(program)?.estimate(protection))
    }
}

/// The protection-independent products of the ILP solve stage: everything
/// an estimate needs that does not depend on the fault model. Memoized
/// inside [`AnalysisContext`] per `(timing, IPET)` configuration and
/// shared by every [`ProgramAnalysis`] derived from the same context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SolveArtifacts {
    pub(crate) fault_free_wcet: u64,
    pub(crate) fmm: FaultMissMap,
    pub(crate) srb_last_column: Vec<u64>,
}

/// Stages 2–3 over a shared context: classification prewarm, fault-free
/// WCET, the per-`(set, fault)` delta ILPs of the fault miss map, and the
/// per-set SRB column ILPs.
///
/// With the default sparse backend every ILP of the stage — one big
/// WCET instance plus `S×W + S` small delta instances — is an
/// objective-only variant of the context's factored [`IpetTemplate`]:
/// the constraint matrix is built and factored once, the fan-out
/// re-solves against pooled warm bases, and the WCET instance may split
/// its branch-and-bound subtrees across the stage's workers. Under
/// [`SolverBackend::DenseReference`] every job builds and solves a
/// fresh dense model — the frozen reference path the solver-equivalence
/// suite compares against. Bounds are identical either way.
fn solve_protection_independent(
    context: &AnalysisContext,
    config: &AnalysisConfig,
) -> Result<(SolveArtifacts, SolveStats), CoreError> {
    let parallelism = config.parallelism;
    let cfg = context.cfg();
    let geometry = config.geometry;
    let ways = geometry.ways();
    let sets = geometry.sets();

    // Stage 2 (classify): all CHMC levels and the SRB map (cold mode fans
    // the independent fixpoints out; incremental mode chains them).
    // `prewarm` records the stage's `classify` span itself.
    context.prewarm(parallelism);

    // Everything below is ILP work: template (re)use, the fault-free
    // WCET instance, the per-(set,fault) delta fan-out, and the SRB
    // columns — one span covering the whole solve stage.
    let _ilp_span = pwcet_obs::stage_span(pwcet_obs::Stage::IlpSolve);

    let template = match config.ipet.solver {
        SolverBackend::Sparse => {
            let template = context.ipet_template(config.ipet);
            // Cap the warm-workspace pool at the configured solve
            // parallelism: more pooled bases than workers can never be
            // checked out concurrently, they would only hold memory.
            template.set_pool_cap(parallelism.worker_count(usize::MAX).max(1));
            Some(template)
        }
        SolverBackend::DenseReference => None,
    };
    let bound_of = |costs: &CostModel, workers: usize| -> Result<(u64, SolveStats), IlpError> {
        match &template {
            Some(template) => template.bound_with_workers(costs, workers),
            // The dense reference is deliberately uninstrumented.
            None => ipet_bound(cfg, costs, &config.ipet).map(|b| (b, SolveStats::default())),
        }
    };
    let mut stats = SolveStats::default();

    // Fault-free WCET (§II-B): the one big instance of the stage — the
    // only ILP that may split branch-and-bound subtrees across workers
    // (the fan-outs below keep the workers busy with whole jobs).
    let chmc_full = context.chmc(ways);
    let wcet_costs = CostModel::from_chmc(cfg, chmc_full, &config.timing);
    let (fault_free_wcet, wcet_stats) =
        bound_of(&wcet_costs, parallelism.worker_count(usize::MAX))?;
    stats.merge(&wcet_stats);

    // Stage 3 (solve): fault miss map (§II-C). Every `(set, fault)`
    // delta ILP is independent; fan them out and fold the results back
    // in job order, which keeps the outcome bit-identical to the
    // sequential reference.
    let set_refs = context.set_refs();
    let jobs: Vec<(u32, u32)> = (1..=ways)
        .flat_map(|f| (0..sets).map(move |s| (s, f)))
        .collect();
    let bounds = par_map(
        parallelism,
        &jobs,
        |&(s, f)| -> Result<(u64, SolveStats), CoreError> {
            let (costs, has_delta) = delta_cost_model_indexed(
                cfg,
                &set_refs[s as usize],
                chmc_full,
                context.chmc(ways - f),
                None,
            );
            if has_delta {
                Ok(bound_of(&costs, 1)?)
            } else {
                Ok((0, SolveStats::default()))
            }
        },
    );
    let mut fmm = FaultMissMap::new(sets, ways);
    for (&(s, f), outcome) in jobs.iter().zip(bounds) {
        let (bound, job_stats) = outcome?;
        stats.merge(&job_stats);
        if bound > 0 {
            fmm.set(s, f, bound);
        }
    }
    // LRU associativity monotonicity: a set with more faults can never
    // miss less, so each row may be monotonized. This keeps rows
    // sound (the max of two upper bounds bounds the larger case) and
    // makes the RW's stochastic dominance provable.
    for s in 0..sets {
        for f in 2..=ways {
            let prev = fmm.get(s, f - 1);
            if fmm.get(s, f) < prev {
                fmm.set(s, f, prev);
            }
        }
    }

    // SRB column (§III-B2): recompute `f = W` after removing
    // references that provably hit in the shared reliable buffer.
    // One independent ILP per set — same fan-out shape as stage 3.
    let srb_map = context.srb();
    let chmc_zero = context.chmc(0);
    let srb_jobs: Vec<u32> = (0..sets).collect();
    let srb_bounds = par_map(
        parallelism,
        &srb_jobs,
        |&s| -> Result<(u64, SolveStats), CoreError> {
            let (costs, has_delta) = delta_cost_model_indexed(
                cfg,
                &set_refs[s as usize],
                chmc_full,
                chmc_zero,
                Some(srb_map),
            );
            if has_delta {
                Ok(bound_of(&costs, 1)?)
            } else {
                Ok((0, SolveStats::default()))
            }
        },
    );
    let mut srb_last_column = vec![0u64; sets as usize];
    for (s, outcome) in srb_bounds.into_iter().enumerate() {
        let (bound, job_stats) = outcome?;
        stats.merge(&job_stats);
        // The SRB never outperforms a surviving way (an SRB hit is a
        // guaranteed hit at associativity 1 too), so the column
        // dominates the f = W − 1 column; enforce it defensively.
        srb_last_column[s] = bound.max(fmm.get(s as u32, ways - 1));
    }

    Ok((
        SolveArtifacts {
            fault_free_wcet,
            fmm,
            srb_last_column,
        },
        stats,
    ))
}

/// The protection-independent analysis results of one program, from which
/// estimates for every protection level are assembled cheaply.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    config: AnalysisConfig,
    name: String,
    artifacts: Arc<SolveArtifacts>,
}

impl ProgramAnalysis {
    /// The analyzed program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The deterministic fault-free WCET in cycles.
    pub fn fault_free_wcet(&self) -> u64 {
        self.artifacts.fault_free_wcet
    }

    /// The fault miss map (unprotected columns `f = 1..=W`).
    pub fn fmm(&self) -> &FaultMissMap {
        &self.artifacts.fmm
    }

    /// The recomputed `f = W` column under the SRB, per set.
    pub fn srb_last_column(&self) -> &[u64] {
        &self.artifacts.srb_last_column
    }

    /// The configuration the analysis ran with.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The fault-penalty distribution (in cycles) for one protection
    /// level: per-set binomial mixtures over the fault miss map, convolved
    /// across independent sets (§II-C) and scaled by the miss penalty.
    ///
    /// The per-set distributions are combined by the balanced reduction
    /// tree of [`DiscreteDistribution::convolve_all`] — `O(n log n)`
    /// support growth instead of the quadratic left fold.
    pub fn penalty_distribution(&self, protection: Protection) -> DiscreteDistribution {
        let _span = pwcet_obs::stage_span(pwcet_obs::Stage::Convolve);
        let geometry = self.config.geometry;
        let ways = geometry.ways();
        let pbf = self
            .config
            .fault_model
            .block_failure_probability(geometry.block_bits());

        // The way-fault weights depend only on the geometry and the fault
        // model — compute them once, not per set.
        let pwf = match protection {
            // Eq. 3: under the RW only W − 1 ways can fail; the all-faulty
            // point disappears.
            Protection::ReliableWay => self
                .config
                .fault_model
                .reliable_way_fault_distribution(ways, pbf),
            Protection::None | Protection::SharedReliableBuffer => {
                self.config.fault_model.way_fault_distribution(ways, pbf)
            }
        };
        let per_set: Vec<DiscreteDistribution> = (0..geometry.sets())
            .map(|s| {
                let points: Vec<(u64, f64)> = match protection {
                    Protection::None => (0..=ways)
                        .map(|f| (self.fmm().get(s, f), pwf[f as usize]))
                        .collect(),
                    Protection::ReliableWay => (0..ways)
                        .map(|f| (self.fmm().get(s, f), pwf[f as usize]))
                        .collect(),
                    Protection::SharedReliableBuffer => (0..=ways)
                        .map(|f| {
                            let misses = if f == ways {
                                self.srb_last_column()[s as usize]
                            } else {
                                self.fmm().get(s, f)
                            };
                            (misses, pwf[f as usize])
                        })
                        .collect(),
                };
                DiscreteDistribution::from_points(points)
                    .expect("binomial weights form a distribution")
            })
            .collect();

        DiscreteDistribution::convolve_all_parallel(
            &per_set,
            &self.config.convolution,
            self.config.parallelism,
        )
        .scale_values(self.config.timing.miss_penalty_cycles())
    }

    /// Assembles the pWCET estimate for one protection level.
    pub fn estimate(&self, protection: Protection) -> PwcetEstimate {
        PwcetEstimate::new(
            protection,
            self.fault_free_wcet(),
            self.penalty_distribution(protection),
        )
    }
}

/// Builds the fault-miss-map objective for one set: the per-reference
/// *extra-miss* deltas between the fault-free charging model and the
/// reduced-associativity (or SRB) charging model.
///
/// Charged misses per model: always-hit → 0; first-miss(scope) → 1 per
/// scope entry; always-miss / not-classified → 1 per execution (§IV-A
/// merges NC into AM). The delta of each reference is clamped at 0, which
/// keeps the ILP objective non-negative and remains sound.
///
/// Returns the cost model and whether any delta is positive (callers skip
/// the ILP when not). Public so benchmarks and the solver gate can
/// reproduce the exact per-`(set, fault)` fan-out workload of the
/// pipeline's solve stage.
pub fn delta_cost_model(
    cfg: &ExpandedCfg,
    geometry: &pwcet_cache::CacheGeometry,
    set: u32,
    old: &ChmcMap,
    new: &ChmcMap,
    srb: Option<&SrbMap>,
) -> (CostModel, bool) {
    let mut costs = CostModel::zero(cfg);
    let mut has_delta = false;
    for node in cfg.nodes() {
        for (i, &addr) in node.addrs().iter().enumerate() {
            if geometry.set_of(addr) != set {
                continue;
            }
            apply_ref_delta(&mut costs, &mut has_delta, node.id(), i, old, new, srb);
        }
    }
    (costs, has_delta)
}

/// [`delta_cost_model`] over a precomputed per-set reference bucket
/// ([`AnalysisContext::set_refs`]): identical output — the bucket lists
/// the same references in the same graph order the full scan visits —
/// without touching the other sets' references on every job of the
/// `(set, fault)` fan-out.
fn delta_cost_model_indexed(
    cfg: &ExpandedCfg,
    refs: &[(pwcet_cfg::NodeId, usize)],
    old: &ChmcMap,
    new: &ChmcMap,
    srb: Option<&SrbMap>,
) -> (CostModel, bool) {
    let mut costs = CostModel::zero(cfg);
    let mut has_delta = false;
    for &(node, i) in refs {
        apply_ref_delta(&mut costs, &mut has_delta, node, i, old, new, srb);
    }
    (costs, has_delta)
}

/// One reference of the §II-C delta charging model (shared by the full
/// scan and the indexed fan-out — the tables of both must stay
/// bit-identical).
fn apply_ref_delta(
    costs: &mut CostModel,
    has_delta: &mut bool,
    node: pwcet_cfg::NodeId,
    i: usize,
    old: &ChmcMap,
    new: &ChmcMap,
    srb: Option<&SrbMap>,
) {
    // Under the SRB, a reference that provably hits the buffer is
    // effectively always-hit even with a fully faulty set.
    let new_class = match srb {
        Some(srb_map) if srb_map.always_hit(node, i) => Chmc::AlwaysHit,
        _ => new.get(node, i),
    };
    let cost = match (old.get(node, i), new_class) {
        // The new model charges nothing extra.
        (_, Chmc::AlwaysHit) => RefCost::default(),
        // Old charged per execution (AM and NC both charge every
        // execution), new charges at most once per scope entry.
        (Chmc::AlwaysMiss | Chmc::NotClassified, Chmc::FirstMiss(_)) => RefCost::default(),
        // Same scope: identical charge on every path.
        (Chmc::FirstMiss(old_scope), Chmc::FirstMiss(new_scope)) if old_scope == new_scope => {
            RefCost::default()
        }
        // One extra miss per entry of the new scope.
        (_, Chmc::FirstMiss(new_scope)) => RefCost::with_first_extra(0, 1, new_scope),
        // Old already charged every execution.
        (Chmc::AlwaysMiss | Chmc::NotClassified, Chmc::AlwaysMiss | Chmc::NotClassified) => {
            RefCost::default()
        }
        // Hit (or once-per-entry) becomes a miss on every
        // execution.
        (_, Chmc::AlwaysMiss | Chmc::NotClassified) => RefCost::per_execution(1),
    };
    if cost.per_execution > 0 || cost.first_extra > 0 {
        *has_delta = true;
        costs.set(node, i, cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwcet_progen::stmt;

    fn analyzer() -> PwcetAnalyzer {
        PwcetAnalyzer::new(AnalysisConfig::paper_default())
    }

    /// A loop working set that fits the cache: spatial locality only.
    fn small_loop() -> Program {
        Program::new("small_loop").with_function("main", stmt::loop_(50, stmt::compute(20)))
    }

    /// Straight-line code much larger than the cache.
    fn streaming() -> Program {
        Program::new("streaming").with_function("main", stmt::compute(1500))
    }

    #[test]
    fn fault_free_model_yields_zero_penalty() {
        let config = AnalysisConfig::paper_default().with_pfail(0.0).unwrap();
        let analysis = PwcetAnalyzer::new(config).analyze(&small_loop()).unwrap();
        for protection in Protection::all() {
            let estimate = analysis.estimate(protection);
            assert_eq!(estimate.pwcet_at(1e-15), analysis.fault_free_wcet());
            assert_eq!(estimate.pwcet_at(1.0), analysis.fault_free_wcet());
        }
    }

    #[test]
    fn fmm_rows_are_monotone() {
        let analysis = analyzer().analyze(&small_loop()).unwrap();
        let fmm = analysis.fmm();
        for s in 0..fmm.sets() {
            for f in 1..=fmm.ways() {
                assert!(
                    fmm.get(s, f) >= fmm.get(s, f - 1),
                    "row {s} must be monotone in the fault count"
                );
            }
        }
    }

    #[test]
    fn srb_column_dominates_one_way_column() {
        let analysis = analyzer().analyze(&small_loop()).unwrap();
        for s in 0..analysis.fmm().sets() {
            assert!(
                analysis.srb_last_column()[s as usize]
                    >= analysis.fmm().get(s, analysis.fmm().ways() - 1)
            );
        }
    }

    #[test]
    fn srb_column_never_exceeds_unprotected_column() {
        let analysis = analyzer().analyze(&small_loop()).unwrap();
        let ways = analysis.fmm().ways();
        for s in 0..analysis.fmm().sets() {
            assert!(
                analysis.srb_last_column()[s as usize] <= analysis.fmm().get(s, ways),
                "the SRB can only remove misses from the all-faulty column"
            );
        }
    }

    #[test]
    fn protection_ordering_at_target_probability() {
        for program in [small_loop(), streaming()] {
            let analysis = analyzer().analyze(&program).unwrap();
            let none = analysis.estimate(Protection::None);
            let srb = analysis.estimate(Protection::SharedReliableBuffer);
            let rw = analysis.estimate(Protection::ReliableWay);
            let p = 1e-15;
            assert!(
                rw.pwcet_at(p) <= srb.pwcet_at(p),
                "{}: RW must dominate SRB",
                analysis.name()
            );
            assert!(
                srb.pwcet_at(p) <= none.pwcet_at(p),
                "{}: SRB must dominate no protection",
                analysis.name()
            );
            assert!(none.pwcet_at(p) >= analysis.fault_free_wcet());
            assert!(rw.pwcet_at(p) >= analysis.fault_free_wcet());
        }
    }

    #[test]
    fn spatial_only_program_fully_protected() {
        // Streaming code has no temporal locality: every block is fetched
        // once per traversal, so both mechanisms recover the fault-free
        // WCET (category 1 of Figure 4): the only extra misses come from
        // losing spatial locality within a block, which both preserve.
        let analysis = analyzer().analyze(&streaming()).unwrap();
        let rw = analysis.estimate(Protection::ReliableWay);
        let p = 1e-15;
        assert_eq!(rw.pwcet_at(p), analysis.fault_free_wcet());
    }

    #[test]
    fn pwcet_grows_as_probability_shrinks() {
        let analysis = analyzer().analyze(&small_loop()).unwrap();
        let estimate = analysis.estimate(Protection::None);
        let mut last = 0;
        for p in [1.0, 1e-3, 1e-6, 1e-9, 1e-12, 1e-15] {
            let value = estimate.pwcet_at(p);
            assert!(value >= last, "pWCET must grow as p shrinks");
            last = value;
        }
    }

    #[test]
    fn higher_pfail_means_higher_pwcet() {
        let program = small_loop();
        let mut last = 0;
        for pfail in [1e-6, 1e-5, 1e-4, 1e-3] {
            let config = AnalysisConfig::paper_default().with_pfail(pfail).unwrap();
            let analysis = PwcetAnalyzer::new(config).analyze(&program).unwrap();
            let value = analysis.estimate(Protection::None).pwcet_at(1e-15);
            assert!(value >= last, "pfail {pfail}: pWCET must not decrease");
            last = value;
        }
    }

    #[test]
    fn estimate_convenience_matches_two_step() {
        let program = small_loop();
        let one = analyzer()
            .estimate(&program, Protection::ReliableWay)
            .unwrap();
        let two = analyzer()
            .analyze(&program)
            .unwrap()
            .estimate(Protection::ReliableWay);
        assert_eq!(one, two);
    }

    #[test]
    fn shared_context_reuse_matches_fresh_analysis() {
        let program = small_loop();
        let compiled = program.compile(0x0040_0000).unwrap();
        let config = AnalysisConfig::paper_default();
        let context = AnalysisContext::build(&compiled, config.geometry).unwrap();

        // Two sweeps over the fault model reuse one context.
        for pfail in [1e-5, 1e-4] {
            let swept = config.with_pfail(pfail).unwrap();
            let via_context = PwcetAnalyzer::new(swept)
                .analyze_with_context(&context)
                .unwrap();
            let fresh = PwcetAnalyzer::new(swept).analyze(&program).unwrap();
            assert_eq!(via_context.fmm(), fresh.fmm());
            assert_eq!(via_context.srb_last_column(), fresh.srb_last_column());
            assert_eq!(via_context.fault_free_wcet(), fresh.fault_free_wcet());
        }
    }

    #[test]
    fn sweep_over_one_context_solves_the_ilp_stage_once() {
        let compiled = small_loop().compile(0x0040_0000).unwrap();
        let config = AnalysisConfig::paper_default();
        let context = AnalysisContext::build(&compiled, config.geometry).unwrap();
        let mut analyses = Vec::new();
        for pfail in [1e-5, 1e-4, 1e-3] {
            let swept = config.with_pfail(pfail).unwrap();
            analyses.push(
                PwcetAnalyzer::new(swept)
                    .analyze_with_context(&context)
                    .unwrap(),
            );
        }
        assert_eq!(
            context.solved_configurations(),
            1,
            "the fault model must not re-trigger the solve stage"
        );
        // The memoized artifacts are shared, and the estimates still
        // reflect each point's own fault model.
        assert_eq!(analyses[0].fmm(), analyses[2].fmm());
        let p = 1e-15;
        assert!(
            analyses[0].estimate(Protection::None).pwcet_at(p)
                <= analyses[2].estimate(Protection::None).pwcet_at(p)
        );
    }

    #[test]
    fn distinct_timings_get_distinct_solve_artifacts() {
        let compiled = small_loop().compile(0x0040_0000).unwrap();
        let config = AnalysisConfig::paper_default();
        let context = AnalysisContext::build(&compiled, config.geometry).unwrap();
        PwcetAnalyzer::new(config)
            .analyze_with_context(&context)
            .unwrap();
        let mut slower = config;
        slower.timing = pwcet_cache::CacheTiming::new(1, 200);
        let fast = PwcetAnalyzer::new(config)
            .analyze_with_context(&context)
            .unwrap();
        let slow = PwcetAnalyzer::new(slower)
            .analyze_with_context(&context)
            .unwrap();
        assert_eq!(context.solved_configurations(), 2);
        assert!(slow.fault_free_wcet() > fast.fault_free_wcet());
    }

    #[test]
    fn analyze_batch_matches_individual_analyses() {
        let programs = [small_loop(), streaming()];
        let analyzer = analyzer();
        let batch = analyzer.analyze_batch(&programs).unwrap();
        assert_eq!(batch.len(), 2);
        for (program, batched) in programs.iter().zip(&batch) {
            let single = analyzer.analyze(program).unwrap();
            assert_eq!(batched.name(), single.name());
            assert_eq!(batched.fault_free_wcet(), single.fault_free_wcet());
            assert_eq!(batched.fmm(), single.fmm());
            assert_eq!(batched.srb_last_column(), single.srb_last_column());
        }
    }

    #[test]
    fn analyze_batch_preserves_caller_config() {
        let config = AnalysisConfig::paper_default().with_parallelism(Parallelism::threads(3));
        let batch = PwcetAnalyzer::new(config)
            .analyze_batch(&[small_loop(), streaming()])
            .unwrap();
        for analysis in &batch {
            // The batch-internal sequential override must not leak into
            // the returned analyses.
            assert_eq!(analysis.config().parallelism, Parallelism::threads(3));
        }
    }

    #[test]
    fn traced_analyses_report_tier_provenance() {
        let plane = Arc::new(crate::ReusePlane::in_memory());
        let planed = analyzer().with_reuse_plane(Arc::clone(&plane));
        let (first, tier) = planed.analyze_traced(&small_loop()).unwrap();
        assert_eq!(tier, ReuseTier::Cold);
        let (second, tier) = planed.analyze_traced(&small_loop()).unwrap();
        assert_eq!(tier, ReuseTier::Memory);
        assert_eq!(first.fmm(), second.fmm(), "tier must not change results");

        // Without a plane every analysis is (and reports) a cold build.
        let (_, tier) = analyzer().analyze_traced(&streaming()).unwrap();
        assert_eq!(tier, ReuseTier::Cold);

        // A later batch over the shared plane is answered from memory.
        let traced = planed
            .analyze_batch_traced(&[small_loop(), streaming()])
            .unwrap();
        assert_eq!(traced[0].1, ReuseTier::Memory);
        assert_eq!(traced[1].1, ReuseTier::Cold);
        let plain = planed.analyze_batch(&[small_loop(), streaming()]).unwrap();
        for ((batched, _), direct) in traced.iter().zip(&plain) {
            assert_eq!(batched.fmm(), direct.fmm());
        }
    }

    #[test]
    fn analyze_batch_of_empty_and_single() {
        let analyzer = analyzer();
        assert!(analyzer.analyze_batch(&[]).unwrap().is_empty());
        let single = analyzer.analyze_batch(&[small_loop()]).unwrap();
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].name(), "small_loop");
    }

    #[test]
    #[should_panic(expected = "geometry must match")]
    fn mismatched_context_geometry_panics() {
        let compiled = small_loop().compile(0x0040_0000).unwrap();
        let other_geometry = pwcet_cache::CacheGeometry::new(8, 2, 16);
        let context = AnalysisContext::build(&compiled, other_geometry).unwrap();
        let _ = analyzer().analyze_with_context(&context);
    }
}
