//! Fault-aware probabilistic WCET estimation — the paper's contribution.
//!
//! This crate assembles the full pipeline of *"Probabilistic WCET
//! estimation in presence of hardware for mitigating the impact of
//! permanent faults"* (Hardy, Puaut, Sazeides — DATE 2016):
//!
//! 1. **Fault-free WCET** (§II-B): abstract-interpretation cache analysis
//!    (`pwcet-analysis`) plus IPET path analysis (`pwcet-ipet`).
//! 2. **Fault Miss Map** (§II-C, Figure 1a): for every cache set `s` and
//!    every number of faulty ways `f`, an ILP-computed upper bound
//!    [`FaultMissMap`] on the *additional* misses any path can suffer,
//!    obtained by re-classifying references at effective associativity
//!    `W − f` and maximizing the classification deltas.
//! 3. **Penalty distributions** (§II-C, Figure 1b): per set, the discrete
//!    distribution over `f` with binomial weights (Eqs. 1–2); sets are
//!    independent and are combined by convolution.
//! 4. **Protection mechanisms** (§III): the Reliable Way truncates the
//!    binomial at `W − 1` faulty ways (Eq. 3) and drops the catastrophic
//!    all-faulty column; the Shared Reliable Buffer recomputes that column
//!    after removing references that provably hit in the SRB (§III-B2).
//! 5. **pWCET**: `pWCET(p) = WCET_ff + penalty quantile at p`, exposed as
//!    quantiles and full exceedance curves ([`PwcetEstimate`]).
//!
//! # Staged, shared-context pipeline
//!
//! The stages run over one immutable [`AnalysisContext`] per program:
//! the expanded CFG is built once, every CHMC classification level
//! (`0..=W`) is memoized — and, under the default
//! [`ClassificationMode::Incremental`], warm-started from the adjacent
//! level so only the full-associativity fixpoint ever runs cold — and
//! the per-`(set, fault)` delta ILP solves fan out across worker threads
//! according to [`AnalysisConfig::parallelism`]. The sequential mode
//! ([`Parallelism::Sequential`]) produces bit-identical results — see
//! `tests/parallel_equivalence.rs`. Use
//! [`PwcetAnalyzer::analyze_batch`] to parallelize across whole programs,
//! [`PwcetAnalyzer::analyze_with_context`] to reuse a context across
//! fault-model sweeps, and [`PwcetAnalyzer::with_cache`] to share a
//! content-addressed [`ContextCache`] of contexts across programs,
//! sweeps, and repeated suite runs.
//!
//! # Example
//!
//! ```
//! use pwcet_core::{AnalysisConfig, Protection, PwcetAnalyzer};
//! use pwcet_progen::{stmt, Program};
//!
//! # fn main() -> Result<(), pwcet_core::CoreError> {
//! let program = Program::new("demo")
//!     .with_function("main", stmt::loop_(100, stmt::compute(24)));
//! let analyzer = PwcetAnalyzer::new(AnalysisConfig::paper_default());
//! let analysis = analyzer.analyze(&program)?;
//! let unprotected = analysis.estimate(Protection::None);
//! let rw = analysis.estimate(Protection::ReliableWay);
//! assert!(rw.pwcet_at(1e-15) <= unprotected.pwcet_at(1e-15));
//! assert!(rw.pwcet_at(1e-15) >= analysis.fault_free_wcet());
//! # Ok(())
//! # }
//! ```

mod codec;
mod config;
mod context;
mod context_cache;
mod error;
mod estimate;
mod fmm;
mod pipeline;
mod reuse_plane;

pub use codec::{fnv1a_checksum, CodecError};
pub use config::AnalysisConfig;
pub use context::AnalysisContext;
pub use context_cache::{ContextCache, ContextCacheStats, DEFAULT_CONTEXT_CAPACITY};
pub use error::CoreError;
pub use estimate::{Protection, PwcetEstimate};
pub use fmm::FaultMissMap;
pub use pipeline::{delta_cost_model, expand_compiled, ProgramAnalysis, PwcetAnalyzer};
pub use pwcet_analysis::{ClassificationMode, ClassifierBackend, KernelStats};
pub use pwcet_ilp::{BasisSnapshot, SolveStats, SolverBackend};
pub use pwcet_ipet::{IpetOptions, IpetTemplate, TemplateCounters, TemplateRegistry};
pub use pwcet_par::Parallelism;
pub use reuse_plane::{
    NetworkTier, ReusePlane, ReusePlaneStats, ReuseTier, DEFAULT_DISK_CAPACITY_BYTES,
};
