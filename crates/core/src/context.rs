//! The shared, reusable analysis context of one compiled program.
//!
//! Every stage of the pipeline consumes the same three artifacts: the
//! expanded control-flow graph, the CHMC classification at some effective
//! associativity, and the SRB hit map. The seed pipeline recomputed the
//! classification from scratch for every reduced associativity on every
//! call; [`AnalysisContext`] builds the CFG once and memoizes each
//! classification level behind a [`OnceLock`], so concurrent fan-out
//! stages (and repeated analyses of the same program) share one immutable
//! copy.
//!
//! Under [`ClassificationMode::Incremental`] (the default) only the
//! full-associativity level runs a cold fixpoint: every lower level is
//! **warm-started** from the age-truncated converged states of the
//! nearest already-computed higher level, which is exact for this
//! abstract domain (see [`pwcet_analysis::Acs::truncate`]) and turns the
//! `W + 1` cold fixpoints of a full classification into one cold run plus
//! `W` single-pass verifications. [`ClassificationMode::Cold`] keeps the
//! independent cold fixpoints as the reference mode the differential
//! suite compares against.
//!
//! The context is `Send + Sync`: worker threads of the per-`(set, fault)`
//! ILP fan-out borrow it freely.

use std::sync::{Arc, Mutex, OnceLock};

use pwcet_analysis::{
    classify_level, classify_level_from, classify_srb, ChmcMap, ClassificationMode,
    ClassifiedLevel, SrbMap,
};
use pwcet_cache::{CacheGeometry, CacheTiming};
use pwcet_cfg::{CfgError, ExpandedCfg};
use pwcet_ipet::IpetOptions;
use pwcet_par::{par_for_each_index, par_join, Parallelism};
use pwcet_progen::CompiledProgram;

use crate::error::CoreError;
use crate::pipeline::{expand_compiled, SolveArtifacts};

/// The configuration slice the protection-independent solve stage
/// actually depends on. The fault model, convolution parameters, and
/// parallelism are deliberately absent: they don't change the FMM, the
/// SRB columns, or the fault-free WCET.
pub(crate) type SolveKey = (CacheTiming, IpetOptions);

/// Immutable per-program analysis state, shared by all pipeline stages.
///
/// # Example
///
/// ```
/// use pwcet_cache::CacheGeometry;
/// use pwcet_core::AnalysisContext;
/// use pwcet_progen::{stmt, Program};
///
/// # fn main() -> Result<(), pwcet_core::CoreError> {
/// let compiled = Program::new("demo")
///     .with_function("main", stmt::loop_(10, stmt::compute(8)))
///     .compile(0x0040_0000)?;
/// let context = AnalysisContext::build(&compiled, CacheGeometry::paper_default())?;
/// // Classification levels are memoized: repeated queries are free.
/// let full = context.chmc(context.geometry().ways());
/// assert_eq!(full.len(), context.chmc(context.geometry().ways()).len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AnalysisContext {
    name: String,
    cfg: ExpandedCfg,
    geometry: CacheGeometry,
    mode: ClassificationMode,
    /// `levels[a]` holds the classification at effective associativity
    /// `a`. Only the map is retained per level; the converged Must/May
    /// states live in [`full`](Self::full) alone.
    levels: Vec<OnceLock<ChmcMap>>,
    /// The full-associativity level with its converged Must/May states —
    /// the one warm-start source (truncation is transitive, so seeding
    /// any lower level directly from `W` is as exact as chaining through
    /// adjacent levels). Keeping states for this single level bounds the
    /// context's memory at one fixpoint's worth instead of `W + 1`.
    /// Incremental mode only; cold mode uses `levels[W]`.
    full: OnceLock<ClassifiedLevel>,
    srb: OnceLock<SrbMap>,
    /// Solve-stage products per `(timing, IPET)` configuration. A plain
    /// linear scan: real workloads touch one or two keys per context.
    solved: Mutex<Vec<(SolveKey, Arc<SolveArtifacts>)>>,
}

impl AnalysisContext {
    /// Reconstructs the expanded CFG of `compiled` and wraps it in a fresh
    /// context for `geometry` (no classification is run yet), using the
    /// default incremental classification mode.
    ///
    /// # Errors
    ///
    /// Propagates [`CfgError`] from CFG reconstruction.
    pub fn build(compiled: &CompiledProgram, geometry: CacheGeometry) -> Result<Self, CfgError> {
        Self::build_with_mode(compiled, geometry, ClassificationMode::default())
    }

    /// As [`build`](Self::build) with an explicit classification mode.
    ///
    /// # Errors
    ///
    /// Propagates [`CfgError`] from CFG reconstruction.
    pub fn build_with_mode(
        compiled: &CompiledProgram,
        geometry: CacheGeometry,
        mode: ClassificationMode,
    ) -> Result<Self, CfgError> {
        let cfg = expand_compiled(compiled)?;
        Ok(Self::from_cfg_with_mode(
            compiled.name(),
            cfg,
            geometry,
            mode,
        ))
    }

    /// Wraps an already-expanded CFG (incremental mode).
    pub fn from_cfg(name: impl Into<String>, cfg: ExpandedCfg, geometry: CacheGeometry) -> Self {
        Self::from_cfg_with_mode(name, cfg, geometry, ClassificationMode::default())
    }

    /// Wraps an already-expanded CFG with an explicit classification mode.
    pub fn from_cfg_with_mode(
        name: impl Into<String>,
        cfg: ExpandedCfg,
        geometry: CacheGeometry,
        mode: ClassificationMode,
    ) -> Self {
        let levels = geometry.ways() as usize + 1;
        Self {
            name: name.into(),
            cfg,
            geometry,
            mode,
            levels: (0..levels).map(|_| OnceLock::new()).collect(),
            full: OnceLock::new(),
            srb: OnceLock::new(),
            solved: Mutex::new(Vec::new()),
        }
    }

    /// The analyzed program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The expanded control-flow graph.
    pub fn cfg(&self) -> &ExpandedCfg {
        &self.cfg
    }

    /// The cache geometry the classifications are computed for.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// How classification levels are computed (cold vs. warm-started).
    pub fn mode(&self) -> ClassificationMode {
        self.mode
    }

    /// The full-associativity level — the single cold fixpoint of the
    /// incremental mode, retained with its states as the warm-start
    /// source for every lower level.
    fn full_level(&self) -> &ClassifiedLevel {
        self.full
            .get_or_init(|| classify_level(&self.cfg, &self.geometry, self.geometry.ways()))
    }

    /// The CHMC classification at effective associativity `assoc`,
    /// computing and caching it on first use (thread-safe).
    ///
    /// # Panics
    ///
    /// Panics when `assoc` exceeds the geometry's associativity.
    pub fn chmc(&self, assoc: u32) -> &ChmcMap {
        let ways = self.geometry.ways();
        let lock = self
            .levels
            .get(assoc as usize)
            .unwrap_or_else(|| panic!("associativity {assoc} out of range"));
        match self.mode {
            ClassificationMode::Cold => {
                lock.get_or_init(|| classify_level(&self.cfg, &self.geometry, assoc).into_chmc())
            }
            // The full level keeps its states; answer from it directly.
            ClassificationMode::Incremental if assoc == ways => self.full_level().chmc(),
            ClassificationMode::Incremental => lock.get_or_init(|| {
                if assoc == 0 {
                    // Trivial: a fully disabled set always misses.
                    classify_level(&self.cfg, &self.geometry, 0).into_chmc()
                } else {
                    // Warm start straight from level W (materializing it
                    // first if needed — a different OnceLock, so the
                    // nested init cannot deadlock).
                    classify_level_from(&self.cfg, &self.geometry, self.full_level(), assoc)
                        .into_chmc()
                }
            }),
        }
    }

    /// The SRB hit map (§III-B2), computed and cached on first use.
    pub fn srb(&self) -> &SrbMap {
        self.srb
            .get_or_init(|| classify_srb(&self.cfg, &self.geometry))
    }

    /// Eagerly fills every classification level (`0..=W`) and the SRB map.
    ///
    /// In the cold mode the `W + 2` fixpoints are independent jobs fanned
    /// out across worker threads. In the incremental mode level `W` runs
    /// cold and seeds every lower level, which runs as one job alongside
    /// the independent SRB fixpoint via [`par_join`].
    ///
    /// Levels already computed are skipped; the call is idempotent.
    pub fn prewarm(&self, parallelism: Parallelism) {
        match self.mode {
            ClassificationMode::Cold => {
                let levels = self.levels.len();
                par_for_each_index(parallelism, levels + 1, |job| {
                    if job == levels {
                        let _ = self.srb();
                    } else {
                        let _ = self.chmc(job as u32);
                    }
                });
            }
            ClassificationMode::Incremental => {
                par_join(
                    parallelism,
                    || {
                        // Descending: W runs cold, every lower level is
                        // warm-started from its retained states.
                        for assoc in (0..self.levels.len() as u32).rev() {
                            let _ = self.chmc(assoc);
                        }
                    },
                    || {
                        let _ = self.srb();
                    },
                );
            }
        }
    }

    /// Number of classification levels already materialized (test/debug
    /// introspection).
    pub fn warmed_levels(&self) -> usize {
        // In incremental mode level W lives in `full`, not in `levels`;
        // the two stores are disjoint across modes, so the sum is exact.
        self.levels
            .iter()
            .filter(|lock| lock.get().is_some())
            .count()
            + usize::from(self.full.get().is_some())
    }

    /// The memoized solve-stage artifacts for `key`, running `compute` on
    /// the first request. The (expensive, ILP-heavy) computation runs
    /// outside the lock; when two threads race on the same key the first
    /// insert wins and the loser adopts it, so every caller observes one
    /// shared value. Failures are not cached.
    pub(crate) fn solve_artifacts(
        &self,
        key: SolveKey,
        compute: impl FnOnce() -> Result<SolveArtifacts, CoreError>,
    ) -> Result<Arc<SolveArtifacts>, CoreError> {
        {
            let solved = self.solved.lock().expect("solve memo lock");
            if let Some((_, artifacts)) = solved.iter().find(|(k, _)| *k == key) {
                return Ok(Arc::clone(artifacts));
            }
        }
        let artifacts = Arc::new(compute()?);
        let mut solved = self.solved.lock().expect("solve memo lock");
        if let Some((_, existing)) = solved.iter().find(|(k, _)| *k == key) {
            return Ok(Arc::clone(existing));
        }
        solved.push((key, Arc::clone(&artifacts)));
        Ok(artifacts)
    }

    /// Number of distinct `(timing, IPET)` configurations whose solve
    /// artifacts are memoized (test/debug introspection).
    pub fn solved_configurations(&self) -> usize {
        self.solved.lock().expect("solve memo lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwcet_analysis::classify;
    use pwcet_progen::{stmt, Program};

    fn context() -> AnalysisContext {
        context_with_mode(ClassificationMode::Incremental)
    }

    fn context_with_mode(mode: ClassificationMode) -> AnalysisContext {
        let compiled = Program::new("ctx")
            .with_function("main", stmt::loop_(30, stmt::compute(24)))
            .compile(0x0040_0000)
            .unwrap();
        AnalysisContext::build_with_mode(&compiled, CacheGeometry::paper_default(), mode).unwrap()
    }

    #[test]
    fn memoizes_classification_levels() {
        let ctx = context();
        assert_eq!(ctx.warmed_levels(), 0);
        let first = ctx.chmc(4) as *const ChmcMap;
        let second = ctx.chmc(4) as *const ChmcMap;
        assert_eq!(first, second, "second query must hit the cache");
        assert_eq!(ctx.warmed_levels(), 1);
    }

    #[test]
    fn prewarm_fills_every_level() {
        for mode in [ClassificationMode::Cold, ClassificationMode::Incremental] {
            let ctx = context_with_mode(mode);
            ctx.prewarm(Parallelism::threads(3));
            assert_eq!(ctx.warmed_levels(), 5, "{mode:?}");
            ctx.prewarm(Parallelism::Sequential); // idempotent
            assert_eq!(ctx.warmed_levels(), 5, "{mode:?}");
        }
    }

    #[test]
    fn prewarmed_levels_match_direct_classification() {
        for mode in [ClassificationMode::Cold, ClassificationMode::Incremental] {
            let ctx = context_with_mode(mode);
            ctx.prewarm(Parallelism::threads(2));
            for assoc in 0..=4u32 {
                let direct = classify(ctx.cfg(), ctx.geometry(), assoc);
                let warmed = ctx.chmc(assoc);
                assert_eq!(warmed, &direct, "{mode:?} assoc {assoc}");
            }
        }
    }

    #[test]
    fn lazy_incremental_query_chains_from_full_associativity() {
        let ctx = context();
        // Querying a middle level first must materialize level W (the one
        // cold fixpoint) and chain down — and still be bit-identical.
        let direct = classify(ctx.cfg(), ctx.geometry(), 2);
        assert_eq!(ctx.chmc(2), &direct);
        assert!(
            ctx.warmed_levels() >= 2,
            "the warm chain materializes the full-associativity source too"
        );
    }

    #[test]
    fn context_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisContext>();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_level_panics() {
        let ctx = context();
        let _ = ctx.chmc(5);
    }
}
