//! The shared, reusable analysis context of one compiled program.
//!
//! Every stage of the pipeline consumes the same three artifacts: the
//! expanded control-flow graph, the CHMC classification at some effective
//! associativity, and the SRB hit map. The seed pipeline recomputed the
//! classification from scratch for every reduced associativity on every
//! call; [`AnalysisContext`] builds the CFG once and memoizes each
//! classification level behind a [`OnceLock`], so concurrent fan-out
//! stages (and repeated analyses of the same program) share one immutable
//! copy.
//!
//! Under [`ClassificationMode::Incremental`] (the default) only the
//! full-associativity level runs a cold fixpoint: every lower level is
//! **warm-started** from the age-truncated converged states of the
//! nearest already-computed higher level, which is exact for this
//! abstract domain (see [`pwcet_analysis::Acs::truncate`]) and turns the
//! `W + 1` cold fixpoints of a full classification into one cold run plus
//! `W` single-pass verifications. [`ClassificationMode::Cold`] keeps the
//! independent cold fixpoints as the reference mode the differential
//! suite compares against.
//!
//! The context is `Send + Sync`: worker threads of the per-`(set, fault)`
//! ILP fan-out borrow it freely.

use std::sync::{Arc, Mutex, OnceLock};

use pwcet_analysis::{
    classify_level_from_with, classify_level_with, classify_srb_with, Chmc, ChmcMap,
    ClassificationMode, ClassifiedLevel, ClassifierBackend, KernelStats, KernelStatsCell, Scope,
    SrbMap,
};
use pwcet_cache::{CacheGeometry, CacheTiming};
use pwcet_cfg::{CfgError, ExpandedCfg, NodeId};
use pwcet_ilp::{SolveStats, SolveStatsCell};
use pwcet_ipet::{BasisSnapshot, IpetOptions, IpetTemplate, TemplateRegistry};
use pwcet_par::{par_for_each_index, par_join, Parallelism};
use pwcet_progen::CompiledProgram;

use crate::codec::Fnv1a;
use crate::error::CoreError;
use crate::pipeline::{expand_compiled, SolveArtifacts};

/// Per-set reference buckets: `index[s]` lists the `(node, reference
/// index)` pairs whose address maps to cache set `s`, in graph order
/// (see [`AnalysisContext::set_refs`]).
pub type SetRefIndex = Vec<Vec<(NodeId, usize)>>;

/// The configuration slice the protection-independent solve stage
/// actually depends on. The fault model, convolution parameters, and
/// parallelism are deliberately absent: they don't change the FMM, the
/// SRB columns, or the fault-free WCET.
pub(crate) type SolveKey = (CacheTiming, IpetOptions);

/// Immutable per-program analysis state, shared by all pipeline stages.
///
/// # Example
///
/// ```
/// use pwcet_cache::CacheGeometry;
/// use pwcet_core::AnalysisContext;
/// use pwcet_progen::{stmt, Program};
///
/// # fn main() -> Result<(), pwcet_core::CoreError> {
/// let compiled = Program::new("demo")
///     .with_function("main", stmt::loop_(10, stmt::compute(8)))
///     .compile(0x0040_0000)?;
/// let context = AnalysisContext::build(&compiled, CacheGeometry::paper_default())?;
/// // Classification levels are memoized: repeated queries are free.
/// let full = context.chmc(context.geometry().ways());
/// assert_eq!(full.len(), context.chmc(context.geometry().ways()).len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AnalysisContext {
    name: String,
    /// Shared: derived sibling contexts of a geometry lattice reuse one
    /// expanded graph instead of cloning it per associativity.
    cfg: Arc<ExpandedCfg>,
    geometry: CacheGeometry,
    mode: ClassificationMode,
    backend: ClassifierBackend,
    /// `levels[a]` holds the classification at effective associativity
    /// `a`. Only the map is retained per level; the converged Must/May
    /// states live in [`full`](Self::full) alone.
    levels: Vec<OnceLock<ChmcMap>>,
    /// The full-associativity level with its converged Must/May states —
    /// the one warm-start source (truncation is transitive, so seeding
    /// any lower level directly from `W` is as exact as chaining through
    /// adjacent levels). Keeping states for this single level bounds the
    /// context's memory at one fixpoint's worth instead of `W + 1`.
    /// Incremental mode only; cold mode uses `levels[W]`.
    full: OnceLock<ClassifiedLevel>,
    srb: OnceLock<SrbMap>,
    /// Solve-stage products per `(timing, IPET)` configuration. A plain
    /// linear scan: real workloads touch one or two keys per context.
    solved: Mutex<Vec<(SolveKey, Arc<SolveArtifacts>)>>,
    /// Per-context memo of registry-obtained IPET templates per
    /// [`IpetOptions`] — the shared constraint matrix every
    /// `(set, fault)` delta ILP, SRB column ILP, and fault-free WCET
    /// solve of this program reuses (timing only changes objectives, so
    /// it is not part of the key). Linear scan like `solved`; the
    /// templates themselves live in (and are deduplicated by) the
    /// attached [`TemplateRegistry`], so sibling geometries of one CFG
    /// memoize the *same* `Arc`.
    templates: Mutex<Vec<(IpetOptions, Arc<IpetTemplate>)>>,
    /// The cross-geometry template registry, attached set-once by the
    /// reuse plane (a plane-less context lazily creates a private one).
    registry: OnceLock<Arc<TemplateRegistry>>,
    /// Serialized factored bases restored from a disk/network entry,
    /// waiting for the first [`ipet_template`](Self::ipet_template)
    /// request of their options to seed the template's workspace pool.
    pending_bases: Mutex<Vec<(IpetOptions, BasisSnapshot)>>,
    /// Structural fingerprint of `cfg` — the registry key — computed
    /// once on first template request (or inherited by derivation).
    cfg_fp: OnceLock<u64>,
    /// Per-set reference index: for each cache set, the `(node,
    /// reference index)` pairs mapping to it, in graph order. Depends
    /// only on the graph, the set count, and the block size — all shared
    /// across a geometry lattice — so derivation hands the `Arc` to
    /// siblings instead of rebuilding.
    set_refs: OnceLock<Arc<SetRefIndex>>,
    /// Cumulative solver counters of every solve stage run over this
    /// context.
    ilp_stats: SolveStatsCell,
    /// Cumulative classification-kernel counters (worklist passes, slot
    /// words touched, dirty-skipped sets) of every fixpoint run over this
    /// context. The packed backend records; the set-based reference is
    /// deliberately uninstrumented.
    kernel_stats: KernelStatsCell,
}

impl AnalysisContext {
    /// Reconstructs the expanded CFG of `compiled` and wraps it in a fresh
    /// context for `geometry` (no classification is run yet), using the
    /// default incremental classification mode.
    ///
    /// # Errors
    ///
    /// Propagates [`CfgError`] from CFG reconstruction.
    pub fn build(compiled: &CompiledProgram, geometry: CacheGeometry) -> Result<Self, CfgError> {
        Self::build_with_mode(compiled, geometry, ClassificationMode::default())
    }

    /// As [`build`](Self::build) with an explicit classification mode.
    ///
    /// # Errors
    ///
    /// Propagates [`CfgError`] from CFG reconstruction.
    pub fn build_with_mode(
        compiled: &CompiledProgram,
        geometry: CacheGeometry,
        mode: ClassificationMode,
    ) -> Result<Self, CfgError> {
        Self::build_with_backend(compiled, geometry, mode, ClassifierBackend::default())
    }

    /// As [`build_with_mode`](Self::build_with_mode) with an explicit
    /// classification-kernel backend. [`ClassifierBackend::SetReference`]
    /// is the frozen oracle the differential suites compare the default
    /// packed kernel against.
    ///
    /// # Errors
    ///
    /// Propagates [`CfgError`] from CFG reconstruction.
    pub fn build_with_backend(
        compiled: &CompiledProgram,
        geometry: CacheGeometry,
        mode: ClassificationMode,
        backend: ClassifierBackend,
    ) -> Result<Self, CfgError> {
        let cfg = expand_compiled(compiled)?;
        Ok(Self::from_shared_cfg(
            compiled.name(),
            Arc::new(cfg),
            geometry,
            mode,
            backend,
        ))
    }

    /// Wraps an already-expanded CFG (incremental mode).
    pub fn from_cfg(name: impl Into<String>, cfg: ExpandedCfg, geometry: CacheGeometry) -> Self {
        Self::from_cfg_with_mode(name, cfg, geometry, ClassificationMode::default())
    }

    /// Wraps an already-expanded CFG with an explicit classification mode.
    pub fn from_cfg_with_mode(
        name: impl Into<String>,
        cfg: ExpandedCfg,
        geometry: CacheGeometry,
        mode: ClassificationMode,
    ) -> Self {
        Self::from_shared_cfg(
            name,
            Arc::new(cfg),
            geometry,
            mode,
            ClassifierBackend::default(),
        )
    }

    /// As [`from_cfg_with_mode`](Self::from_cfg_with_mode) over an
    /// already-shared graph (derived lattice siblings, disk restores).
    pub(crate) fn from_shared_cfg(
        name: impl Into<String>,
        cfg: Arc<ExpandedCfg>,
        geometry: CacheGeometry,
        mode: ClassificationMode,
        backend: ClassifierBackend,
    ) -> Self {
        let levels = geometry.ways() as usize + 1;
        Self {
            name: name.into(),
            cfg,
            geometry,
            mode,
            backend,
            levels: (0..levels).map(|_| OnceLock::new()).collect(),
            full: OnceLock::new(),
            srb: OnceLock::new(),
            solved: Mutex::new(Vec::new()),
            templates: Mutex::new(Vec::new()),
            registry: OnceLock::new(),
            pending_bases: Mutex::new(Vec::new()),
            cfg_fp: OnceLock::new(),
            set_refs: OnceLock::new(),
            ilp_stats: SolveStatsCell::default(),
            kernel_stats: KernelStatsCell::default(),
        }
    }

    /// The analyzed program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The expanded control-flow graph.
    pub fn cfg(&self) -> &ExpandedCfg {
        &self.cfg
    }

    /// The cache geometry the classifications are computed for.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// How classification levels are computed (cold vs. warm-started).
    pub fn mode(&self) -> ClassificationMode {
        self.mode
    }

    /// Which abstract-domain kernel runs the classification fixpoints.
    pub fn backend(&self) -> ClassifierBackend {
        self.backend
    }

    /// The full-associativity level — the single cold fixpoint of the
    /// incremental mode, retained with its states as the warm-start
    /// source for every lower level.
    fn full_level(&self) -> &ClassifiedLevel {
        self.full.get_or_init(|| {
            classify_level_with(
                &self.cfg,
                &self.geometry,
                self.geometry.ways(),
                self.backend,
                Some(&self.kernel_stats),
            )
        })
    }

    /// The CHMC classification at effective associativity `assoc`,
    /// computing and caching it on first use (thread-safe).
    ///
    /// # Panics
    ///
    /// Panics when `assoc` exceeds the geometry's associativity.
    pub fn chmc(&self, assoc: u32) -> &ChmcMap {
        let ways = self.geometry.ways();
        let lock = self
            .levels
            .get(assoc as usize)
            .unwrap_or_else(|| panic!("associativity {assoc} out of range"));
        match self.mode {
            ClassificationMode::Cold => lock.get_or_init(|| {
                classify_level_with(
                    &self.cfg,
                    &self.geometry,
                    assoc,
                    self.backend,
                    Some(&self.kernel_stats),
                )
                .into_chmc()
            }),
            // The full level keeps its states; answer from it directly.
            ClassificationMode::Incremental if assoc == ways => self.full_level().chmc(),
            ClassificationMode::Incremental => lock.get_or_init(|| {
                if assoc == 0 {
                    // Trivial: a fully disabled set always misses.
                    classify_level_with(
                        &self.cfg,
                        &self.geometry,
                        0,
                        self.backend,
                        Some(&self.kernel_stats),
                    )
                    .into_chmc()
                } else {
                    // Warm start straight from level W (materializing it
                    // first if needed — a different OnceLock, so the
                    // nested init cannot deadlock).
                    classify_level_from_with(
                        &self.cfg,
                        &self.geometry,
                        self.full_level(),
                        assoc,
                        self.backend,
                        Some(&self.kernel_stats),
                    )
                    .into_chmc()
                }
            }),
        }
    }

    /// The SRB hit map (§III-B2), computed and cached on first use.
    pub fn srb(&self) -> &SrbMap {
        self.srb.get_or_init(|| {
            classify_srb_with(
                &self.cfg,
                &self.geometry,
                self.backend,
                Some(&self.kernel_stats),
            )
        })
    }

    /// The per-set reference index, built on first use: `index[s]` lists
    /// the `(node, reference index)` pairs whose address maps to cache
    /// set `s`, in graph order. The per-`(set, fault)` delta fan-out
    /// iterates one bucket instead of scanning every reference of the
    /// graph per job.
    pub fn set_refs(&self) -> &Arc<SetRefIndex> {
        self.set_refs.get_or_init(|| {
            let mut by_set = vec![Vec::new(); self.geometry.sets() as usize];
            for node in self.cfg.nodes() {
                for (i, &addr) in node.addrs().iter().enumerate() {
                    by_set[self.geometry.set_of(addr) as usize].push((node.id(), i));
                }
            }
            Arc::new(by_set)
        })
    }

    /// Eagerly fills every classification level (`0..=W`) and the SRB map.
    ///
    /// In the cold mode the `W + 2` fixpoints are independent jobs fanned
    /// out across worker threads. In the incremental mode level `W` runs
    /// cold and seeds every lower level, which runs as one job alongside
    /// the independent SRB fixpoint via [`par_join`].
    ///
    /// Levels already computed are skipped; the call is idempotent.
    pub fn prewarm(&self, parallelism: Parallelism) {
        // One span covers the whole classify stage, recorded on the
        // calling thread (the fixpoint jobs themselves may run on
        // untraced workers).
        let _span = pwcet_obs::stage_span(pwcet_obs::Stage::Classify);
        match self.mode {
            ClassificationMode::Cold => {
                let levels = self.levels.len();
                par_for_each_index(parallelism, levels + 1, |job| {
                    if job == levels {
                        let _ = self.srb();
                    } else {
                        let _ = self.chmc(job as u32);
                    }
                });
            }
            ClassificationMode::Incremental => {
                par_join(
                    parallelism,
                    || {
                        // Descending: W runs cold, every lower level is
                        // warm-started from its retained states.
                        for assoc in (0..self.levels.len() as u32).rev() {
                            let _ = self.chmc(assoc);
                        }
                    },
                    || {
                        let _ = self.srb();
                    },
                );
            }
        }
    }

    /// Number of classification levels already materialized (test/debug
    /// introspection).
    pub fn warmed_levels(&self) -> usize {
        // In incremental mode level W lives in `full`, not in `levels`;
        // the two stores are disjoint across modes, so the sum is exact.
        self.levels
            .iter()
            .filter(|lock| lock.get().is_some())
            .count()
            + usize::from(self.full.get().is_some())
    }

    /// The memoized solve-stage artifacts for `key`, running `compute` on
    /// the first request. The (expensive, ILP-heavy) computation runs
    /// outside the lock; when two threads race on the same key the first
    /// insert wins and the loser adopts it, so every caller observes one
    /// shared value. Failures are not cached.
    ///
    /// `compute` returns its solver counters alongside the artifacts;
    /// they are handed back (`Some`) only when *this* call's computation
    /// was the one installed, so memo hits — and racing losers, whose
    /// work is discarded — record no stats.
    pub(crate) fn solve_artifacts(
        &self,
        key: SolveKey,
        compute: impl FnOnce() -> Result<(SolveArtifacts, SolveStats), CoreError>,
    ) -> Result<(Arc<SolveArtifacts>, Option<SolveStats>), CoreError> {
        {
            let solved = self.solved.lock().expect("solve memo lock");
            if let Some((_, artifacts)) = solved.iter().find(|(k, _)| *k == key) {
                return Ok((Arc::clone(artifacts), None));
            }
        }
        let (artifacts, stats) = compute()?;
        let artifacts = Arc::new(artifacts);
        let mut solved = self.solved.lock().expect("solve memo lock");
        if let Some((_, existing)) = solved.iter().find(|(k, _)| *k == key) {
            return Ok((Arc::clone(existing), None));
        }
        solved.push((key, Arc::clone(&artifacts)));
        Ok((artifacts, Some(stats)))
    }

    /// Number of distinct `(timing, IPET)` configurations whose solve
    /// artifacts are memoized (test/debug introspection).
    pub fn solved_configurations(&self) -> usize {
        self.solved.lock().expect("solve memo lock").len()
    }

    /// Attaches the cross-geometry [`TemplateRegistry`] templates are
    /// resolved through. Set-once: later calls are ignored, so the
    /// reuse plane can attach unconditionally on every tier path.
    pub fn attach_registry(&self, registry: Arc<TemplateRegistry>) {
        let _ = self.registry.set(registry);
    }

    /// The attached registry, or a lazily created private one for
    /// contexts running without a reuse plane (the template path is
    /// identical either way; a private registry just has no siblings to
    /// share with).
    fn registry(&self) -> &Arc<TemplateRegistry> {
        self.registry
            .get_or_init(|| Arc::new(TemplateRegistry::new()))
    }

    /// A process-stable structural fingerprint of the expanded graph —
    /// the registry key. Derived siblings share the graph `Arc` and
    /// inherit the computed value; a restored context re-expands the
    /// identical graph from the same image, so equal programs always
    /// present equal fingerprints and land on one shared template.
    pub(crate) fn cfg_fingerprint(&self) -> u64 {
        *self.cfg_fp.get_or_init(|| {
            let cfg = &self.cfg;
            let mut h = Fnv1a::new();
            h.write_u32(cfg.nodes().len() as u32);
            for node in cfg.nodes() {
                h.write_u32(node.addrs().len() as u32);
                for &addr in node.addrs() {
                    h.write_u32(addr);
                }
            }
            h.write_u32(cfg.entry() as u32);
            h.write_u32(cfg.exit() as u32);
            for (from, to) in cfg.edges() {
                h.write_u32(from as u32);
                h.write_u32(to as u32);
            }
            h.write_u32(cfg.loops().len() as u32);
            for l in cfg.loops() {
                h.write_u32(l.header as u32);
                h.write_u32(l.bound);
                h.write_u32(l.back_edges.len() as u32);
                for &(from, to) in &l.back_edges {
                    h.write_u32(from as u32);
                    h.write_u32(to as u32);
                }
            }
            h.finish()
        })
    }

    /// The factored [`IpetTemplate`] of this program for `options`,
    /// resolved through the attached [`TemplateRegistry`] on first
    /// request and memoized per context after that. The registry keys
    /// by CFG fingerprint, so every sibling geometry of a lattice sweep
    /// — and every restored copy of this program — shares one template
    /// and its factored basis pool. The template carries the union of
    /// first-extra groups over every classification level `0..=W` of
    /// the *widest geometry that asked*, so it can solve the WCET cost
    /// model, every `(set, fault)` delta model, and every SRB column
    /// model of any covered sibling; a lookup needing more groups
    /// triggers a counted merged-union rebuild in the registry, never a
    /// wrong bound.
    ///
    /// Building it materializes every classification level (they define
    /// the group union); under [`prewarm`](Self::prewarm) that work has
    /// already happened.
    pub fn ipet_template(&self, options: IpetOptions) -> Arc<IpetTemplate> {
        {
            let templates = self.templates.lock().expect("template memo lock");
            if let Some((_, template)) = templates.iter().find(|(o, _)| *o == options) {
                return Arc::clone(template);
            }
        }
        // Resolved outside the memo lock (level materialization and
        // model building can be expensive); the registry deduplicates
        // racing builds globally, so the memo insert below is a single
        // critical section with latest-wins overwrite — both racers end
        // up memoizing the same registry-owned template.
        let groups = self.first_extra_group_union();
        let template = self
            .registry()
            .obtain(self.cfg_fingerprint(), &self.cfg, &groups, options);
        self.seed_pending_bases(&template, options);
        let mut templates = self.templates.lock().expect("template memo lock");
        match templates.iter_mut().find(|(o, _)| *o == options) {
            Some(entry) => entry.1 = Arc::clone(&template),
            None => templates.push((options, Arc::clone(&template))),
        }
        drop(templates);
        template
    }

    /// Drains restored bases matching `options` into `template`'s
    /// workspace pool, counting each restore or rejection on the
    /// registry. A rejected basis leaves the template cold — it costs
    /// one counted factorization on the first solve, never a wrong
    /// bound.
    fn seed_pending_bases(&self, template: &IpetTemplate, options: IpetOptions) {
        let matching: Vec<BasisSnapshot> = {
            let mut pending = self.pending_bases.lock().expect("pending bases lock");
            let mut taken = Vec::new();
            pending.retain(|(o, snapshot)| {
                if *o == options {
                    taken.push(snapshot.clone());
                    false
                } else {
                    true
                }
            });
            taken
        };
        for snapshot in &matching {
            if template.seed_basis(snapshot) {
                self.registry().record_basis_restore();
            } else {
                self.registry().record_basis_reject();
            }
        }
    }

    /// Every exportable factored basis of this context: one per
    /// memoized template that has solved (or been seeded), plus any
    /// restored bases still pending because their options were never
    /// requested again — dropping those would lose persistence across a
    /// chain of restarts that only prewarm.
    pub(crate) fn collect_bases(&self) -> Vec<(IpetOptions, BasisSnapshot)> {
        let mut bases: Vec<(IpetOptions, BasisSnapshot)> = {
            let templates = self.templates.lock().expect("template memo lock");
            templates
                .iter()
                .filter_map(|(options, template)| {
                    template.export_basis().map(|basis| (*options, basis))
                })
                .collect()
        };
        let pending = self.pending_bases.lock().expect("pending bases lock");
        for (options, snapshot) in pending.iter() {
            if !bases.iter().any(|(o, _)| o == options) {
                bases.push((*options, snapshot.clone()));
            }
        }
        bases
    }

    /// Number of factored bases [`collect_bases`](Self::collect_bases)
    /// would export — presence counting only, no snapshot clones (this
    /// feeds the reuse plane's per-persist richness gate).
    pub(crate) fn basis_count(&self) -> usize {
        let with_basis = {
            let templates = self.templates.lock().expect("template memo lock");
            templates
                .iter()
                .filter(|(_, template)| template.has_basis())
                .map(|(options, _)| *options)
                .collect::<Vec<_>>()
        };
        let pending = self.pending_bases.lock().expect("pending bases lock");
        with_basis.len()
            + pending
                .iter()
                .filter(|(o, _)| !with_basis.contains(o))
                .count()
    }

    /// Every `(node, scope)` first-extra group any classification level
    /// of this context can charge: the union over `0..=W` of the
    /// first-miss scopes per reference. Cost models built from these
    /// levels (WCET, per-`(set, fault)` deltas, SRB columns) charge
    /// subsets of it.
    fn first_extra_group_union(&self) -> Vec<(NodeId, Scope)> {
        let mut groups = Vec::new();
        for assoc in 0..=self.geometry.ways() {
            let chmc = self.chmc(assoc);
            for node in self.cfg.nodes() {
                for index in 0..node.addrs().len() {
                    if let Chmc::FirstMiss(scope) = chmc.get(node.id(), index) {
                        groups.push((node.id(), scope));
                    }
                }
            }
        }
        groups
    }

    /// Adds one solve stage's solver counters to this context's total.
    pub fn record_ilp_stats(&self, stats: &SolveStats) {
        self.ilp_stats.record(stats);
    }

    /// Cumulative solver counters (pivots, branch-and-bound nodes,
    /// warm-start hits…) over every solve stage run on this context.
    pub fn ilp_stats(&self) -> SolveStats {
        self.ilp_stats.snapshot()
    }

    /// Cumulative classification-kernel counters (worklist passes, slot
    /// words touched, dirty-skipped sets) over every fixpoint run on this
    /// context. Zero under [`ClassifierBackend::SetReference`].
    pub fn kernel_stats(&self) -> KernelStats {
        self.kernel_stats.snapshot()
    }

    /// Whether the SRB map has been materialized.
    pub fn srb_warmed(&self) -> bool {
        self.srb.get().is_some()
    }

    /// The shared expanded graph handle (test-only: codec round-trips
    /// restore against the original graph without re-expanding).
    #[cfg(test)]
    pub(crate) fn shared_cfg(&self) -> Arc<ExpandedCfg> {
        Arc::clone(&self.cfg)
    }

    /// A clone of every memoized artifact — what the on-disk tier of the
    /// reuse plane serializes. Unwarmed slots stay `None`/empty and cost
    /// nothing on disk.
    pub(crate) fn snapshot_parts(&self) -> ContextParts {
        ContextParts {
            full: self.full.get().cloned(),
            levels: self.levels.iter().map(|l| l.get().cloned()).collect(),
            srb: self.srb.get().cloned(),
            solved: self
                .solved
                .lock()
                .expect("solve memo lock")
                .iter()
                .map(|(key, artifacts)| (*key, artifacts.as_ref().clone()))
                .collect(),
            bases: self.collect_bases(),
        }
    }

    /// Rebuilds a context around restored artifacts (the decode side of
    /// the on-disk tier). Slots absent from `parts` stay lazy and are
    /// recomputed on demand exactly as in a fresh context.
    ///
    /// # Panics
    ///
    /// Panics when `parts.levels` does not cover `0..=W` of `geometry`.
    pub(crate) fn from_parts(
        name: impl Into<String>,
        cfg: Arc<ExpandedCfg>,
        geometry: CacheGeometry,
        mode: ClassificationMode,
        backend: ClassifierBackend,
        parts: ContextParts,
    ) -> Self {
        let context = Self::from_shared_cfg(name, cfg, geometry, mode, backend);
        assert_eq!(
            parts.levels.len(),
            context.levels.len(),
            "restored parts must cover levels 0..=W"
        );
        if let Some(full) = parts.full {
            let _ = context.full.set(full);
        }
        for (lock, level) in context.levels.iter().zip(parts.levels) {
            if let Some(map) = level {
                let _ = lock.set(map);
            }
        }
        if let Some(srb) = parts.srb {
            let _ = context.srb.set(srb);
        }
        *context.solved.lock().expect("solve memo lock") = parts
            .solved
            .into_iter()
            .map(|(key, artifacts)| (key, Arc::new(artifacts)))
            .collect();
        *context.pending_bases.lock().expect("pending bases lock") = parts.bases;
        context
    }

    /// Derives the context of a **narrower-way sibling geometry** from
    /// this one: the converged full-associativity states are age-truncated
    /// into the sibling's full level ([`classify_level_from`]), so the
    /// sibling never runs a cold fixpoint — its lower levels warm-start
    /// from the derived level as usual, and the SRB map (independent of
    /// the way count) is carried over verbatim. The expanded graph is
    /// shared, not cloned.
    ///
    /// Results are bit-identical to a cold build of the sibling;
    /// `tests/incremental_equivalence.rs` pins it per way count across
    /// the suite.
    ///
    /// # Panics
    ///
    /// Panics unless `geometry` is strictly narrower and derivable from
    /// this context's geometry ([`CacheGeometry::derivable_from`]) and
    /// the context uses [`ClassificationMode::Incremental`].
    pub fn derive_narrower(&self, geometry: CacheGeometry) -> AnalysisContext {
        assert!(
            geometry.derivable_from(&self.geometry) && geometry.ways() < self.geometry.ways(),
            "derivation requires a strictly narrower sibling geometry \
             (have {}, requested {geometry})",
            self.geometry
        );
        assert_eq!(
            self.mode,
            ClassificationMode::Incremental,
            "cold mode is the from-scratch reference; deriving would defeat it"
        );
        let derived_full = classify_level_from_with(
            &self.cfg,
            &geometry,
            self.full_level(),
            geometry.ways(),
            self.backend,
            Some(&self.kernel_stats),
        );
        // Lower levels are geometry-portable: a classification at
        // effective associativity `a` depends only on the graph, the set
        // count, and the block size (see `classify_level_from`'s
        // cross-geometry contract), all shared across the lattice. Carry
        // over whatever this context has already materialized below the
        // sibling's full level so the sibling skips those warm fixpoints
        // entirely; unmaterialized slots stay lazy as usual.
        let mut levels = vec![None; geometry.ways() as usize + 1];
        for (assoc, slot) in levels.iter_mut().enumerate().take(geometry.ways() as usize) {
            *slot = self.levels[assoc].get().cloned();
        }
        let sibling = Self::from_parts(
            self.name.clone(),
            Arc::clone(&self.cfg),
            geometry,
            self.mode,
            self.backend,
            ContextParts {
                full: Some(derived_full),
                levels,
                // The SRB pseudo-geometry (one set, one way) only depends
                // on the block size, which siblings share.
                srb: self.srb.get().cloned(),
                solved: Vec::new(),
                // No pending bases: the sibling shares this context's
                // registry and fingerprint, so its template requests land
                // on the already-warm shared pool directly.
                bases: Vec::new(),
            },
        );
        // Same graph, same registry: the sibling's template lookups hit
        // the shared factored basis pool instead of refactoring (the
        // plane re-attaches its own registry, which set-once ignores).
        let _ = sibling.registry.set(Arc::clone(self.registry()));
        if let Some(&fp) = self.cfg_fp.get() {
            let _ = sibling.cfg_fp.set(fp);
        }
        // The set mapping ignores the way count; hand the index over.
        if let Some(refs) = self.set_refs.get() {
            let _ = sibling.set_refs.set(Arc::clone(refs));
        }
        sibling
    }
}

/// The serializable artifact slots of one context (see
/// [`AnalysisContext::snapshot_parts`]).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ContextParts {
    pub(crate) full: Option<ClassifiedLevel>,
    pub(crate) levels: Vec<Option<ChmcMap>>,
    pub(crate) srb: Option<SrbMap>,
    pub(crate) solved: Vec<(SolveKey, SolveArtifacts)>,
    /// Serialized factored bases per [`IpetOptions`] (PWCX v3; empty
    /// for v2 entries) — restored into `pending_bases`, seeded into the
    /// shared template on its first request.
    pub(crate) bases: Vec<(IpetOptions, BasisSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwcet_analysis::classify;
    use pwcet_progen::{stmt, Program};

    fn context() -> AnalysisContext {
        context_with_mode(ClassificationMode::Incremental)
    }

    fn context_with_mode(mode: ClassificationMode) -> AnalysisContext {
        let compiled = Program::new("ctx")
            .with_function("main", stmt::loop_(30, stmt::compute(24)))
            .compile(0x0040_0000)
            .unwrap();
        AnalysisContext::build_with_mode(&compiled, CacheGeometry::paper_default(), mode).unwrap()
    }

    #[test]
    fn memoizes_classification_levels() {
        let ctx = context();
        assert_eq!(ctx.warmed_levels(), 0);
        let first = ctx.chmc(4) as *const ChmcMap;
        let second = ctx.chmc(4) as *const ChmcMap;
        assert_eq!(first, second, "second query must hit the cache");
        assert_eq!(ctx.warmed_levels(), 1);
    }

    #[test]
    fn prewarm_fills_every_level() {
        for mode in [ClassificationMode::Cold, ClassificationMode::Incremental] {
            let ctx = context_with_mode(mode);
            ctx.prewarm(Parallelism::threads(3));
            assert_eq!(ctx.warmed_levels(), 5, "{mode:?}");
            ctx.prewarm(Parallelism::Sequential); // idempotent
            assert_eq!(ctx.warmed_levels(), 5, "{mode:?}");
        }
    }

    #[test]
    fn prewarmed_levels_match_direct_classification() {
        for mode in [ClassificationMode::Cold, ClassificationMode::Incremental] {
            let ctx = context_with_mode(mode);
            ctx.prewarm(Parallelism::threads(2));
            for assoc in 0..=4u32 {
                let direct = classify(ctx.cfg(), ctx.geometry(), assoc);
                let warmed = ctx.chmc(assoc);
                assert_eq!(warmed, &direct, "{mode:?} assoc {assoc}");
            }
        }
    }

    #[test]
    fn lazy_incremental_query_chains_from_full_associativity() {
        let ctx = context();
        // Querying a middle level first must materialize level W (the one
        // cold fixpoint) and chain down — and still be bit-identical.
        let direct = classify(ctx.cfg(), ctx.geometry(), 2);
        assert_eq!(ctx.chmc(2), &direct);
        assert!(
            ctx.warmed_levels() >= 2,
            "the warm chain materializes the full-associativity source too"
        );
    }

    #[test]
    fn derived_sibling_matches_direct_classification() {
        let ctx = context();
        for ways in [2u32, 1] {
            let sibling = ctx.derive_narrower(CacheGeometry::paper_default().with_ways(ways));
            assert_eq!(sibling.geometry().ways(), ways);
            for assoc in 0..=ways {
                let direct = classify(sibling.cfg(), sibling.geometry(), assoc);
                assert_eq!(sibling.chmc(assoc), &direct, "{ways}-way level {assoc}");
            }
        }
    }

    #[test]
    fn derived_sibling_shares_graph_and_srb() {
        let ctx = context();
        let _ = ctx.srb();
        let sibling = ctx.derive_narrower(CacheGeometry::paper_default().with_ways(2));
        assert!(std::ptr::eq(ctx.cfg(), sibling.cfg()), "graph is shared");
        assert_eq!(ctx.srb(), sibling.srb(), "SRB map is way-independent");
    }

    #[test]
    fn restore_round_trips_every_part() {
        let ctx = context();
        ctx.prewarm(Parallelism::Sequential);
        let restored = AnalysisContext::from_parts(
            ctx.name(),
            ctx.shared_cfg(),
            *ctx.geometry(),
            ctx.mode(),
            ctx.backend(),
            ctx.snapshot_parts(),
        );
        assert_eq!(restored.warmed_levels(), ctx.warmed_levels());
        for assoc in 0..=4u32 {
            assert_eq!(restored.chmc(assoc), ctx.chmc(assoc), "level {assoc}");
        }
        assert_eq!(restored.srb(), ctx.srb());
    }

    #[test]
    #[should_panic(expected = "narrower sibling")]
    fn derivation_rejects_widening() {
        let ctx = context();
        let _ = ctx.derive_narrower(CacheGeometry::paper_default().with_ways(8));
    }

    #[test]
    #[should_panic(expected = "reference")]
    fn derivation_rejects_cold_mode() {
        let ctx = context_with_mode(ClassificationMode::Cold);
        let _ = ctx.derive_narrower(CacheGeometry::paper_default().with_ways(2));
    }

    #[test]
    fn context_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisContext>();
    }

    #[test]
    fn template_memo_answers_repeats_without_a_second_build() {
        let ctx = context();
        let registry = Arc::new(TemplateRegistry::new());
        ctx.attach_registry(Arc::clone(&registry));
        let first = ctx.ipet_template(IpetOptions::default());
        let second = ctx.ipet_template(IpetOptions::default());
        assert!(Arc::ptr_eq(&first, &second));
        let counters = registry.counters();
        assert_eq!(
            counters.template_builds, 1,
            "the second request must hit the per-context memo"
        );
        assert_eq!(counters.template_hits, 0);
    }

    #[test]
    fn derived_sibling_shares_the_registry_template() {
        let ctx = context();
        let registry = Arc::new(TemplateRegistry::new());
        ctx.attach_registry(Arc::clone(&registry));
        let wide = ctx.ipet_template(IpetOptions::default());
        let sibling = ctx.derive_narrower(CacheGeometry::paper_default().with_ways(2));
        let narrow = sibling.ipet_template(IpetOptions::default());
        // The narrower sibling's group union is a subset of the wide
        // one's (level `a` is geometry-portable across siblings), so the
        // registry answers with the *same* template — asserted, not
        // assumed: a coverage miss would rebuild and break ptr equality.
        assert!(Arc::ptr_eq(&wide, &narrow));
        let counters = registry.counters();
        assert_eq!(counters.template_builds, 1);
        assert_eq!(counters.template_hits, 1);
    }

    #[test]
    fn restored_bases_answer_the_first_solve_warm() {
        use pwcet_ipet::CostModel;
        let options = IpetOptions::default();
        let ctx = context();
        let template = ctx.ipet_template(options);
        let costs = CostModel::uniform(ctx.cfg(), 2);
        let expected = template.bound(&costs).unwrap();
        let parts = ctx.snapshot_parts();
        assert_eq!(parts.bases.len(), 1, "the solved template exports");

        // A "restarted process": fresh context, fresh registry, bases
        // restored from the serialized parts.
        let registry = Arc::new(TemplateRegistry::new());
        let restored = AnalysisContext::from_parts(
            ctx.name(),
            ctx.shared_cfg(),
            *ctx.geometry(),
            ctx.mode(),
            ctx.backend(),
            parts,
        );
        restored.attach_registry(Arc::clone(&registry));
        let template = restored.ipet_template(options);
        assert_eq!(registry.counters().basis_restores, 1);
        assert_eq!(template.bound(&costs).unwrap(), expected);
        let stats = template.stats();
        assert_eq!(stats.cold_starts, 0, "restored basis skips phase 1");
        assert!(stats.warm_starts >= 1);
    }

    #[test]
    fn rejected_basis_degrades_to_a_counted_cold_factorization() {
        use pwcet_ipet::CostModel;
        let options = IpetOptions::default();
        let ctx = context();
        let template = ctx.ipet_template(options);
        let costs = CostModel::uniform(ctx.cfg(), 2);
        let expected = template.bound(&costs).unwrap();
        let mut parts = ctx.snapshot_parts();
        // Structurally valid, semantically wrong: claim one more basic
        // column than rows — decode would pass, hydration must not.
        let snapshot = &mut parts.bases[0].1;
        if let Some(tag) = snapshot.statuses.iter_mut().find(|tag| **tag != 0) {
            *tag = 0;
        }

        let registry = Arc::new(TemplateRegistry::new());
        let restored = AnalysisContext::from_parts(
            ctx.name(),
            ctx.shared_cfg(),
            *ctx.geometry(),
            ctx.mode(),
            ctx.backend(),
            parts,
        );
        restored.attach_registry(Arc::clone(&registry));
        let template = restored.ipet_template(options);
        let counters = registry.counters();
        assert_eq!(counters.basis_rejects, 1);
        assert_eq!(counters.basis_restores, 0);
        // The template still answers — cold, and correctly.
        assert_eq!(template.bound(&costs).unwrap(), expected);
        assert_eq!(template.stats().cold_starts, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_level_panics() {
        let ctx = context();
        let _ = ctx.chmc(5);
    }
}
